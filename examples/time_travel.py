"""Time travel: historic queries over retained lineage + compression.

L-Store never updates in place: every version of every record stays
reachable through the tail pages, merges keep base pages fresh without
destroying history (the snapshot records of Lemma 2), and the historic
compression pass (Section 4.3) re-organises cold tail pages by record
with inlined, delta-compressed versions.

Run with::

    python examples/time_travel.py
"""

from repro import Database, EngineConfig

KEY, PRICE, STOCK = 0, 1, 2


def main() -> None:
    db = Database(EngineConfig(
        records_per_page=32, records_per_tail_page=32,
        update_range_size=64, merge_threshold=1024, insert_range_size=64))
    db.create_table("products", num_columns=3, key_index=0,
                    column_names=("sku", "price", "stock"))
    products = db.query("products")
    table = db.get_table("products")

    for sku in range(64):
        products.insert(sku, 100, 10)
    db.run_merges()

    # A week of repricing: remember the clock at each day's close.
    closes = [db.clock.now()]
    for day in range(1, 8):
        for sku in range(0, 64, day):
            products.update_columns(sku, {PRICE: 100 + day * 10})
        closes.append(db.clock.now())

    print("latest price of sku 0   :",
          products.select(0, 0, None)[0][PRICE])
    for day, close in enumerate(closes):
        total = products.scan_sum(PRICE, as_of=close)
        print("total catalogue price at close of day %d: %d"
              % (day, total))

    # Relative versions: the classic select_version API.
    print("sku 0, latest 3 versions:",
          [products.select_version(0, 0, None, -back)[0][PRICE]
           for back in range(3)])

    # Merge, then compress the historic tails.
    from repro.core.merge import merge_update_range
    for update_range in table.sorted_ranges():
        merge_update_range(table, update_range)
    compressed = db.compress_history()
    db.epoch_manager.reclaim()
    parts = sum(len(r.tail.compressed_parts)
                for r in table.sorted_ranges() if r.tail is not None)
    print("\nhistoric records compressed:", compressed,
          "into", parts, "ordered, version-inlined parts")

    # History still answers exactly after merge + compression.
    day3 = products.scan_sum(PRICE, as_of=closes[3])
    print("re-check day-3 total after compression:", day3)
    print("sku 0 at day 1:",
          products.select_as_of(0, 0, None, closes[1])[0][PRICE])

    db.close()
    print("OK — every historic version stayed reachable.")


if __name__ == "__main__":
    main()
