"""Fraud detection: run analytics *inside* the approving transaction.

The paper's second motivating scenario: a card network must approve or
decline a payment within a sub-second window, and the decision needs
analytics over the cardholder's latest history — which may include
transactions committed milliseconds ago. One engine serves both: the
approval is a multi-statement transaction whose reads see the freshest
committed state, and the velocity features come from the same store.

Run with::

    python examples/fraud_detection.py
"""

import random
import threading
import time

from repro import Database, EngineConfig, IsolationLevel
from repro.errors import TransactionAborted

CARDS = 256
KEY, TXN_COUNT, TOTAL_SPEND, LAST_ZONE, FLAGGED = range(5)

#: Decline when one card spends more than this within the run.
SPEND_LIMIT = 2000
#: Decline when the card teleports between distant zones.
MAX_ZONE_JUMP = 4


def main() -> None:
    db = Database(EngineConfig(
        records_per_page=128, records_per_tail_page=128,
        update_range_size=256, merge_threshold=128, insert_range_size=256,
        background_merge=True))
    cards = db.create_table(
        "cards", num_columns=5, key_index=0,
        column_names=("card", "txn_count", "total_spend", "last_zone",
                      "flagged"))
    for card in range(CARDS):
        cards.insert([card, 0, 0, 0, 0])
    db.run_merges()

    approved = declined = conflicts = 0
    lock = threading.Lock()
    stop = threading.Event()

    def authorize(card: int, amount: int, zone: int) -> bool:
        """One authorization: analytics + decision + update, atomically."""
        nonlocal approved, declined, conflicts
        txn = db.begin_transaction(
            isolation=IsolationLevel.REPEATABLE_READ)
        try:
            profile = txn.select(cards, card)
            if profile is None:
                txn.abort()
                return False
            # Real-time fraud features on the latest committed state.
            velocity_ok = profile[TOTAL_SPEND] + amount <= SPEND_LIMIT
            jump = abs(profile[LAST_ZONE] - zone)
            location_ok = profile[TXN_COUNT] == 0 or jump <= MAX_ZONE_JUMP
            if velocity_ok and location_ok:
                txn.update(cards, card, {
                    TXN_COUNT: profile[TXN_COUNT] + 1,
                    TOTAL_SPEND: profile[TOTAL_SPEND] + amount,
                    LAST_ZONE: zone,
                })
                committed = txn.commit()
                if committed:
                    with lock:
                        approved += 1
                return committed
            txn.update(cards, card, {FLAGGED: profile[FLAGGED] + 1,
                                     LAST_ZONE: zone})
            if txn.commit():
                with lock:
                    declined += 1
            return False
        except TransactionAborted:
            with lock:
                conflicts += 1
            return False

    def payment_stream(seed: int) -> None:
        rng = random.Random(seed)
        while not stop.is_set():
            card = rng.randrange(CARDS)
            # A minority of attempts look fraudulent: huge amounts or
            # impossible travel.
            if rng.random() < 0.1:
                authorize(card, rng.randrange(500, 900),
                          rng.randrange(0, 100))
            else:
                authorize(card, rng.randrange(5, 60),
                          rng.randrange(0, MAX_ZONE_JUMP))

    def monitoring_dashboard() -> None:
        """A long-running analyst query concurrent with authorizations."""
        while not stop.is_set():
            exposure = cards.scan_sum(TOTAL_SPEND)
            flags = cards.scan_sum(FLAGGED)
            print("dashboard: network exposure=%-9d flagged attempts=%d"
                  % (exposure, flags))
            time.sleep(0.2)

    workers = [threading.Thread(target=payment_stream, args=(i,),
                                daemon=True) for i in range(4)]
    dashboard = threading.Thread(target=monitoring_dashboard, daemon=True)
    for worker in workers:
        worker.start()
    dashboard.start()
    time.sleep(2.0)
    stop.set()
    for worker in workers:
        worker.join(timeout=10.0)
    dashboard.join(timeout=10.0)

    db.run_merges()
    print("\napproved:", approved, "| declined:", declined,
          "| write-write conflicts:", conflicts)
    total_txns = cards.scan_sum(TXN_COUNT)
    print("card transactions recorded:", total_txns)
    assert total_txns == approved, "every approval must be recorded once"
    # No card may ever exceed the limit: the analytics ran inside the
    # approving transaction, so the invariant holds exactly.
    worst = max(record[TOTAL_SPEND]
                for record in db.query("cards").scan())
    print("max card spend:", worst, "(limit %d)" % SPEND_LIMIT)
    assert worst <= SPEND_LIMIT
    db.close()
    print("OK — proactive fraud checks held under concurrency.")


if __name__ == "__main__":
    main()
