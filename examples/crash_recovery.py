"""Durability torture: failpoint crashes, salvage, bounded recovery.

Demonstrates the durability stack end to end:

1. **Failpoint crash** — a child process runs a bank-transfer workload
   and is killed by a ``crash`` failpoint (``REPRO_FAILPOINTS``) in the
   middle of a group commit; the parent recovers the log chain and
   audits conservation (committed survive, uncommitted invisible).
2. **Torn-tail salvage** — the recovered log is torn mid-frame the way
   a power cut would; recovery keeps the valid prefix and reports the
   salvaged bytes instead of refusing to start.
3. **Checkpoint-bounded recovery** — with checkpoints in the workload,
   recovery loads the newest complete image and replays only the log
   suffix, as the replay counters show.
4. **Both indirection options** (Section 5.1.3) — replaying the
   Indirection redo records vs. rebuilding the column from the tails.

Run with::

    python examples/crash_recovery.py
"""

import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import Database, EngineConfig  # noqa: E402
from repro.wal.recovery import recover_database  # noqa: E402

CONFIG_KWARGS = dict(
    records_per_page=32, records_per_tail_page=32,
    update_range_size=64, merge_threshold=64, insert_range_size=64)
ACCOUNTS = 64
BALANCE = 100


def workload(data_dir: str) -> int:
    """Child mode: transfers + periodic checkpoints until crashed."""
    db = Database(EngineConfig(
        wal_enabled=True, data_dir=data_dir, wal_segment_bytes=4096,
        **CONFIG_KWARGS))
    accounts = db.create_table("accounts", num_columns=2, key_index=0,
                               column_names=("id", "balance"))
    for key in range(ACCOUNTS):
        accounts.insert([key, BALANCE])
    db._wal.flush()
    for seq in range(40):
        src, dst = seq % ACCOUNTS, (seq * 7 + 3) % ACCOUNTS
        if src == dst:
            continue
        txn = db.begin_transaction()
        amount = 1 + seq % 9
        txn.update(accounts, src,
                   {1: txn.select(accounts, src, (1,))[1] - amount})
        txn.update(accounts, dst,
                   {1: txn.select(accounts, dst, (1,))[1] + amount})
        txn.commit()
        if seq == 20:
            db.checkpoint()
    db.close()
    return 0


def recover_and_audit(log_path: str, label: str):
    recovered = recover_database(log_path,
                                 config=EngineConfig(**CONFIG_KWARGS))
    report = recovered.recovery_report
    query = recovered.query("accounts")
    total = query.sum(0, ACCOUNTS - 1, 1)
    print("\n%s" % label)
    print("  records replayed / skipped / total : %d / %d / %d"
          % (report.records_replayed, report.records_skipped,
             report.records_total))
    print("  checkpoint image                   : %s"
          % (report.checkpoint_directory or "(none used)"))
    print("  salvaged bytes / quarantined frames: %d / %d"
          % (report.salvaged_bytes, len(report.quarantined)))
    print("  recovered balance total            : %d" % total)
    # The same report surfaces through the engine-wide metrics snapshot
    # (the "recovery" domain), where a scraper would pick it up.
    print("  metrics()['recovery']              : %s"
          % recovered.metrics()["recovery"])
    assert total == ACCOUNTS * BALANCE, "conservation violated"
    return recovered


def main() -> None:
    if len(sys.argv) > 1 and sys.argv[1] == "--workload":
        sys.exit(workload(sys.argv[2]))

    data_dir = tempfile.mkdtemp(prefix="lstore-torture-")
    log_path = os.path.join(data_dir, "wal.log")

    # 1. Kill the child mid-commit with a crash failpoint: nothing is
    # flushed on the way down, exactly like kill -9 or a power cut.
    env = dict(os.environ)
    env["REPRO_FAILPOINTS"] = "txn.after_commit_record=crash:30"
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--workload", data_dir],
        env=env)
    print("workload crashed with exit status", proc.returncode)
    recovered = recover_and_audit(
        log_path, "recovery after failpoint crash (checkpoint-bounded):")
    recovered.close()

    # 2. Tear the active segment mid-frame; recovery salvages the
    # valid prefix and says so, instead of refusing to start.
    from repro.wal.log import LogManager
    active = LogManager.segment_paths(log_path)[-1]
    with open(active, "r+b") as handle:
        handle.truncate(os.path.getsize(active) - 7)
    recovered = recover_and_audit(log_path, "recovery from a torn tail:")
    assert recovered.recovery_report.salvaged_bytes > 0

    # 3. Both indirection recovery options agree (Section 5.1.3).
    replay_total = recovered.query("accounts").sum(0, ACCOUNTS - 1, 1)
    recovered.close()
    rebuilt = recover_database(log_path, config=EngineConfig(**CONFIG_KWARGS),
                               rebuild_indirection=True)
    assert rebuilt.query("accounts").sum(0, ACCOUNTS - 1, 1) == replay_total
    # The recovered engine accepts new work immediately.
    query = rebuilt.query("accounts")
    query.update(5, None, 75)
    rebuilt.run_merges()
    assert query.select(5, 0, None)[0][1] == 75
    rebuilt.close()

    print("\nOK — crashes recovered, tails salvaged, both options agree.")


if __name__ == "__main__":
    main()
