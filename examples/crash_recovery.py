"""Durability: redo-only WAL, crash, recovery (Section 5.1.3).

Demonstrates L-Store's logging asymmetry — read-only base pages need no
logging, append-only tails need only redo, aborts only tombstone — and
both recovery options for the in-place Indirection column: replaying
its redo records, or rebuilding it from the tails.

Run with::

    python examples/crash_recovery.py
"""

import os
import tempfile

from repro import Database, EngineConfig
from repro.wal.recovery import recover_database

CONFIG_KWARGS = dict(
    records_per_page=32, records_per_tail_page=32,
    update_range_size=64, merge_threshold=64, insert_range_size=64)


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="lstore-wal-")
    log_path = os.path.join(data_dir, "wal.log")

    db = Database(EngineConfig(wal_enabled=True, data_dir=data_dir,
                               **CONFIG_KWARGS))
    accounts = db.create_table("accounts", num_columns=2, key_index=0,
                               column_names=("id", "balance"))
    for key in range(64):
        accounts.insert([key, 100])

    # Committed work the crash must not lose.
    done = db.begin_transaction()
    done.update(accounts, 1, {1: 150})
    done.update(accounts, 2, {1: 50})
    assert done.commit()

    # In-flight work the crash must erase.
    doomed = db.begin_transaction()
    doomed.update(accounts, 3, {1: 999999})
    doomed.insert(accounts, [500, 13])

    db._wal.flush()
    pre_crash_total = db.query("accounts").sum(0, 63, 1)
    print("pre-crash committed total:", pre_crash_total)
    print("log records on disk      :", db._wal.last_lsn)
    # Simulated crash: the process dies here; nothing is closed cleanly.

    for option, rebuild in (("replay indirection redo", False),
                            ("rebuild indirection from tails", True)):
        recovered = recover_database(
            log_path, config=EngineConfig(**CONFIG_KWARGS),
            rebuild_indirection=rebuild)
        query = recovered.query("accounts")
        total = query.sum(0, 63, 1)
        print("\nrecovery option: %s" % option)
        print("  recovered total         :", total)
        print("  account 1 (committed)   :",
              query.select(1, 0, None)[0][1])
        print("  account 3 (uncommitted) :",
              query.select(3, 0, None)[0][1])
        print("  key 500 (uncommitted)   :", query.select(500, 0, None))
        assert total == pre_crash_total
        assert query.select(1, 0, None)[0][1] == 150
        assert query.select(3, 0, None)[0][1] == 100
        assert query.select(500, 0, None) == []
        # The recovered engine accepts new work immediately.
        query.update(5, None, 75)
        recovered.run_merges()
        assert query.select(5, 0, None)[0][1] == 75
        recovered.close()

    db.close()
    print("\nOK — both recovery options reproduced the committed state.")


if __name__ == "__main__":
    main()
