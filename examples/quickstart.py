"""Quickstart: create a table, write, read, merge, time-travel.

Run with::

    python examples/quickstart.py
"""

from repro import Database, EngineConfig


def main() -> None:
    # A small geometry so the merge machinery is visible in one run;
    # production code would use the defaults or PAPER_CONFIG.
    db = Database(EngineConfig(
        records_per_page=64, records_per_tail_page=64,
        update_range_size=128, merge_threshold=64, insert_range_size=128))

    # A table of student grades: the classic L-Store teaching schema.
    db.create_table("grades", num_columns=5, key_index=0,
                    column_names=("student", "g1", "g2", "g3", "g4"))
    grades = db.query("grades")

    # --- OLTP: inserts and updates -----------------------------------
    for student in range(256):
        grades.insert(student, 70, 75, 80, 85)
    print("inserted:", grades.count(), "records")

    checkpoint = db.clock.now()

    grades.update(7, None, 90, None, None, None)   # g1 := 90
    grades.update(7, None, None, 95, None, None)   # g2 := 95
    grades.increment(7, 4)                         # g4 += 1
    grades.delete(200)

    record = grades.select(7, 0, [1, 1, 1, 1, 1])[0]
    print("student 7 latest:", record.columns)

    # --- OLAP on the same data, no ETL --------------------------------
    print("class total g1 :", grades.scan_sum(1))
    print("class total g1 @checkpoint:", grades.scan_sum(1,
                                                         as_of=checkpoint))

    # --- versions ------------------------------------------------------
    print("student 7, one version back:",
          grades.select_version(7, 0, [1, 1, 1, 1, 1], -1)[0].columns)

    # --- the lineage machinery at work -----------------------------------
    table = db.get_table("grades")
    print("tail records appended:", table.tail_record_count())
    merged = db.run_merges()
    print("merges run:", merged,
          "| unmerged tail records left:", table.unmerged_tail_count())
    print("student 7 after merge:",
          grades.select(7, 0, [1, 1, 1, 1, 1])[0].columns)
    print("class total g1 after merge:", grades.scan_sum(1))

    # --- multi-statement transactions --------------------------------------
    txn = db.begin_transaction()
    txn.update(table, 3, {1: 100})
    txn.update(table, 4, {1: 100})
    txn.commit()
    print("after txn, g1 of 3 and 4:",
          grades.select(3, 0, None)[0][1],
          grades.select(4, 0, None)[0][1])

    # --- observability: everything above left a metrics trail ------------
    snapshot = db.metrics()
    print("engine metrics domains:", ", ".join(sorted(snapshot)))
    print("txn commits:", snapshot["txn"]["commits"],
          "| writes:", snapshot["write"]["inserts"], "inserts /",
          snapshot["write"]["updates"], "updates",
          "| ranges merged:", snapshot["merge"]["ranges_merged"])
    exposition = db.render_metrics()  # Prometheus text format
    print("prometheus exposition:", len(exposition.splitlines()),
          "lines, e.g.")
    for line in exposition.splitlines():
        if line.startswith("lstore_txn_commits_total"):
            print(" ", line)

    db.close()


if __name__ == "__main__":
    main()
