"""Real-time ad bidding: the paper's motivating e-commerce scenario.

Shoppers roam and generate location events (high-velocity OLTP); the
ad auction continuously runs analytics over the latest shopper state to
pick relevant ads (OLAP on the same engine, no ETL); purchases land as
transactions and must influence the *next* auction immediately.

Run with::

    python examples/realtime_ads.py
"""

import random
import threading
import time

from repro import Database, EngineConfig, TransactionWorker

SHOPPERS = 512
ZONES = 16
RUN_SECONDS = 2.0

# Columns of the shopper profile table.
KEY, ZONE, VISITS, PURCHASES, SPEND, SCORE = range(6)


def main() -> None:
    db = Database(EngineConfig(
        records_per_page=256, records_per_tail_page=256,
        update_range_size=512, merge_threshold=256, insert_range_size=512,
        background_merge=True))
    table = db.create_table(
        "shoppers", num_columns=6, key_index=0,
        column_names=("id", "zone", "visits", "purchases", "spend",
                      "score"))
    for shopper in range(SHOPPERS):
        table.insert([shopper, shopper % ZONES, 0, 0, 0, 50])
    db.run_merges()

    stop = threading.Event()
    stats = {"events": 0, "purchases": 0, "auctions": 0}

    def location_feed(seed: int) -> None:
        """High-velocity location events: move shoppers between zones."""
        rng = random.Random(seed)
        worker = TransactionWorker(db.txn_manager, max_retries=50)
        while not stop.is_set():
            shopper = rng.randrange(SHOPPERS)
            zone = rng.randrange(ZONES)

            def body(txn, s=shopper, z=zone):
                profile = txn.select(table, s, (VISITS,))
                txn.update(table, s,
                           {ZONE: z, VISITS: profile[VISITS] + 1})

            if worker.run_one(body):
                stats["events"] += 1

    def purchase_feed(seed: int) -> None:
        """Purchases: transactional, must be visible to the next auction."""
        rng = random.Random(seed * 31337)
        worker = TransactionWorker(db.txn_manager, max_retries=50)
        while not stop.is_set():
            shopper = rng.randrange(SHOPPERS)
            amount = rng.randrange(5, 100)

            def body(txn, s=shopper, a=amount):
                profile = txn.select(table, s, (PURCHASES, SPEND, SCORE))
                txn.update(table, s, {
                    PURCHASES: profile[PURCHASES] + 1,
                    SPEND: profile[SPEND] + a,
                    SCORE: min(100, profile[SCORE] + 2),
                })

            if worker.run_one(body):
                stats["purchases"] += 1
            time.sleep(0.001)

    def auction_loop() -> None:
        """The 150 ms ad auction: analytics over the freshest data."""
        while not stop.is_set():
            started = time.perf_counter()
            total_spend = table.scan_sum(SPEND)
            total_visits = table.scan_sum(VISITS)
            elapsed_ms = (time.perf_counter() - started) * 1000
            stats["auctions"] += 1
            if stats["auctions"] % 10 == 0:
                print("auction %3d: spend=%-8d visits=%-8d "
                      "analytics latency=%.1f ms"
                      % (stats["auctions"], total_spend, total_visits,
                         elapsed_ms))
            time.sleep(0.05)

    threads = [
        threading.Thread(target=location_feed, args=(i,), daemon=True)
        for i in range(2)
    ] + [
        threading.Thread(target=purchase_feed, args=(i,), daemon=True)
        for i in range(2)
    ] + [threading.Thread(target=auction_loop, daemon=True)]
    for thread in threads:
        thread.start()
    time.sleep(RUN_SECONDS)
    stop.set()
    for thread in threads:
        thread.join(timeout=10.0)

    # Consistency check: every committed purchase is in the analytics.
    db.run_merges()
    expected_purchases = stats["purchases"]
    print("\nlocation events committed :", stats["events"])
    print("purchases committed       :", expected_purchases)
    print("auctions served           :", stats["auctions"])
    print("purchases visible to OLAP :", table.scan_sum(PURCHASES))
    assert table.scan_sum(PURCHASES) == expected_purchases
    merge_stats = db.merge_engine
    print("background merges         :", merge_stats.stat_merges
          + merge_stats.stat_insert_merges)
    db.close()
    print("OK — transactional feed and real-time analytics agreed.")


if __name__ == "__main__":
    main()
