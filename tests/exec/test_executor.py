"""Executor behavior: planning, parallel agreement, epoch protection."""

import threading

import pytest

from repro.core.merge import merge_update_range
from repro.core.query import Query
from repro.core.types import IsolationLevel
from repro.exec.executor import ScanExecutor, execute_scan
from repro.exec.operators import (ColumnAvg, ColumnCount, ColumnMax,
                                  ColumnMin, ColumnSum, GroupBy, eq, ge)
from repro.exec.plan import plan_scan


def load(table, rows):
    for row in rows:
        table.insert(list(row))


class TestPlanner:
    def test_full_scan_one_partition_per_range(self, exec_db, exec_table):
        load(exec_table, ([k, k, 0, 0, 0] for k in range(40)))
        partitions = plan_scan(exec_table)
        assert len(partitions) == len(exec_table.sorted_ranges())
        assert all(not p.is_keyed for p in partitions)

    def test_keyed_scan_groups_by_range(self, exec_db, exec_table):
        load(exec_table, ([k, k, 0, 0, 0] for k in range(40)))
        rids = [exec_table.index.primary.get(k) for k in (0, 17, 38, 1)]
        range_size = exec_table.config.update_range_size
        # Parallel executors split RID sets larger than one range …
        many = [exec_table.index.primary.get(k) for k in range(40)]
        partitions = plan_scan(exec_table, many, parallelism=4)
        assert len(partitions) > 1
        assert [p.range_id for p in partitions] == sorted(
            {p.range_id for p in partitions})
        covered = [rid for p in partitions for rid in p.rids]
        assert sorted(covered) == sorted(many)
        for partition in partitions:
            expected = [rid for rid in many
                        if (rid - 1) // range_size == partition.range_id]
            assert list(partition.rids) == expected

    def test_keyed_scan_collapses_when_serial_or_small(self, exec_db,
                                                       exec_table):
        load(exec_table, ([k, k, 0, 0, 0] for k in range(40)))
        rids = [exec_table.index.primary.get(k) for k in (0, 17, 38, 1)]
        # A serial executor — or a set that fits one range — gets one
        # spanning partition (the batched read groups internally).
        assert [p.rids for p in plan_scan(exec_table, rids)] == \
            [tuple(rids)]
        assert [p.rids for p in plan_scan(exec_table, rids,
                                          parallelism=4)] == [tuple(rids)]
        assert plan_scan(exec_table, []) == []


class TestExecutorAgreement:
    """Executor results must match brute-force per-record reads."""

    def _brute_rows(self, table, columns):
        rows = {}
        for rid, values in table.scan_records(columns):
            rows[rid] = values
        return rows

    def test_aggregates_match_brute_force(self, exec_db, exec_table):
        table = exec_table
        load(table, ([k, k * 7 % 50, k % 5, k * 3, 7] for k in range(60)))
        exec_db.run_merges()
        for k in range(0, 60, 3):
            table.update(table.index.primary.get(k), {1: k % 11, 3: k})
        for k in range(0, 60, 10):
            table.delete(table.index.primary.get(k))
        rows = self._brute_rows(table, (1, 2, 3))
        values1 = [row[1] for row in rows.values()]
        assert execute_scan(table, ColumnSum(1)) == sum(values1)
        assert execute_scan(table, ColumnCount()) == len(rows)
        assert execute_scan(table, ColumnMin(1)) == min(values1)
        assert execute_scan(table, ColumnMax(1)) == max(values1)
        assert execute_scan(table, ColumnAvg(1)) == \
            sum(values1) / len(values1)
        expected_groups = {}
        for row in rows.values():
            expected_groups[row[2]] = expected_groups.get(row[2], 0) + row[3]
        assert execute_scan(
            table, GroupBy(2, lambda: ColumnSum(3))) == expected_groups

    def test_filters_match_brute_force(self, exec_db, exec_table):
        table = exec_table
        load(table, ([k, k % 13, k % 4, k, 7] for k in range(50)))
        exec_db.run_merges()
        rows = self._brute_rows(table, (1, 2, 3))
        expected = sum(row[3] for row in rows.values()
                       if row[1] >= 5 and row[2] == 1)
        assert execute_scan(table, ColumnSum(3),
                            filters=(ge(1, 5), eq(2, 1))) == expected

    def test_as_of_scan_matches_per_record(self, exec_db, exec_table):
        table = exec_table
        load(table, ([k, k, 0, 0, 0] for k in range(32)))
        as_of = table.clock.now()
        for k in range(32):
            table.update(table.index.primary.get(k), {1: 1000})
        exec_db.run_merges()
        assert execute_scan(table, ColumnSum(1), as_of=as_of) == \
            sum(range(32))
        assert execute_scan(table, ColumnSum(1)) == 32000

    def test_keyed_scan_matches_full_scan_subset(self, exec_db, exec_table):
        table = exec_table
        load(table, ([k, k * 2, 0, 0, 0] for k in range(48)))
        rids = [table.index.primary.get(k) for k in range(10, 30)]
        assert execute_scan(table, ColumnSum(1), rids=rids) == \
            sum(k * 2 for k in range(10, 30))


class TestQueryReroutes:
    def test_query_sum_matches_manual(self, exec_db, exec_table):
        query = Query(exec_table)
        load(exec_table, ([k, k * 10, 0, 0, 0] for k in range(40)))
        exec_db.run_merges()
        query.update(5, None, 999, None, None, None)
        assert query.sum(0, 39, 1) == sum(k * 10 for k in range(40)) \
            - 50 + 999
        assert query.sum(10, 19, 1) == sum(k * 10 for k in range(10, 20))
        assert query.sum(100, 200, 1) == 0

    def test_query_aggregate_api(self, exec_db, exec_table):
        query = Query(exec_table)
        load(exec_table, ([k, k % 3, k, 0, 0] for k in range(30)))
        groups = query.aggregate(GroupBy(1, lambda: ColumnCount()))
        assert groups == {0: 10, 1: 10, 2: 10}
        ranged = query.aggregate(ColumnSum(2), start_key=5, end_key=14)
        assert ranged == sum(range(5, 15))
        with pytest.raises(ValueError):
            query.aggregate(ColumnSum(2), start_key=5)

    def test_select_range_order_and_values(self, exec_db, exec_table):
        query = Query(exec_table)
        load(exec_table, ([k, k * 10, 0, 0, 0] for k in range(40)))
        exec_db.run_merges()
        records = query.select_range(7, 23)
        assert [record.key for record in records] == list(range(7, 24))
        assert all(record[1] == record.key * 10 for record in records)

    def test_select_range_as_of(self, exec_db, exec_table):
        query = Query(exec_table)
        load(exec_table, ([k, k, 0, 0, 0] for k in range(20)))
        as_of = exec_table.clock.now()
        query.update(5, None, 777, None, None, None)
        records = query.select_range(0, 19, as_of=as_of)
        assert [record[1] for record in records] == list(range(20))

    def test_transaction_sum_read_committed(self, exec_db, exec_table):
        load(exec_table, ([k, k, 0, 0, 0] for k in range(30)))
        exec_db.run_merges()
        txn = exec_db.begin_transaction(
            isolation=IsolationLevel.READ_COMMITTED)
        txn.update(exec_table, 3, {1: 1000})
        # Own uncommitted write is visible to the batched sum.
        assert txn.sum(exec_table, 0, 29, 1) == sum(range(30)) - 3 + 1000
        # Invisible to an auto-commit statement sum.
        assert Query(exec_table).sum(0, 29, 1) == sum(range(30))
        assert txn.commit()
        assert Query(exec_table).sum(0, 29, 1) == sum(range(30)) - 3 + 1000


class TestEpochProtection:
    def test_running_partition_blocks_reclamation(self, exec_db):
        """A merge may retire pages under a live partition, but the
        epoch manager must not reclaim them until the partition exits."""
        table = exec_db.create_table("epoch_t", num_columns=2)
        for k in range(table.config.update_range_size):
            table.insert([k, 1])
        exec_db.run_merges()
        update_range = table.sorted_ranges()[0]

        in_partition = threading.Event()
        release = threading.Event()
        original = table.update_range_of
        epoch_manager = table.epoch_manager

        def paused_update_range_of(*args, **kwargs):
            # Runs inside the partition — on both execution planes —
            # after its epoch registration and before any chain
            # resolves (the scan discipline).
            in_partition.set()
            assert release.wait(timeout=10.0)
            return original(*args, **kwargs)

        table.update_range_of = paused_update_range_of
        try:
            worker = threading.Thread(target=table.scan_sum, args=(1,),
                                      daemon=True)
            worker.start()
            assert in_partition.wait(timeout=10.0)
            # Merge while the partition is mid-scan: pages retire but
            # must not be reclaimed (the partition's epoch is open).
            table.update(table.index.primary.get(0), {1: 2})
            merge_update_range(table, update_range)
            assert epoch_manager.pending_pages > 0
            assert epoch_manager.reclaim() == 0
            pending = epoch_manager.pending_pages
            assert pending > 0
            release.set()
            worker.join(timeout=10.0)
            assert not worker.is_alive()
            # Partition exited: the retired pages drain.
            epoch_manager.reclaim()
            assert epoch_manager.pending_pages == 0
        finally:
            release.set()
            table.update_range_of = original


class TestScanExecutorUnit:
    def test_map_preserves_order(self):
        executor = ScanExecutor(4)
        try:
            results = executor.map([lambda i=i: i * i for i in range(20)])
            assert results == [i * i for i in range(20)]
        finally:
            executor.close()

    def test_map_propagates_errors(self):
        executor = ScanExecutor(2)

        def boom():
            raise RuntimeError("partition failed")

        try:
            with pytest.raises(RuntimeError):
                executor.map([lambda: 1, boom, lambda: 2])
        finally:
            executor.close()

    def test_serial_never_builds_pool(self):
        executor = ScanExecutor(1)
        assert executor.map([lambda: 5]) == [5]
        assert executor._pool is None
        executor.close()

    def test_parallelism_validated(self):
        with pytest.raises(ValueError):
            ScanExecutor(0)
