"""Executor agreement property (the PR's acceptance criterion).

For random interleavings of inserts (including rows carrying the
special null ∅ in aggregated, filtered, and group-key columns),
updates, deletes, and merges, every aggregate — sum/count/min/max/avg
and single-column group-by, with and without predicate filters — must
return identical results:

* at ``scan_parallelism=1`` and ``scan_parallelism=4``,
* with ``vectorized_scans`` on (column-slice plane) and off (row
  plane),

and all four must match a brute-force ``select_version``-style oracle
that reads each key's latest committed version through the lineage
chain walk. ∅ semantics ride along: a filter never matches ∅, an
aggregated ∅ contributes nothing, and a ∅ group key drops its row —
on both planes, including the masked-slice group-by.

The snapshot matrix repeats the whole cross for ``as_of`` timestamps
drawn across the operation history (before everything, mid-history,
after everything): the **version-horizon plane** (vectorised) and the
per-record row plane must agree with an ``assemble_version`` oracle
walking every record's lineage at that timestamp — covering records
that straddle a merge, merged deletes older and newer than the
snapshot, and re-inserted keys whose old RID is only visible in the
past.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, EngineConfig
from repro.core.merge import merge_update_range
from repro.core.table import DELETED
from repro.core.types import NULL, is_null
from repro.core.version import visible_as_of
from repro.errors import (DuplicateKeyError, KeyNotFoundError,
                          RecordDeletedError)
from repro.exec.executor import ScanExecutor, execute_scan
from repro.exec.operators import (ColumnAvg, ColumnCount, ColumnMax,
                                  ColumnMin, ColumnSum, GroupBy, between,
                                  ge)

KEYS = 40

operation = st.one_of(
    st.tuples(st.just("insert"), st.integers(0, KEYS - 1),
              st.integers(0, 99)),
    # Insert with ∅ in one of the scanned columns (1 = aggregated,
    # 2 = group key, 3 = filter column).
    st.tuples(st.just("insert_null"), st.integers(0, KEYS - 1),
              st.integers(1, 3)),
    st.tuples(st.just("update"), st.integers(0, KEYS - 1),
              st.integers(1, 3), st.integers(0, 99)),
    st.tuples(st.just("delete"), st.integers(0, KEYS - 1),
              st.integers(0, 0)),
    st.tuples(st.just("merge"), st.integers(0, 3), st.integers(0, 0)),
)


def _database(vectorized: bool) -> Database:
    return Database(EngineConfig(
        records_per_page=8, records_per_tail_page=8,
        update_range_size=16, merge_threshold=6, insert_range_size=16,
        background_merge=False, vectorized_scans=vectorized))


def _apply(db, table, ops, times=None):
    for op in ops:
        kind, key = op[0], op[1]
        try:
            if kind == "insert":
                table.insert([key, op[2], key % 5, op[2] % 7, 7])
            elif kind == "insert_null":
                row = [key, key % 9, key % 5, key % 7, 7]
                row[op[2]] = NULL
                table.insert(row)
            elif kind == "update":
                rid = table.index.primary.get(key)
                if rid is not None:
                    table.update(rid, {op[2]: op[3]})
            elif kind == "delete":
                rid = table.index.primary.get(key)
                if rid is not None:
                    table.delete(rid)
            else:  # merge: drain queued merges, then one explicit range
                db.run_merges()
                ranges = table.sorted_ranges()
                if ranges:
                    update_range = ranges[key % len(ranges)]
                    if update_range.merged:
                        merge_update_range(table, update_range)
        except (DuplicateKeyError, KeyNotFoundError, RecordDeletedError):
            pass
        finally:
            if times is not None:
                times.append(table.clock.now())


def _oracle_rows(table, columns):
    """Brute-force: latest committed version per key via the chain walk."""
    rows = {}
    for key in range(KEYS):
        rid = table.index.primary.get(key)
        if rid is None:
            continue
        try:
            values = table.read_relative_version(rid, columns, 0)
        except KeyNotFoundError:
            continue
        if values is None or values is DELETED:
            continue
        if values[0] != key:
            continue  # deferred index maintenance
        rows[rid] = values
    return rows


def _non_null(rows, column):
    return [row[column] for row in rows.values()
            if not is_null(row[column])]


AGGREGATES = [
    ("sum", lambda: ColumnSum(1),
     lambda rows: sum(_non_null(rows, 1))),
    ("count_star", lambda: ColumnCount(),
     lambda rows: len(rows)),
    ("count_col", lambda: ColumnCount(1),
     lambda rows: len(_non_null(rows, 1))),
    ("min", lambda: ColumnMin(1),
     lambda rows: min(_non_null(rows, 1), default=None)),
    ("max", lambda: ColumnMax(1),
     lambda rows: max(_non_null(rows, 1), default=None)),
    ("avg", lambda: ColumnAvg(1),
     lambda rows: (sum(_non_null(rows, 1)) / len(_non_null(rows, 1)))
     if _non_null(rows, 1) else None),
    ("group_sum", lambda: GroupBy(2, lambda: ColumnSum(1)),
     lambda rows: _group(rows, 2, 1)),
]

FILTERS = [
    ("none", (), lambda row: True),
    ("ge", (ge(1, 50),),
     lambda row: not is_null(row[1]) and row[1] >= 50),
    ("between", (between(3, 1, 4),),
     lambda row: not is_null(row[3]) and 1 <= row[3] <= 4),
]


def _group(rows, key_column, value_column):
    """∅ keys drop the row; ∅ values still create the group with 0."""
    groups = {}
    for row in rows.values():
        key = row[key_column]
        if is_null(key):
            continue
        value = row[value_column]
        groups[key] = groups.get(key, 0) \
            + (0 if is_null(value) else value)
    return groups


def _oracle_rows_as_of(table, columns, as_of):
    """Brute force: the version visible at *as_of* per existing RID.

    Enumerates base offsets directly (not the primary index), so a
    deleted-then-reinserted key contributes its *old* RID when only
    that one was visible at the timestamp — exactly what a full-table
    snapshot scan must see.
    """
    predicate = visible_as_of(as_of)
    rows = {}
    for update_range in table.sorted_ranges():
        for offset in range(update_range.size):
            if not table.base_record_exists(update_range, offset):
                continue
            rid = update_range.start_rid + offset
            values = table.assemble_version(rid, columns, predicate)
            if values is None or values is DELETED:
                continue
            rows[rid] = values
    return rows


@settings(max_examples=15, deadline=None)
@given(st.lists(operation, min_size=1, max_size=40))
def test_snapshot_scans_agree_across_planes(ops):
    """Horizon plane ≡ row plane ≡ assemble_version oracle at any T."""
    databases = {plane: _database(vectorized=(plane == "vectorized"))
                 for plane in ("vectorized", "row")}
    serial = ScanExecutor(1)
    pooled = ScanExecutor(4)
    try:
        tables = {}
        history = {}
        for plane, db in databases.items():
            tables[plane] = db.create_table("t", num_columns=5)
            history[plane] = []
            _apply(db, tables[plane], ops, times=history[plane])
        # The op stream is deterministic, so both engines advance
        # their clocks identically — a cross-plane comparison at one
        # timestamp is meaningful.
        assert history["vectorized"] == history["row"]
        times = history["vectorized"]
        samples = sorted({0, times[len(times) // 3],
                          times[(2 * len(times)) // 3], times[-1]})
        for as_of in samples:
            rows = _oracle_rows_as_of(tables["vectorized"], (0, 1, 2, 3),
                                      as_of)
            assert rows == _oracle_rows_as_of(tables["row"], (0, 1, 2, 3),
                                              as_of)
            for filter_name, filters, row_predicate in FILTERS:
                filtered = {rid: row for rid, row in rows.items()
                            if row_predicate(row)}
                for agg_name, make, expected_fn in AGGREGATES:
                    expected = expected_fn(filtered)
                    for plane, table in tables.items():
                        for exec_name, executor in (("serial", serial),
                                                    ("pooled", pooled)):
                            got = execute_scan(table, make(),
                                               filters=filters,
                                               as_of=as_of,
                                               executor=executor)
                            assert got == expected, \
                                "%s/%s as_of=%d mismatch on %s plane " \
                                "(%s executor)" % (agg_name, filter_name,
                                                   as_of, plane, exec_name)
    finally:
        serial.close()
        pooled.close()
        for db in databases.values():
            db.close()


@settings(max_examples=25, deadline=None)
@given(st.lists(operation, min_size=1, max_size=40))
def test_executor_agrees_with_oracle_on_both_planes(ops):
    databases = {plane: _database(vectorized=(plane == "vectorized"))
                 for plane in ("vectorized", "row")}
    serial = ScanExecutor(1)
    pooled = ScanExecutor(4)
    try:
        tables = {}
        for plane, db in databases.items():
            tables[plane] = db.create_table("t", num_columns=5)
            _apply(db, tables[plane], ops)
        rows = _oracle_rows(tables["vectorized"], (0, 1, 2, 3))
        for filter_name, filters, row_predicate in FILTERS:
            filtered = {rid: row for rid, row in rows.items()
                        if row_predicate(row)}
            for agg_name, make, expected_fn in AGGREGATES:
                expected = expected_fn(filtered)
                for plane, table in tables.items():
                    for exec_name, executor in (("serial", serial),
                                                ("pooled", pooled)):
                        got = execute_scan(table, make(), filters=filters,
                                           executor=executor)
                        assert got == expected, \
                            "%s/%s mismatch on %s plane (%s executor)" \
                            % (agg_name, filter_name, plane, exec_name)
    finally:
        serial.close()
        pooled.close()
        for db in databases.values():
            db.close()
