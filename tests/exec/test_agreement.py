"""Executor agreement property (the PR's acceptance criterion).

For random interleavings of inserts, updates, deletes, and merges,
every aggregate — sum/count/min/max/avg and single-column group-by,
with and without predicate filters — must return identical results at
``scan_parallelism=1`` and ``scan_parallelism=4``, and both must match
a brute-force ``select_version``-style oracle that reads each key's
latest committed version through the lineage chain walk.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, EngineConfig
from repro.core.merge import merge_update_range
from repro.core.table import DELETED
from repro.errors import (DuplicateKeyError, KeyNotFoundError,
                          RecordDeletedError)
from repro.exec.executor import ScanExecutor, execute_scan
from repro.exec.operators import (ColumnAvg, ColumnCount, ColumnMax,
                                  ColumnMin, ColumnSum, GroupBy, between,
                                  ge)

KEYS = 40

operation = st.one_of(
    st.tuples(st.just("insert"), st.integers(0, KEYS - 1),
              st.integers(0, 99)),
    st.tuples(st.just("update"), st.integers(0, KEYS - 1),
              st.integers(1, 3), st.integers(0, 99)),
    st.tuples(st.just("delete"), st.integers(0, KEYS - 1),
              st.integers(0, 0)),
    st.tuples(st.just("merge"), st.integers(0, 3), st.integers(0, 0)),
)


def _database() -> Database:
    return Database(EngineConfig(
        records_per_page=8, records_per_tail_page=8,
        update_range_size=16, merge_threshold=6, insert_range_size=16,
        background_merge=False))


def _apply(db, table, ops):
    for op in ops:
        kind, key = op[0], op[1]
        try:
            if kind == "insert":
                table.insert([key, op[2], key % 5, op[2] % 7, 7])
            elif kind == "update":
                rid = table.index.primary.get(key)
                if rid is not None:
                    table.update(rid, {op[2]: op[3]})
            elif kind == "delete":
                rid = table.index.primary.get(key)
                if rid is not None:
                    table.delete(rid)
            else:  # merge: drain queued merges, then one explicit range
                db.run_merges()
                ranges = table.sorted_ranges()
                if ranges:
                    update_range = ranges[key % len(ranges)]
                    if update_range.merged:
                        merge_update_range(table, update_range)
        except (DuplicateKeyError, KeyNotFoundError, RecordDeletedError):
            continue


def _oracle_rows(table, columns):
    """Brute-force: latest committed version per key via the chain walk."""
    rows = {}
    for key in range(KEYS):
        rid = table.index.primary.get(key)
        if rid is None:
            continue
        try:
            values = table.read_relative_version(rid, columns, 0)
        except KeyNotFoundError:
            continue
        if values is None or values is DELETED:
            continue
        if values[0] != key:
            continue  # deferred index maintenance
        rows[rid] = values
    return rows


AGGREGATES = [
    ("sum", lambda: ColumnSum(1),
     lambda rows: sum(r[1] for r in rows.values())),
    ("count", lambda: ColumnCount(),
     lambda rows: len(rows)),
    ("min", lambda: ColumnMin(1),
     lambda rows: min((r[1] for r in rows.values()), default=None)),
    ("max", lambda: ColumnMax(1),
     lambda rows: max((r[1] for r in rows.values()), default=None)),
    ("avg", lambda: ColumnAvg(1),
     lambda rows: (sum(r[1] for r in rows.values()) / len(rows))
     if rows else None),
    ("group_sum", lambda: GroupBy(2, lambda: ColumnSum(1)),
     lambda rows: _group(rows, 2, 1)),
]

FILTERS = [
    ("none", (), lambda row: True),
    ("ge", (ge(1, 50),), lambda row: row[1] >= 50),
    ("between", (between(3, 1, 4),), lambda row: 1 <= row[3] <= 4),
]


def _group(rows, key_column, value_column):
    groups = {}
    for row in rows.values():
        groups[row[key_column]] = groups.get(row[key_column], 0) \
            + row[value_column]
    return groups


@settings(max_examples=25, deadline=None)
@given(st.lists(operation, min_size=1, max_size=40))
def test_executor_agrees_with_oracle_at_all_parallelisms(ops):
    db = _database()
    serial = ScanExecutor(1)
    pooled = ScanExecutor(4)
    try:
        table = db.create_table("t", num_columns=5)
        _apply(db, table, ops)
        rows = _oracle_rows(table, (0, 1, 2, 3))
        for filter_name, filters, row_predicate in FILTERS:
            filtered = {rid: row for rid, row in rows.items()
                        if row_predicate(row)}
            for agg_name, make, expected_fn in AGGREGATES:
                expected = expected_fn(filtered)
                got_serial = execute_scan(table, make(), filters=filters,
                                          executor=serial)
                got_pooled = execute_scan(table, make(), filters=filters,
                                          executor=pooled)
                assert got_serial == expected, \
                    "%s/%s serial mismatch" % (agg_name, filter_name)
                assert got_pooled == expected, \
                    "%s/%s parallel mismatch" % (agg_name, filter_name)
    finally:
        serial.close()
        pooled.close()
        db.close()
