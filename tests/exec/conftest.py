"""Fixtures for the scan-executor suite.

``scan_parallelism`` parametrises every test over serial and pooled
execution; CI narrows the matrix via the ``REPRO_SCAN_PARALLELISM``
environment variable (a comma-separated list, default ``1,4``) so each
level runs in its own process. ``REPRO_VECTORIZED_SCANS=0`` forces the
whole suite onto the per-record row plane (CI runs that leg too, so
the fallback cannot rot); the default leaves the engine default
(vectorised) in place.
"""

from __future__ import annotations

import os

import pytest

from repro import Database, EngineConfig


def _parallelism_levels() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_SCAN_PARALLELISM", "1,4")
    return tuple(int(part) for part in raw.split(",") if part.strip())


def vectorized_scans_enabled() -> bool:
    """CI knob: force the row plane with ``REPRO_VECTORIZED_SCANS=0``."""
    return os.environ.get("REPRO_VECTORIZED_SCANS", "1") != "0"


@pytest.fixture(params=_parallelism_levels())
def scan_parallelism(request) -> int:
    return request.param


@pytest.fixture
def exec_config(scan_parallelism: int) -> EngineConfig:
    """Small geometry so scans cross many range/page boundaries."""
    return EngineConfig(
        records_per_page=8,
        records_per_tail_page=8,
        update_range_size=16,
        merge_threshold=8,
        insert_range_size=16,
        background_merge=False,
        scan_parallelism=scan_parallelism,
        vectorized_scans=vectorized_scans_enabled(),
    )


@pytest.fixture
def exec_db(exec_config: EngineConfig):
    database = Database(exec_config)
    yield database
    database.close()


@pytest.fixture
def exec_table(exec_db: Database):
    return exec_db.create_table("exec_test", num_columns=5, key_index=0)
