"""Parallel scans racing writers and merges (the stress criterion).

Balance transfers preserve the table's total, so any torn scan —
a partition pairing a pruned dirty-set with a pre-merge chain, a read
of a reclaimed page, a double- or un-counted patch — shows up as money
created or destroyed. Scans run with the executor pool while writers
commit transfers and the background merge engine consolidates ranges.
"""

import threading
import time

import pytest  # noqa: F401  (fixture plumbing)

from repro import Database, EngineConfig, IsolationLevel
from repro.core.query import Query
from repro.exec.executor import execute_scan
from repro.exec.operators import ColumnSum, GroupBy
from repro.txn.worker import TransactionWorker

ACCOUNTS = 64
BALANCE = 1_000


@pytest.fixture
def stress_db(scan_parallelism):
    database = Database(EngineConfig(
        records_per_page=8, records_per_tail_page=8,
        update_range_size=16, merge_threshold=8, insert_range_size=16,
        background_merge=True, merge_poll_interval=0.0005,
        scan_parallelism=scan_parallelism,
        txn_gc_threshold=256))
    yield database
    database.close()


class TestConcurrentMergeStress:
    def test_totals_survive_parallel_scans_under_merges(self, stress_db):
        db = stress_db
        table = db.create_table("bank", num_columns=3)
        for key in range(ACCOUNTS):
            table.insert([key, BALANCE, key % 4])
        stop = threading.Event()
        failures: list[str] = []

        def writer(seed: int) -> None:
            worker = TransactionWorker(
                db.txn_manager, max_retries=500,
                isolation=IsolationLevel.REPEATABLE_READ)
            i = 0
            while not stop.is_set():
                source = (seed + i) % ACCOUNTS
                target = (seed + i + 11) % ACCOUNTS
                if source == target:
                    i += 1
                    continue

                def body(txn, s=source, t=target):
                    a = txn.select(table, s, (1,))
                    b = txn.select(table, t, (1,))
                    txn.update(table, s, {1: a[1] - 5})
                    txn.update(table, t, {1: b[1] + 5})

                worker.run_one(body)
                i += 1

        expected = ACCOUNTS * BALANCE

        def snapshot_conserved(as_of: int) -> bool:
            """Total at a fixed as_of must settle to the conserved sum.

            A transaction that took its commit time before *as_of* may
            still flip PRE_COMMIT→COMMITTED mid-scan (transient, a few
            scheduler ticks); a genuinely torn read — pruned patch-set
            against a pre-merge chain, reclaimed page, double-counted
            patch — stays wrong forever. Re-scanning the same snapshot
            discriminates the two.
            """
            deadline = time.monotonic() + 5.0
            while True:
                total = table.scan_sum(1, as_of=as_of)
                groups = execute_scan(
                    table, GroupBy(2, lambda: ColumnSum(1)), as_of=as_of)
                if total == expected and sum(groups.values()) == expected:
                    return True
                if time.monotonic() > deadline:
                    failures.append(
                        "as_of=%d settled at sum=%d groups=%r"
                        % (as_of, total, groups))
                    return False
                time.sleep(0.002)

        def scanner() -> None:
            while not stop.is_set():
                # Latest-committed scans are not snapshots (commits
                # landing mid-scan legitimately skew the running total)
                # — run them for crash-freedom and epoch pressure only.
                table.scan_sum(1)
                execute_scan(table, GroupBy(2, lambda: ColumnSum(1)))
                # The conserved-total invariant holds at a snapshot.
                if not snapshot_conserved(table.clock.now()):
                    return

        threads = [threading.Thread(target=writer, args=(i,), daemon=True)
                   for i in range(3)]
        threads += [threading.Thread(target=scanner, daemon=True)
                    for _ in range(2)]
        for thread in threads:
            thread.start()
        time.sleep(1.0)
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not failures, failures[:3]
        # Quiesced: every read path agrees on the conserved total.
        assert table.scan_sum(1) == ACCOUNTS * BALANCE
        assert Query(table).sum(0, ACCOUNTS - 1, 1) == ACCOUNTS * BALANCE
        db.run_merges()
        assert table.scan_sum(1) == ACCOUNTS * BALANCE
        # Epoch-protected partitions never kept reclaimable pages alive
        # past their exit: with all queries drained, retirements drain.
        db.epoch_manager.reclaim()
        assert db.epoch_manager.active_queries == 0
