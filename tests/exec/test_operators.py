"""Unit tests for the pluggable scan operators."""

import pytest

from repro.core.types import NULL
from repro.exec.operators import (CollectRows, ColumnAvg, ColumnCount,
                                  ColumnMax, ColumnMin, ColumnSum, GroupBy,
                                  between, eq, ge, gt, le, lt, matches_all,
                                  ne)


def fold(aggregate, rows):
    state = aggregate.create()
    for rid, row in rows:
        state = aggregate.add(state, rid, row)
    return aggregate.finalize(state)


def fold_split(aggregate, rows, split):
    """Fold through two partitions + combine (scheduling equivalence)."""
    left = aggregate.create()
    for rid, row in rows[:split]:
        left = aggregate.add(left, rid, row)
    right = aggregate.create()
    for rid, row in rows[split:]:
        right = aggregate.add(right, rid, row)
    return aggregate.finalize(aggregate.combine(left, right))


ROWS = [(i + 1, {0: i, 1: i * 10, 2: i % 3}) for i in range(10)]


class TestAggregates:
    def test_sum(self):
        assert fold(ColumnSum(1), ROWS) == sum(i * 10 for i in range(10))

    def test_sum_skips_null(self):
        rows = [(1, {1: 5}), (2, {1: NULL}), (3, {1: 7})]
        assert fold(ColumnSum(1), rows) == 12

    def test_count_star_and_column(self):
        rows = [(1, {1: 5}), (2, {1: NULL}), (3, {1: 7})]
        assert fold(ColumnCount(), rows) == 3
        assert fold(ColumnCount(1), rows) == 2

    def test_min_max(self):
        assert fold(ColumnMin(1), ROWS) == 0
        assert fold(ColumnMax(1), ROWS) == 90
        assert fold(ColumnMin(1), []) is None
        assert fold(ColumnMax(1), []) is None

    def test_avg(self):
        assert fold(ColumnAvg(0), ROWS) == sum(range(10)) / 10
        assert fold(ColumnAvg(0), []) is None

    def test_group_by_sum(self):
        result = fold(GroupBy(2, lambda: ColumnSum(1)), ROWS)
        expected = {}
        for i in range(10):
            expected[i % 3] = expected.get(i % 3, 0) + i * 10
        assert result == expected

    def test_group_by_skips_null_keys(self):
        rows = [(1, {1: 5, 2: NULL}), (2, {1: 7, 2: 1})]
        assert fold(GroupBy(2, lambda: ColumnSum(1)), rows) == {1: 7}

    def test_collect_rows_order(self):
        result = fold(CollectRows((0, 1)), ROWS)
        assert result == ROWS

    @pytest.mark.parametrize("make", [
        lambda: ColumnSum(1),
        lambda: ColumnCount(),
        lambda: ColumnCount(1),
        lambda: ColumnMin(1),
        lambda: ColumnMax(1),
        lambda: ColumnAvg(1),
        lambda: GroupBy(2, lambda: ColumnAvg(1)),
        lambda: CollectRows((0, 1, 2)),
    ])
    @pytest.mark.parametrize("split", [0, 3, 10])
    def test_combine_matches_single_fold(self, make, split):
        aggregate = make()
        assert fold_split(aggregate, ROWS, split) == fold(make(), ROWS)

    def test_combine_empty_partials(self):
        aggregate = ColumnMin(1)
        assert aggregate.combine(None, 5) == 5
        assert aggregate.combine(5, None) == 5
        assert aggregate.combine(None, None) is None


class TestFilters:
    def test_comparators(self):
        row = {1: 5}
        assert eq(1, 5).matches(row)
        assert not eq(1, 4).matches(row)
        assert ne(1, 4).matches(row)
        assert lt(1, 6).matches(row)
        assert le(1, 5).matches(row)
        assert gt(1, 4).matches(row)
        assert ge(1, 5).matches(row)
        assert between(1, 5, 9).matches(row)
        assert not between(1, 6, 9).matches(row)

    def test_null_never_matches(self):
        assert not eq(1, 5).matches({1: NULL})
        assert not ne(1, 4).matches({1: NULL})
        assert not ge(1, 0).matches({1: NULL})

    def test_matches_all(self):
        row = {1: 5, 2: 9}
        assert matches_all((ge(1, 5), lt(2, 10)), row)
        assert not matches_all((ge(1, 5), lt(2, 9)), row)
        assert matches_all((), row)
