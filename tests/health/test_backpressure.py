"""Admission control: watermark levels, throttling, load shedding."""

import pytest

from repro import Database, EngineConfig
from repro.errors import (BackpressureError, IllegalTransactionState,
                          TransactionAborted)
from repro.health import (LEVEL_HARD, LEVEL_OK, LEVEL_SOFT,
                          AdmissionController)
from repro.obs.registry import MetricsRegistry


class FakeBacklog:
    def __init__(self, value=0):
        self.value = value
        self.kicks = 0

    def probe(self):
        return self.value

    def kick(self):
        self.kicks += 1


def make_controller(backlog, **kwargs):
    kwargs.setdefault("throttle_wait", 0.0005)
    kwargs.setdefault("max_wait", 0.002)
    return AdmissionController(backlog.probe, drain_kick=backlog.kick,
                               metrics=MetricsRegistry(), **kwargs)


class TestController:
    def test_requires_a_watermark(self):
        with pytest.raises(ValueError):
            AdmissionController(lambda: 0)

    def test_levels(self):
        backlog = FakeBacklog()
        controller = make_controller(backlog, soft=4, hard=8)
        assert controller.level() == LEVEL_OK
        backlog.value = 4
        assert controller.level() == LEVEL_SOFT
        backlog.value = 8
        assert controller.level() == LEVEL_HARD

    def test_below_soft_is_a_fast_pass(self):
        backlog = FakeBacklog(3)
        controller = make_controller(backlog, soft=4, hard=8)
        controller.admit()
        assert backlog.kicks == 0
        snapshot = controller.metrics.snapshot()["health"]
        assert snapshot["writes_throttled"] == 0
        assert snapshot["writes_rejected"] == 0

    def test_soft_zone_throttles_kicks_and_proceeds(self):
        backlog = FakeBacklog(5)
        controller = make_controller(backlog, soft=4, hard=8)
        controller.admit()  # stays above soft: waits out max_wait, proceeds
        assert backlog.kicks == 1
        snapshot = controller.metrics.snapshot()["health"]
        assert snapshot["writes_throttled"] == 1
        assert snapshot["writes_rejected"] == 0
        assert snapshot["throttle_seconds"]["count"] == 1
        assert snapshot["throttle_seconds"]["sum"] > 0.0

    def test_throttle_returns_early_once_drained(self):
        backlog = FakeBacklog(5)
        controller = make_controller(backlog, soft=4, hard=8,
                                     throttle_wait=0.0005, max_wait=10.0)

        real_kick = backlog.kick

        def draining_kick():
            real_kick()
            backlog.value = 0  # the daemon catches up immediately

        controller._drain_kick = draining_kick
        controller.admit()  # must not wait anywhere near max_wait
        snapshot = controller.metrics.snapshot()["health"]
        assert snapshot["throttle_seconds"]["sum"] < 1.0

    def test_hard_watermark_sheds(self):
        backlog = FakeBacklog(8)
        controller = make_controller(backlog, soft=4, hard=8)
        with pytest.raises(BackpressureError) as excinfo:
            controller.admit()
        error = excinfo.value
        assert error.retryable
        assert error.backlog == 8
        assert error.watermark == 8
        assert isinstance(error, TransactionAborted)
        snapshot = controller.metrics.snapshot()["health"]
        assert snapshot["writes_rejected"] == 1
        assert snapshot["writes_throttled"] == 0

    def test_escalates_to_reject_while_throttling(self):
        backlog = FakeBacklog(5)
        controller = make_controller(backlog, soft=4, hard=8,
                                     throttle_wait=0.0005, max_wait=10.0)

        def growing_probe():
            backlog.value += 2  # backlog keeps growing under throttle
            return backlog.value

        controller._backlog_probe = growing_probe
        with pytest.raises(BackpressureError):
            controller.admit()

    def test_hard_only_defaults_soft_to_hard(self):
        backlog = FakeBacklog(0)
        controller = make_controller(backlog, hard=8)
        assert controller.soft == 8
        backlog.value = 7
        controller.admit()  # below both: fast pass
        backlog.value = 8
        with pytest.raises(BackpressureError):
            controller.admit()

    def test_soft_only_never_rejects(self):
        backlog = FakeBacklog(10 ** 6)
        controller = make_controller(backlog, soft=4)
        controller.admit()  # throttles, then proceeds: no hard watermark


class TestDatabaseWiring:
    def make_db(self, **overrides):
        config = EngineConfig(
            records_per_page=8, records_per_tail_page=8,
            update_range_size=16, merge_threshold=4,
            insert_range_size=16, background_merge=False,
            backpressure_throttle=0.0005, backpressure_max_wait=0.002,
            **overrides)
        return Database(config)

    def load(self, db, rows=64):
        table = db.create_table("t", 3)
        query = db.query("t")
        for key in range(rows):
            query.insert(key, key, key)
        db.run_merges()  # start each test from an empty backlog
        return table, query

    def test_no_watermarks_means_no_admission(self):
        with self.make_db() as db:
            table, _ = self.load(db)
            assert db._admission is None
            assert table.admission is None

    def test_hard_watermark_rejects_then_recovers(self):
        with self.make_db(merge_backlog_hard=4) as db:
            table, query = self.load(db)
            assert table.admission is db._admission
            with pytest.raises(BackpressureError):
                for round_no in range(200):
                    for key in range(64):
                        query.update(key, None, round_no, None)
            assert db.merge_engine.backlog >= 4
            # Draining the queue lifts the gate: writes flow again.
            db.run_merges()
            query.update(1, None, 999, None)
            assert query.select(1, 0, [1, 1, 1])[0].columns[1] == 999
            rejected = db.metrics()["health"]["writes_rejected"]
            assert rejected >= 1

    def test_all_write_paths_are_gated(self):
        with self.make_db(merge_backlog_hard=10 ** 6) as db:
            table, query = self.load(db, rows=4)

            class AlwaysReject:
                def admit(self):
                    raise BackpressureError("gated")

            table.admission = AlwaysReject()
            with pytest.raises(BackpressureError):
                query.insert(100, 0, 0)
            with pytest.raises(BackpressureError):
                query.update(1, None, 5, None)
            with pytest.raises(BackpressureError):
                query.delete(2)
            txn = db.begin_transaction()
            with pytest.raises(BackpressureError):
                txn.update(table, 3, {1: 7})
            with pytest.raises(IllegalTransactionState):
                txn.update(table, 3, {1: 8})  # the statement aborted it
            # Reads are never admission-gated.
            table.admission = db._admission
            assert query.select(1, 0, [1, 1, 1])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(merge_backlog_soft=0)
        with pytest.raises(ValueError):
            EngineConfig(merge_backlog_soft=8, merge_backlog_hard=4)
        with pytest.raises(ValueError):
            EngineConfig(backpressure_throttle=-1.0)
        with pytest.raises(ValueError):
            EngineConfig(merge_quarantine_after=0)
        with pytest.raises(ValueError):
            EngineConfig(supervisor_backoff_base=0.1,
                         supervisor_backoff_cap=0.01)
