"""The engine health surface, and the supervision acceptance story.

The headline test here is the ISSUE 10 acceptance criterion: a
failpoint crashes the merge worker deterministically, the engine keeps
serving, the supervisor restarts the worker with backoff, the crashing
range is quarantined after N crashes, and ``Database.health()``
explains all of it — then recovers to OK once the fault clears.
"""

import time

import pytest

from repro import Database, EngineConfig
from repro.errors import BackpressureError
from repro.fault import FAULTS
from repro.health import HealthState, ServiceState, check_health


@pytest.fixture(autouse=True)
def _clean_failpoints():
    FAULTS.clear()
    yield
    FAULTS.clear()


def wait_until(predicate, timeout=10.0, tick=0.002):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(tick)
    pytest.fail("condition not reached within %.1fs" % timeout)


def small_config(**overrides):
    base = dict(records_per_page=8, records_per_tail_page=8,
                update_range_size=16, merge_threshold=4,
                insert_range_size=16, background_merge=False)
    base.update(overrides)
    return EngineConfig(**base)


def load(db, rows=16):
    db.create_table("t", 3)
    query = db.query("t")
    for key in range(rows):
        query.insert(key, key, key)
    return query


class TestHealthReport:
    def test_fresh_database_is_ok(self):
        with Database(small_config()) as db:
            report = db.health()
            assert report.state is HealthState.OK
            assert report.reasons == ()

    def test_report_shapes(self):
        with Database(small_config(merge_backlog_hard=4)) as db:
            report = db.health()
            assert report.component("backpressure").state is HealthState.OK
            assert report.component("nope") is None
            as_dict = report.as_dict()
            assert as_dict["state"] == "OK"
            assert {"component": "backpressure", "state": "OK",
                    "reason": ""} in as_dict["components"]

    def test_health_state_gauge_tracks_report(self):
        with Database(small_config()) as db:
            assert db.metrics()["health"]["state"] == 0
            assert "lstore_health_state 0" in db.render_metrics()

    def test_wal_poisoning_is_failed(self, tmp_path):
        config = small_config(wal_enabled=True, data_dir=str(tmp_path))
        with Database(config) as db:
            load(db)
            assert db.health().component("wal").state is HealthState.OK
            db._wal._poisoned = RuntimeError("fsync torn away")
            report = db.health()
            assert report.state is HealthState.FAILED
            assert "poisoned: fsync torn away" in \
                report.component("wal").reason
            assert db.metrics()["wal"]["poisoned"] == 1
            assert db.metrics()["wal"]["poison_reason"] == \
                "fsync torn away"
            db._wal._poisoned = None  # let close() flush cleanly

    def test_backpressure_levels_degrade(self):
        config = small_config(merge_backlog_soft=2, merge_backlog_hard=4,
                              backpressure_throttle=0.0,
                              backpressure_max_wait=0.0)
        with Database(config) as db:
            query = load(db, rows=64)
            db.run_merges()  # start from an empty backlog
            with pytest.raises(BackpressureError):
                for round_no in range(200):
                    for key in range(64):
                        query.update(key, None, round_no, None)
            report = db.health()
            assert report.state is HealthState.DEGRADED
            assert "hard watermark" in \
                report.component("backpressure").reason
            db.run_merges()
            assert db.health().state is HealthState.OK

    def test_sampler_death_degrades(self, tmp_path):
        config = small_config(
            obs_sample_interval=30.0,
            obs_sample_path=str(tmp_path / "metrics.jsonl"))
        with Database(config) as db:
            assert db.health().component("obs.sampler").state \
                is HealthState.OK
            service = db.supervisor.service("obs.sampler")
            assert service.stop()
            report = db.health()
            assert report.state is HealthState.DEGRADED
            assert report.component("obs.sampler").state \
                is HealthState.DEGRADED

    def test_stopped_merge_under_background_config_degrades(self):
        config = small_config(background_merge=True,
                              merge_poll_interval=0.005)
        with Database(config) as db:
            load(db)
            assert db.health().component("merge").state is HealthState.OK
            db.merge_engine.stop(drain=False)
            report = db.health()
            assert report.state is HealthState.DEGRADED
            assert "merge" in report.reasons[0]


class TestSupervisedMergeAcceptance:
    """ISSUE 10 acceptance: crash → restart → quarantine → explain."""

    def make_db(self):
        return Database(small_config(
            background_merge=True, merge_poll_interval=0.002,
            merge_quarantine_after=3,
            supervisor_backoff_base=0.002, supervisor_backoff_cap=0.01))

    def test_crashing_merge_is_restarted_and_quarantined(self):
        db = self.make_db()
        try:
            query = load(db)
            # Every install attempt of the (single) update range dies.
            FAULTS.configure("merge.before_install=raise:100")
            for round_no in range(6):
                for key in range(16):
                    query.update(key, None, round_no, None)
            wait_until(lambda: db.merge_engine.quarantined_count >= 1)

            service = db.supervisor.service("merge")
            assert service.crash_count >= 3
            assert service.restart_count >= 2
            assert "merge.before_install" in service.last_error
            assert db.merge_engine.last_crash is not None

            # The engine keeps serving correct answers off the row
            # plane while the merge worker crashes and restarts.
            row = query.select(3, 0, [1, 1, 1])[0]
            assert row.columns == (3, 5, 3)
            assert query.sum(0, 15, 0) == sum(range(16))

            report = db.health()
            assert report.state is HealthState.DEGRADED
            quarantine = report.component("merge.quarantine")
            assert quarantine.state is HealthState.DEGRADED
            assert "quarantined" in quarantine.reason
            assert "merge.before_install" in quarantine.reason

            snapshot = db.metrics()
            assert snapshot["merge"]["quarantined_ranges"] >= 1
            assert snapshot["merge"]["task_crashes"] >= 3
            assert snapshot["health"]["service_crashes"] >= 3
            assert snapshot["health"]["service_restarts"] >= 2
        finally:
            FAULTS.clear()
            db.close()

    def test_unquarantine_resumes_merging(self):
        db = self.make_db()
        try:
            query = load(db)
            FAULTS.configure("merge.before_install=raise:100")
            for round_no in range(6):
                for key in range(16):
                    query.update(key, None, round_no, None)
            wait_until(lambda: db.merge_engine.quarantined_count >= 1)
            FAULTS.clear()

            [task] = db.merge_engine.quarantined_tasks()
            assert db.merge_engine.unquarantine(task.table, task.range_id,
                                                task.kind)
            assert db.merge_engine.quarantined_count == 0
            # The re-notified range merges once the worker is healthy.
            wait_until(
                lambda: db.metrics()["merge"]["ranges_merged"] >= 1)
            wait_until(lambda: db.health().state is HealthState.OK,
                       timeout=15.0)
        finally:
            FAULTS.clear()
            db.close()

    def test_restart_budget_exhaustion_is_failed(self):
        db = Database(small_config(
            background_merge=True, merge_poll_interval=0.002,
            merge_quarantine_after=100,  # never quarantine: keep crashing
            supervisor_backoff_base=0.002, supervisor_backoff_cap=0.01,
            supervisor_max_restarts=2))
        try:
            query = load(db)
            FAULTS.configure("merge.before_install=raise:100")
            for round_no in range(6):
                for key in range(16):
                    query.update(key, None, round_no, None)
            service = db.supervisor.service("merge")
            wait_until(lambda: service.state == ServiceState.FAILED)
            report = db.health()
            assert report.state is HealthState.FAILED
            assert "restart budget" in report.component("merge").reason
            assert db.metrics()["health"]["services_failed"] == 1
            # Foreground serving still works; only merging is dead.
            assert query.select(3, 0, [1, 1, 1])
        finally:
            FAULTS.clear()
            db.close()


class TestCheckHealthDirect:
    def test_check_health_matches_method(self):
        with Database(small_config()) as db:
            assert check_health(db).state is db.health().state
