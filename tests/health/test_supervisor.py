"""Supervised services: crash capture, backoff restarts, give-up."""

import threading
import time

import pytest

from repro.health import ServiceState, SupervisedService, Supervisor
from repro.obs.registry import MetricsRegistry

# Tight backoffs so restart ladders complete in milliseconds.
FAST = dict(backoff_base=0.001, backoff_cap=0.004)


def wait_until(predicate, timeout=5.0, tick=0.002):
    """Poll *predicate* until true; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(tick)
    pytest.fail("condition not reached within %.1fs" % timeout)


class TestSupervisedService:
    def test_clean_return_is_stopped_not_crashed(self):
        ran = threading.Event()
        service = SupervisedService("svc", ran.set, **FAST)
        service.start()
        wait_until(lambda: not service.alive)
        assert ran.is_set()
        assert service.state == ServiceState.STOPPED
        assert service.crash_count == 0
        assert service.restart_count == 0
        assert service.last_error is None

    def test_crash_restarts_with_accounting(self):
        runs = []

        def body():
            runs.append(1)
            if len(runs) < 3:
                raise RuntimeError("boom %d" % len(runs))
            # Third run: healthy, wait for shutdown.
            stop.wait()

        stop = threading.Event()
        service = SupervisedService("svc", body, stop_hook=stop.set, **FAST)
        service.start()
        wait_until(lambda: len(runs) >= 3)
        wait_until(lambda: service.state == ServiceState.RUNNING)
        assert service.crash_count == 2
        assert service.restart_count == 2
        assert service.last_error == "RuntimeError: boom 2"
        assert "boom 2" in service.last_traceback
        assert service.stop()
        assert service.state == ServiceState.STOPPED

    def test_max_restarts_gives_up_as_failed(self):
        runs = []

        def body():
            runs.append(1)
            raise RuntimeError("always")

        service = SupervisedService("svc", body, max_restarts=2, **FAST)
        service.start()
        wait_until(lambda: not service.alive)
        assert service.state == ServiceState.FAILED
        # Initial run + 2 restarts, then the budget is exhausted.
        assert len(runs) == 3
        assert service.crash_count == 3
        assert service.restart_count == 2

    def test_stop_during_backoff_exits_promptly(self):
        def body():
            raise RuntimeError("crash into a long backoff")

        service = SupervisedService("svc", body, backoff_base=30.0,
                                    backoff_cap=60.0)
        service.start()
        wait_until(lambda: service.state == ServiceState.BACKOFF)
        started = time.monotonic()
        assert service.stop(timeout=5.0)
        assert time.monotonic() - started < 5.0
        assert service.state == ServiceState.STOPPED

    def test_backoff_delay_caps_and_jitters(self):
        service = SupervisedService("svc", lambda: None,
                                    backoff_base=0.01, backoff_cap=0.05)
        service.crash_streak = 1
        for _ in range(50):
            assert 0.005 <= service._backoff_delay() < 0.015
        service.crash_streak = 30  # deep streak: exponent clamps, cap wins
        for _ in range(50):
            assert 0.025 <= service._backoff_delay() < 0.075

    def test_healthy_run_resets_the_streak(self):
        service = SupervisedService("svc", lambda: None,
                                    healthy_seconds=0.0, **FAST)
        service.crash_streak = 7
        service._record_crash(RuntimeError("x"), started=time.perf_counter())
        # healthy_seconds=0: any run counts as healthy, streak restarts.
        assert service.crash_streak == 1
        assert service.crash_count == 1


class TestSupervisor:
    def test_launch_tracks_and_counts(self):
        registry = MetricsRegistry()
        supervisor = Supervisor(metrics=registry, **FAST)
        runs = []
        stop = threading.Event()

        def body():
            runs.append(1)
            if len(runs) == 1:
                raise RuntimeError("first run dies")
            stop.wait()

        service = supervisor.launch("merge", body, stop_hook=stop.set)
        assert supervisor.service("merge") is service
        wait_until(lambda: service.restart_count >= 1)
        snapshot = registry.snapshot()
        assert snapshot["health"]["service_crashes"] == 1
        assert snapshot["health"]["service_restarts"] == 1
        assert snapshot["health"]["services_failed"] == 0
        supervisor.stop_all()
        assert not service.alive

    def test_failed_service_shows_in_gauge(self):
        registry = MetricsRegistry()
        supervisor = Supervisor(metrics=registry, max_restarts=0, **FAST)

        def body():
            raise RuntimeError("dead on arrival")

        service = supervisor.launch("svc", body)
        wait_until(lambda: not service.alive)
        assert service.state == ServiceState.FAILED
        assert registry.snapshot()["health"]["services_failed"] == 1

    def test_launch_over_live_service_rejected(self):
        supervisor = Supervisor(**FAST)
        stop = threading.Event()
        supervisor.launch("svc", stop.wait, stop_hook=stop.set)
        with pytest.raises(RuntimeError):
            supervisor.launch("svc", lambda: None)
        supervisor.stop_all()

    def test_relaunch_after_stop_allowed(self):
        supervisor = Supervisor(**FAST)
        stop = threading.Event()
        first = supervisor.launch("svc", stop.wait, stop_hook=stop.set)
        assert first.stop()
        stop2 = threading.Event()
        second = supervisor.launch("svc", stop2.wait, stop_hook=stop2.set)
        assert second is not first
        assert supervisor.service("svc") is second
        supervisor.stop_all()
