"""Fixture-snippet coverage for every REPRO-L00x lint rule."""

from __future__ import annotations

from repro.analysis.lint import lint_sources

#: A module declaring one hot lock the fixtures acquire.
_DECL = '''
from repro.analysis.locks import make_lock

class Engine:
    def __init__(self):
        self._lock = make_lock("wal.append")
'''


def _rules(result):
    return [violation.rule for violation in result.violations]


class TestL001AcquirePairing:
    def test_paired_acquire_is_clean(self):
        result = lint_sources({"core/mod.py": '''
class Page:
    def write(self):
        self._lock.acquire()
        try:
            pass
        finally:
            self._lock.release()
'''})
        assert "L001" not in _rules(result)

    def test_unpaired_acquire_flagged(self):
        result = lint_sources({"core/mod.py": '''
class Page:
    def write(self):
        self._lock.acquire()
        self.value = 1
        self._lock.release()
'''})
        assert _rules(result) == ["L001"]

    def test_acquire_last_in_if_body_pairs_with_following_try(self):
        # The contested-latch idiom: acquire(False) probe, blocking
        # acquire inside the if body, try/finally right after the if.
        result = lint_sources({"core/mod.py": '''
class Segment:
    def allocate(self):
        if not self._lock.acquire(False):
            self.waits += 1
            self._lock.acquire()
        try:
            pass
        finally:
            self._lock.release()
'''})
        assert "L001" not in _rules(result)

    def test_finally_releasing_different_lock_flagged(self):
        result = lint_sources({"core/mod.py": '''
class Page:
    def write(self):
        self._lock.acquire()
        try:
            pass
        finally:
            self._other.release()
'''})
        assert _rules(result) == ["L001"]


class TestL002HotLockRegions:
    def test_sleep_under_hot_lock_flagged(self):
        result = lint_sources({
            "wal/decl.py": _DECL,
            "wal/mod.py": '''
import time

class Engine:
    def bad(self):
        with self._lock:
            time.sleep(0.1)
''',
        })
        assert "L002" in _rules(result)

    def test_callback_under_hot_lock_flagged(self):
        result = lint_sources({
            "wal/decl.py": _DECL,
            "wal/mod.py": '''
class Engine:
    def bad(self):
        with self._lock:
            self.merge_notifier(self, 1, "update")
''',
        })
        assert "L002" in _rules(result)

    def test_file_io_under_hot_lock_flagged(self):
        result = lint_sources({
            "wal/decl.py": _DECL,
            "wal/mod.py": '''
class Engine:
    def bad(self):
        with self._lock:
            self._file.write(b"x")
''',
        })
        assert "L002" in _rules(result)

    def test_file_io_in_acquire_region_flagged(self):
        result = lint_sources({
            "wal/decl.py": _DECL,
            "wal/mod.py": '''
import os

class Engine:
    def bad(self):
        self._lock.acquire()
        try:
            os.fsync(3)
        finally:
            self._lock.release()
''',
        })
        assert "L002" in _rules(result)

    def test_callback_after_release_is_clean(self):
        result = lint_sources({
            "wal/decl.py": _DECL,
            "wal/mod.py": '''
class Engine:
    def good(self):
        with self._lock:
            value = 1
        self.merge_notifier(self, value, "update")
''',
        })
        assert "L002" not in _rules(result)

    def test_unnamed_lock_region_not_checked(self):
        # A plain threading.Lock is not in the hot set: L002 does not
        # constrain it (the named annotation table scopes the rule).
        result = lint_sources({"wal/mod.py": '''
import time

class Other:
    def fine(self):
        with self._lock:
            time.sleep(0.1)
'''})
        assert "L002" not in _rules(result)

    def test_lambda_defined_under_lock_not_flagged(self):
        result = lint_sources({
            "wal/decl.py": _DECL,
            "wal/mod.py": '''
class Engine:
    def good(self):
        with self._lock:
            hook = lambda page: self.merge_notifier(self, 1, "x")
        return hook
''',
        })
        assert "L002" not in _rules(result)


class TestL003StatAttributes:
    def test_adhoc_stat_assignment_flagged(self):
        result = lint_sources({"core/mod.py": '''
class Thing:
    def __init__(self):
        self.stat_foo = 0

    def bump(self):
        self.stat_foo += 1
'''})
        assert _rules(result) == ["L003", "L003"]

    def test_registry_alias_store_allowed(self):
        result = lint_sources({"core/mod.py": '''
from repro.obs.registry import CounterStat

class Thing:
    stat_foo = CounterStat("_stat_foo", "doc")

    def restore(self):
        self.stat_foo = 7
'''})
        assert "L003" not in _rules(result)

    def test_obs_package_exempt(self):
        result = lint_sources({"obs/mod.py": '''
class Registry:
    def __init__(self):
        self.stat_foo = 0
'''})
        assert "L003" not in _rules(result)


class TestL004WallClock:
    def test_time_time_in_core_flagged(self):
        result = lint_sources({"core/mod.py": '''
import time

def commit_time():
    return time.time()
'''})
        assert _rules(result) == ["L004"]

    def test_perf_counter_allowed(self):
        result = lint_sources({"core/mod.py": '''
import time

def measure():
    return time.perf_counter()
'''})
        assert "L004" not in _rules(result)

    def test_obs_package_exempt(self):
        result = lint_sources({"obs/mod.py": '''
import time

def wall():
    return time.time()
'''})
        assert "L004" not in _rules(result)


class TestSuppressions:
    def test_reasoned_suppression_downgrades(self):
        result = lint_sources({"core/mod.py": '''
class Thing:
    def __init__(self):
        # repro: allow(L003) legacy counter kept for the frobnicator
        self.stat_foo = 0
'''})
        assert result.clean
        assert len(result.suppressed) == 1
        assert result.suppressed[0].reason.startswith("legacy counter")

    def test_same_line_suppression(self):
        result = lint_sources({"core/mod.py": (
            "class Thing:\n"
            "    def __init__(self):\n"
            "        self.stat_foo = 0"
            "  # repro: allow(L003) inline justification\n")})
        assert result.clean
        assert len(result.suppressed) == 1

    def test_suppression_without_reason_is_violation(self):
        result = lint_sources({"core/mod.py": '''
class Thing:
    def __init__(self):
        # repro: allow(L003)
        self.stat_foo = 0
'''})
        rules = _rules(result)
        assert "L000" in rules  # the naked allow() itself
        assert "L003" in rules  # and it does not suppress

    def test_suppression_only_covers_named_rule(self):
        result = lint_sources({"core/mod.py": '''
import time

class Thing:
    def __init__(self):
        # repro: allow(L003) wrong rule named here
        self.when = time.time()
'''})
        assert _rules(result) == ["L004"]
