"""Regression tests for the real violations the analyzers surfaced.

Each test pins one concrete fix so the bug cannot quietly return:

* ``LogManager.close`` used to close the segment file while holding
  the ``wal.append`` latch (file I/O under a hot lock, REPRO-L002).
* The single-task merge path used to fire the pluggable retry
  notifier and epoch ``on_reclaim`` hooks while holding the
  processing lock (callback under a hot lock).
* ``EpochManager.retire`` used to reclaim inline unconditionally, so
  merge callers holding ``merge.processing``/``range.merge`` ran
  ``on_reclaim`` hooks under those latches.
"""

from __future__ import annotations

from types import SimpleNamespace

from repro.core.epoch import EpochManager
from repro.core.merge import MergeEngine, MergeResult, MergeTask
from repro.wal.log import LogManager


class _ClosingProbe:
    """File-handle proxy recording the latch state at close() time."""

    def __init__(self, inner, log, seen):
        self._inner = inner
        self._log = log
        self._seen = seen

    def close(self):
        self._seen.append(self._log._lock.locked())
        self._inner.close()

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestWALCloseOutsideLatch:
    def test_close_releases_latch_before_file_close(self, tmp_path):
        log = LogManager(str(tmp_path / "wal.log"))
        seen: list[bool] = []
        log._file = _ClosingProbe(log._file, log, seen)
        log.close()
        assert seen == [False]


def _stub_table(reclaim=lambda: 0):
    return SimpleNamespace(
        schema=SimpleNamespace(name="stub"),
        epoch_manager=SimpleNamespace(reclaim=reclaim))


class TestSingleTaskRetryNotifier:
    def test_retry_notifier_runs_outside_processing_lock(self):
        """run_pending with merge_batch_ranges=1 (the deterministic
        test-mode path) must re-enqueue retries only after _process has
        released the processing lock."""
        engine = MergeEngine()
        engine._process_inner = \
            lambda task: MergeResult(performed=False, retry=True)
        table = _stub_table()
        MergeEngine.notifier(engine, table, 0, "update")  # enqueue

        lock_free_at_notify = []

        def probing_notifier(probed_table, range_id, kind):
            free = engine._processing.acquire(blocking=False)
            if free:
                engine._processing.release()
            lock_free_at_notify.append(free)

        engine.notifier = probing_notifier
        completed = engine.run_pending()
        assert completed == 0
        assert lock_free_at_notify == [True]

    def test_run_pending_reclaims_after_each_task(self):
        """The single-task path must trigger deferred epoch
        reclamation itself — _process_inner retires with
        reclaim=False, so skipping it would leak retired pages until
        some reader exits."""
        engine = MergeEngine()
        engine._process_inner = lambda task: MergeResult(performed=True)
        reclaims = []
        table = _stub_table(reclaim=lambda: reclaims.append(True))
        MergeEngine.notifier(engine, table, 0, "update")
        engine.run_pending()
        assert reclaims == [True]


class TestDeferredEpochReclamation:
    def test_retire_with_reclaim_false_defers_hooks(self):
        manager = EpochManager()
        fired = []
        page = SimpleNamespace(deallocated=False)
        manager.retire([page], retired_at=5, on_reclaim=fired.append,
                       reclaim=False)
        assert fired == []
        assert manager.pending_pages == 1
        assert manager.reclaim() == 1
        assert fired == [page]
        assert page.deallocated

    def test_retire_default_still_reclaims_inline(self):
        manager = EpochManager()
        fired = []
        page = SimpleNamespace(deallocated=False)
        manager.retire([page], retired_at=5, on_reclaim=fired.append)
        assert fired == [page]
        assert manager.pending_pages == 0

    def test_merge_path_leaves_nothing_pending(self, db, table, config):
        """End-to-end: a full merge retires old base pages with
        deferred reclamation, and the engine reclaims them before
        run_merges returns (no readers are active)."""
        for key in range(config.update_range_size):
            table.insert([key, 0, 0, 0, 0])
        rid = table.index.primary.get(0)
        for _ in range(config.merge_threshold):
            table.update(rid, {1: 1})
        db.run_merges()
        update_range, _ = table.locate(rid)
        assert update_range.merged
        assert table.epoch_manager.pending_pages == 0
