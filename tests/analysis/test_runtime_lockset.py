"""Runtime lockset witness: CheckedLock proxies record violations.

CheckedLock works regardless of REPRO_LOCK_CHECK (the env var only
selects what ``make_lock`` returns), so these tests exercise the
witness machinery directly in any test run.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import locks
from repro.analysis.locks import CheckedLock, guard_callback, make_lock


@pytest.fixture(autouse=True)
def _isolated_witness():
    """These tests record violations on purpose: clear global witness
    state on both sides so the session-wide assert_clean (active under
    REPRO_LOCK_CHECK=1) never sees them."""
    locks.reset()
    yield
    locks.reset()


def _kinds():
    return [violation.kind for violation in locks.violations()]


class TestRankOrder:
    def test_increasing_ranks_clean(self):
        outer = CheckedLock("merge.queue")   # rank 15
        inner = CheckedLock("wal.append")    # rank 50
        with outer:
            with inner:
                pass
        assert _kinds() == []

    def test_rank_inversion_recorded(self):
        outer = CheckedLock("wal.append")    # rank 50
        inner = CheckedLock("merge.queue")   # rank 15
        with outer:
            with inner:
                pass
        assert "rank" in _kinds()

    def test_inconsistent_pairwise_order_recorded(self):
        a = CheckedLock("merge.queue")
        b = CheckedLock("wal.append")
        with a:
            with b:
                pass
        with b:       # inverse of the first-witnessed a -> b order
            with a:
                pass
        assert "order" in _kinds()


class TestSelfNesting:
    def test_same_name_nesting_recorded(self):
        first = CheckedLock("epoch")
        second = CheckedLock("epoch")
        with first:
            with second:
                pass
        assert "self-nest" in _kinds()

    def test_sibling_nesting_allowed_for_page(self):
        # Page latches are declared allow_sibling_nesting: two distinct
        # instances may nest (e.g. copying between pages).
        first = CheckedLock("page")
        second = CheckedLock("page")
        with first:
            with second:
                pass
        assert _kinds() == []

    def test_failed_acquire_records_nothing(self):
        lock = CheckedLock("page")
        lock.acquire()
        try:
            # threading.Lock would deadlock here; probe non-blocking.
            assert not lock.acquire(blocking=False)
        finally:
            lock.release()
        assert _kinds() == []  # failed acquire records nothing


class TestCallbackGuard:
    def test_callback_under_hot_lock_recorded(self):
        lock = CheckedLock("merge.processing")
        with lock:
            guard_callback("merge_notifier (test)")
        assert _kinds() == ["callback"]
        detail = locks.violations()[0].detail
        assert "merge_notifier (test)" in detail
        assert "merge.processing" in detail

    def test_callback_after_release_clean(self):
        lock = CheckedLock("merge.processing")
        with lock:
            pass
        guard_callback("merge_notifier (test)")
        assert _kinds() == []


class TestHoldTracking:
    def test_held_hot_locks_reflects_stack(self):
        outer = CheckedLock("merge.queue")
        inner = CheckedLock("wal.append")
        with outer:
            with inner:
                assert locks.held_hot_locks() == \
                    ("merge.queue", "wal.append")
        assert locks.held_hot_locks() == ()

    def test_hold_stacks_are_per_thread(self):
        lock = CheckedLock("wal.append")
        seen: list[tuple[str, ...]] = []
        with lock:
            thread = threading.Thread(
                target=lambda: seen.append(locks.held_hot_locks()))
            thread.start()
            thread.join()
        assert seen == [()]

    def test_assert_clean_raises_with_detail(self):
        lock = CheckedLock("merge.processing")
        with lock:
            guard_callback("commit_sink")
        with pytest.raises(AssertionError, match="commit_sink"):
            locks.assert_clean()
        locks.reset()
        locks.assert_clean()  # cleared


class TestFactory:
    def test_undeclared_name_rejected(self):
        with pytest.raises(ValueError, match="undeclared"):
            make_lock("no.such.lock")

    def test_factory_matches_enabled_flag(self):
        lock = make_lock("wal.append")
        if locks.ENABLED:
            assert isinstance(lock, CheckedLock)
        else:
            assert isinstance(lock, type(threading.Lock()))
