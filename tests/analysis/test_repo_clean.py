"""The engine source itself must satisfy every enforced invariant.

This is the in-suite version of the CI ``analysis`` gate: the lint
rules and the static lock-order analysis run over ``src/repro`` on
every test run, so a violation fails locally before CI sees it.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.lint import lint_tree
from repro.analysis.lockorder import analyze_tree

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_source_tree_exists():
    assert (SRC / "analysis" / "lint.py").is_file()


def test_lint_clean():
    result = lint_tree(SRC)
    assert result.clean, "\n".join(
        str(violation) for violation in result.violations)


def test_every_suppression_has_a_reason():
    result = lint_tree(SRC)
    for suppressed in result.suppressed:
        assert suppressed.reason.strip(), suppressed


def test_lock_order_clean():
    report = analyze_tree(SRC)
    assert report.clean, report.render(verbose=True)


def test_lock_order_sees_real_edges():
    # Guards against the analysis silently resolving nothing: the
    # engine's merge/WAL paths must contribute observed orderings.
    report = analyze_tree(SRC)
    assert len(report.edges) >= 5, report.render(verbose=True)
