"""Static lock-order analysis over synthetic sources."""

from __future__ import annotations

from repro.analysis.lockorder import analyze_sources

#: Declarations only — lock names must come from the annotation table.
_DECL = '''
from repro.analysis.locks import make_lock

class Engine:
    def __init__(self):
        self._queue = make_lock("merge.queue")
        self._wal = make_lock("wal.append")
'''


class TestEdgeExtraction:
    def test_nested_with_yields_edge(self):
        report = analyze_sources({
            "core/decl.py": _DECL,
            "core/mod.py": '''
class Engine:
    def drain(self):
        with self._queue:
            with self._wal:
                pass
''',
        })
        assert ("merge.queue", "wal.append") in report.edges
        assert report.clean

    def test_acquire_try_region_yields_edge(self):
        report = analyze_sources({
            "core/decl.py": _DECL,
            "core/mod.py": '''
class Engine:
    def drain(self):
        self._queue.acquire()
        try:
            with self._wal:
                pass
        finally:
            self._queue.release()
''',
        })
        assert ("merge.queue", "wal.append") in report.edges

    def test_sequential_acquisition_yields_no_edge(self):
        report = analyze_sources({
            "core/decl.py": _DECL,
            "core/mod.py": '''
class Engine:
    def drain(self):
        with self._queue:
            pass
        with self._wal:
            pass
''',
        })
        assert not report.edges

    def test_interprocedural_edge_through_call(self):
        # drain() holds merge.queue and calls flush(), which takes
        # wal.append: the edge must surface without a lexical nest.
        report = analyze_sources({
            "core/decl.py": _DECL,
            "core/mod.py": '''
class Engine:
    def drain(self):
        with self._queue:
            self.flush()

    def flush(self):
        with self._wal:
            pass
''',
        })
        assert ("merge.queue", "wal.append") in report.edges


class TestHierarchyValidation:
    def test_rank_inversion_reported(self):
        # wal.append (rank 50) held while taking merge.queue (rank 15).
        report = analyze_sources({
            "core/decl.py": _DECL,
            "core/mod.py": '''
class Engine:
    def backwards(self):
        with self._wal:
            with self._queue:
                pass
''',
        })
        assert not report.clean
        assert report.rank_violations

    def test_cycle_detected(self):
        report = analyze_sources({
            "core/decl.py": _DECL,
            "core/mod.py": '''
class Engine:
    def forwards(self):
        with self._queue:
            with self._wal:
                pass

    def backwards(self):
        with self._wal:
            with self._queue:
                pass
''',
        })
        assert report.cycles
        cycle = report.cycles[0]
        assert {"merge.queue", "wal.append"} <= set(cycle)

    def test_clean_hierarchy_renders_summary(self):
        report = analyze_sources({
            "core/decl.py": _DECL,
            "core/mod.py": '''
class Engine:
    def drain(self):
        with self._queue:
            with self._wal:
                pass
''',
        })
        assert report.clean
        assert "1 edge(s), 0 cycle(s), 0 rank violation(s)" \
            in report.render()
