"""Leader/follower group commit: shared fsyncs, durable followers."""

import os
import shutil
import threading

from repro.core.config import EngineConfig
from repro.core.db import Database
from repro.txn.transaction import Transaction
from repro.wal.log import LogManager
from repro.wal.records import TxnCommitRecord
from repro.wal.recovery import recover_database


def _wal_config(data_dir) -> EngineConfig:
    return EngineConfig(
        records_per_page=8, records_per_tail_page=8, update_range_size=16,
        insert_range_size=16, merge_threshold=8, background_merge=False,
        wal_enabled=True, data_dir=str(data_dir))


def _plain_config() -> EngineConfig:
    return EngineConfig(
        records_per_page=8, records_per_tail_page=8, update_range_size=16,
        insert_range_size=16, merge_threshold=8, background_merge=False)


class TestGroupCommitSharing:
    def test_concurrent_committers_share_fsyncs(self, tmp_path):
        """N threads committing concurrently fsync (far) fewer than N
        times per commit: followers piggyback on the leader's sync."""
        db = Database(_wal_config(tmp_path))
        table = db.create_table("t", 3)
        for key in range(16):
            table.insert([key, 0, 0])
        log = db._wal
        flushes_before = log.stat_flushes
        threads = 8
        barrier = threading.Barrier(threads)
        committed = [0] * threads

        def worker(thread_id: int) -> None:
            barrier.wait()
            for i in range(25):
                txn = Transaction(db.txn_manager)
                try:
                    txn.update(table, thread_id * 2, {1: i})
                except Exception:
                    continue
                if txn.commit():
                    committed[thread_id] += 1

        workers = [threading.Thread(target=worker, args=(i,))
                   for i in range(threads)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        total = sum(committed)
        assert total > 0
        flushes = log.stat_flushes - flushes_before
        # The acceptance bar: strictly fewer fsyncs than commits. On
        # any real interleaving the sharing is much better, but even
        # one shared sync proves the leader/follower path works.
        assert flushes < total, (flushes, total)
        db.close()

    def test_serial_commits_still_each_durable(self, tmp_path):
        """Without concurrency every commit still syncs before return."""
        db = Database(_wal_config(tmp_path))
        table = db.create_table("t", 3)
        table.insert([1, 0, 0])
        log = db._wal
        for i in range(5):
            txn = Transaction(db.txn_manager)
            txn.update(table, 1, {1: i})
            assert txn.commit()
            # The commit record must be covered by the synced LSN the
            # moment commit() returns.
            assert log._synced_lsn >= log.last_lsn
        db.close()


class TestGroupCommitDurability:
    def test_crash_after_leader_fsync_recovers_followers(self, tmp_path):
        """A leader's single fsync covers every batched follower.

        Concurrent committers drain through one leader; copying the log
        file right after the commits return (simulating a crash before
        any further activity) and recovering from the copy must surface
        every transaction whose commit() returned — the followers'
        durability rides on the leader's fsync, so none may be lost.
        """
        db = Database(_wal_config(tmp_path))
        table = db.create_table("t", 3)
        for key in range(16):
            table.insert([key, 0, 0])
        threads = 6
        barrier = threading.Barrier(threads)
        done: dict[int, int] = {}
        lock = threading.Lock()

        def worker(thread_id: int) -> None:
            barrier.wait()
            txn = Transaction(db.txn_manager)
            txn.update(table, thread_id, {2: 1000 + thread_id})
            if txn.commit():
                with lock:
                    done[thread_id] = 1000 + thread_id

        workers = [threading.Thread(target=worker, args=(i,))
                   for i in range(threads)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert done  # every key is distinct, so all should commit

        # Simulate the crash: copy the log as it is on disk right now,
        # without closing (close would flush leftovers gracefully).
        crash_copy = tmp_path / "crashed-wal.log"
        shutil.copy(db._wal.path, crash_copy)

        recovered = recover_database(str(crash_copy),
                                     config=_plain_config())
        rtable = recovered.get_table("t")
        for thread_id, value in done.items():
            values = rtable.read_latest(
                rtable.index.primary.get(thread_id), (2,))
            assert values == {2: value}, (thread_id, values)
        recovered.close()
        db.close()

    def test_commit_records_in_lsn_order_on_disk(self, tmp_path):
        """Drains keep frames in LSN order across leader handoffs."""
        db = Database(_wal_config(tmp_path))
        table = db.create_table("t", 3)
        for key in range(16):
            table.insert([key, 0, 0])
        threads = 4
        barrier = threading.Barrier(threads)

        def worker(thread_id: int) -> None:
            barrier.wait()
            for i in range(10):
                txn = Transaction(db.txn_manager)
                try:
                    txn.update(table, thread_id, {1: i})
                except Exception:
                    continue
                txn.commit()

        workers = [threading.Thread(target=worker, args=(i,))
                   for i in range(threads)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        db._wal.flush()
        lsns = [record.lsn
                for record in LogManager.read_records(db._wal.path)]
        assert lsns == sorted(lsns)
        assert len(lsns) == len(set(lsns))
        db.close()


class TestPiggybackStat:
    def test_piggyback_counter_moves_under_concurrency(self, tmp_path):
        # A real fsync per drain: the sync latency is what makes
        # followers pile up behind a leader (sync_on_commit=False
        # drains so fast that every commit can end up leading its own).
        log = LogManager(str(tmp_path / "log.bin"), sync_on_commit=True)
        barrier = threading.Barrier(4)

        def worker() -> None:
            barrier.wait()
            for i in range(50):
                log.append(TxnCommitRecord(txn_id=i, commit_time=i))

        workers = [threading.Thread(target=worker) for _ in range(4)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        # Fewer drains than commits, and at least one commit's
        # durability demonstrably rode another committer's drain.
        assert log.stat_flushes < 200
        assert log.stat_piggybacked_syncs >= 1
        # A healthy run trips none of the failure counters: no retried
        # syncs, nothing salvaged, nothing truncated, no poisoning.
        assert log.stat_sync_retries == 0
        assert log.stat_salvaged_bytes == 0
        assert log.stat_segments_truncated == 0
        assert not log.poisoned
        log.close()
