"""Log manager: framing, LSNs, group commit, torn-tail tolerance."""

import os

import pytest

from repro.wal.log import LogManager
from repro.wal.records import (CreateTableRecord, RecordWriteRecord,
                               TxnCommitRecord)


@pytest.fixture
def log_path(tmp_path):
    return str(tmp_path / "wal.log")


class TestAppendRead:
    def test_lsns_assigned_in_order(self, log_path):
        log = LogManager(log_path)
        first = log.append(CreateTableRecord(name="a", num_columns=1,
                                             key_index=0, column_names=()))
        second = log.append(CreateTableRecord(name="b", num_columns=1,
                                              key_index=0, column_names=()))
        assert (first, second) == (1, 2)
        assert log.last_lsn == 2
        log.close()

    def test_round_trip(self, log_path):
        log = LogManager(log_path)
        log.append(RecordWriteRecord(table="t", segment=("tail", 3),
                                     offset=7, cells={2: 99, 5: None}))
        log.close()
        records = list(LogManager.read_records(log_path))
        assert len(records) == 1
        record = records[0]
        assert isinstance(record, RecordWriteRecord)
        assert record.segment == ("tail", 3)
        assert record.cells == {2: 99, 5: None}
        assert record.lsn == 1

    def test_read_missing_file(self, tmp_path):
        assert list(LogManager.read_records(str(tmp_path / "none"))) == []


class TestGroupCommit:
    def test_commit_record_forces_flush(self, log_path):
        log = LogManager(log_path)
        log.append(CreateTableRecord(name="a", num_columns=1, key_index=0,
                                     column_names=()))
        # Buffered, nothing durable yet.
        assert list(LogManager.read_records(log_path)) == []
        log.append(TxnCommitRecord(txn_id=1, commit_time=5))
        assert len(list(LogManager.read_records(log_path))) == 2
        log.close()

    def test_threshold_flush(self, log_path):
        log = LogManager(log_path, flush_threshold=64)
        for i in range(10):
            log.append(RecordWriteRecord(table="t", segment=("tail", 0),
                                         offset=i, cells={0: i}))
        assert log.stat_flushes >= 1
        log.close()

    def test_explicit_flush(self, log_path):
        log = LogManager(log_path)
        log.append(CreateTableRecord(name="a", num_columns=1, key_index=0,
                                     column_names=()))
        log.flush()
        assert len(list(LogManager.read_records(log_path))) == 1
        log.close()


class TestTornTail:
    def test_truncated_frame_discarded(self, log_path):
        log = LogManager(log_path)
        log.append(TxnCommitRecord(txn_id=1, commit_time=5))
        log.append(TxnCommitRecord(txn_id=2, commit_time=6))
        log.close()
        size = os.path.getsize(log_path)
        with open(log_path, "r+b") as handle:
            handle.truncate(size - 3)  # tear the last frame
        records = list(LogManager.read_records(log_path))
        assert len(records) == 1
        assert records[0].txn_id == 1

    def test_torn_header_discarded(self, log_path):
        log = LogManager(log_path)
        log.append(TxnCommitRecord(txn_id=1, commit_time=5))
        log.close()
        with open(log_path, "ab") as handle:
            handle.write(b"\x05\x00")  # 2 of 4 header bytes
        records = list(LogManager.read_records(log_path))
        assert len(records) == 1

    def test_append_after_reopen(self, log_path):
        log = LogManager(log_path)
        log.append(TxnCommitRecord(txn_id=1, commit_time=5))
        log.close()
        log2 = LogManager(log_path)
        log2.append(TxnCommitRecord(txn_id=2, commit_time=6))
        log2.close()
        assert len(list(LogManager.read_records(log_path))) == 2
