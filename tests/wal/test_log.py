"""Log manager: framing, LSNs, group commit, torn-tail tolerance."""

import os

import pytest

from repro.wal.log import LogManager
from repro.wal.records import (CreateTableRecord, RecordWriteRecord,
                               TxnCommitRecord)


@pytest.fixture
def log_path(tmp_path):
    return str(tmp_path / "wal.log")


class TestAppendRead:
    def test_lsns_assigned_in_order(self, log_path):
        log = LogManager(log_path)
        first = log.append(CreateTableRecord(name="a", num_columns=1,
                                             key_index=0, column_names=()))
        second = log.append(CreateTableRecord(name="b", num_columns=1,
                                              key_index=0, column_names=()))
        assert (first, second) == (1, 2)
        assert log.last_lsn == 2
        log.close()

    def test_round_trip(self, log_path):
        log = LogManager(log_path)
        log.append(RecordWriteRecord(table="t", segment=("tail", 3),
                                     offset=7, cells={2: 99, 5: None}))
        log.close()
        records = list(LogManager.read_records(log_path))
        assert len(records) == 1
        record = records[0]
        assert isinstance(record, RecordWriteRecord)
        assert record.segment == ("tail", 3)
        assert record.cells == {2: 99, 5: None}
        assert record.lsn == 1

    def test_read_missing_file(self, tmp_path):
        assert list(LogManager.read_records(str(tmp_path / "none"))) == []


class TestGroupCommit:
    def test_commit_record_forces_flush(self, log_path):
        log = LogManager(log_path)
        log.append(CreateTableRecord(name="a", num_columns=1, key_index=0,
                                     column_names=()))
        # Buffered, nothing durable yet.
        assert list(LogManager.read_records(log_path)) == []
        log.append(TxnCommitRecord(txn_id=1, commit_time=5))
        assert len(list(LogManager.read_records(log_path))) == 2
        log.close()

    def test_threshold_flush(self, log_path):
        log = LogManager(log_path, flush_threshold=64)
        for i in range(10):
            log.append(RecordWriteRecord(table="t", segment=("tail", 0),
                                         offset=i, cells={0: i}))
        assert log.stat_flushes >= 1
        log.close()

    def test_explicit_flush(self, log_path):
        log = LogManager(log_path)
        log.append(CreateTableRecord(name="a", num_columns=1, key_index=0,
                                     column_names=()))
        log.flush()
        assert len(list(LogManager.read_records(log_path))) == 1
        log.close()


class TestTornTail:
    def test_truncated_frame_discarded(self, log_path):
        log = LogManager(log_path)
        log.append(TxnCommitRecord(txn_id=1, commit_time=5))
        log.append(TxnCommitRecord(txn_id=2, commit_time=6))
        log.close()
        size = os.path.getsize(log_path)
        with open(log_path, "r+b") as handle:
            handle.truncate(size - 3)  # tear the last frame
        records = list(LogManager.read_records(log_path))
        assert len(records) == 1
        assert records[0].txn_id == 1

    def test_torn_header_discarded(self, log_path):
        log = LogManager(log_path)
        log.append(TxnCommitRecord(txn_id=1, commit_time=5))
        log.close()
        with open(log_path, "ab") as handle:
            handle.write(b"\x05\x00")  # 2 of 4 header bytes
        records = list(LogManager.read_records(log_path))
        assert len(records) == 1

    def test_append_after_reopen(self, log_path):
        log = LogManager(log_path)
        log.append(TxnCommitRecord(txn_id=1, commit_time=5))
        log.close()
        log2 = LogManager(log_path)
        log2.append(TxnCommitRecord(txn_id=2, commit_time=6))
        log2.close()
        assert len(list(LogManager.read_records(log_path))) == 2


class TestSegmentRotation:
    def test_rotation_spreads_frames_over_segments(self, log_path):
        log = LogManager(log_path, segment_bytes=256)
        for i in range(1, 51):
            log.append(TxnCommitRecord(txn_id=i, commit_time=i))
        assert log.path != log_path  # the active segment rotated away
        segments = LogManager.segment_paths(log_path)
        assert len(segments) > 2
        assert segments[0] == log_path
        # The chain reads back in one ordered stream.
        records = list(LogManager.read_records(log_path))
        assert [r.txn_id for r in records] == list(range(1, 51))
        assert [r.lsn for r in records] == sorted(r.lsn for r in records)
        log.close()

    def test_reopen_resumes_at_chain_tail(self, log_path):
        log = LogManager(log_path, segment_bytes=256)
        for i in range(1, 31):
            log.append(TxnCommitRecord(txn_id=i, commit_time=i))
        log.close()
        log2 = LogManager(log_path, segment_bytes=256)
        lsn = log2.append(TxnCommitRecord(txn_id=31, commit_time=31))
        log2.flush()
        log2.close()
        records = list(LogManager.read_records(log_path))
        assert records[-1].txn_id == 31
        assert records[-1].lsn == lsn == 31

    def test_truncate_segments_below(self, log_path):
        log = LogManager(log_path, segment_bytes=256)
        for i in range(1, 51):
            log.append(TxnCommitRecord(txn_id=i, commit_time=i))
        log.flush()
        before = len(LogManager.segment_paths(log_path))
        removed = log.truncate_segments_below(log.synced_lsn)
        assert removed > 0
        assert log.stat_segments_truncated == removed
        after = LogManager.segment_paths(log_path)
        assert len(after) < before
        # The base path survives as an empty stub; the active segment
        # is never unlinked; surviving records are a suffix.
        assert log.path in after
        records = list(LogManager.read_records(log_path))
        assert [r.txn_id for r in records] == \
            list(range(records[0].txn_id, 51))
        log.close()

    def test_counters_quiescent_on_healthy_log(self, log_path):
        log = LogManager(log_path)
        for i in range(1, 6):
            log.append(TxnCommitRecord(txn_id=i, commit_time=i))
        log.flush()
        assert log.stat_sync_retries == 0
        assert log.stat_salvaged_bytes == 0
        assert log.stat_segments_truncated == 0
        assert log.stat_last_checkpoint_lsn == 0
        assert not log.poisoned
        log.close()
