"""Crash recovery: redo replay, both indirection options (Section 5.1.3)."""

import os

import pytest

from repro import Database, EngineConfig
from repro.wal.recovery import recover_database


def _wal_config(tmp_path) -> EngineConfig:
    return EngineConfig(
        records_per_page=8, records_per_tail_page=8,
        update_range_size=16, merge_threshold=8, insert_range_size=16,
        wal_enabled=True, data_dir=str(tmp_path))


def _plain_config() -> EngineConfig:
    return EngineConfig(
        records_per_page=8, records_per_tail_page=8,
        update_range_size=16, merge_threshold=8, insert_range_size=16)


@pytest.fixture
def wal_db(tmp_path):
    db = Database(_wal_config(tmp_path))
    yield db, os.path.join(str(tmp_path), "wal.log")
    db.close()


def _recover(log_path, **kwargs):
    return recover_database(log_path, config=_plain_config(), **kwargs)


class TestBasicRecovery:
    def test_inserts_survive(self, wal_db):
        db, log_path = wal_db
        table = db.create_table("t", num_columns=3)
        for key in range(20):
            table.insert([key, key * 10, 7])
        db._wal.flush()
        recovered = _recover(log_path)
        query = recovered.query("t")
        assert query.count() == 20
        assert query.select(3, 0, None)[0].columns == (3, 30, 7)

    def test_snapshot_scans_correct_after_recovery(self, wal_db):
        """The version horizon is rebuilt from the replayed tails."""
        db, log_path = wal_db
        table = db.create_table("t", num_columns=3)
        for key in range(20):
            table.insert([key, key * 10, 7])
        as_of = table.clock.now()
        for key in range(0, 20, 2):
            table.update(table.index.primary.get(key), {1: 5000 + key})
        db._wal.flush()
        recovered = _recover(log_path)
        recovered_table = recovered.get_table("t")
        recovered.run_merges()
        update_range = recovered_table.sorted_ranges()[0]
        # Replay resolved the markers, so the rebuilt horizon is exact:
        # every unmerged update postdates the snapshot.
        assert update_range.unmerged_min_time is not None
        assert update_range.unmerged_min_time > as_of
        assert recovered_table.scan_sum(1, as_of=as_of) == \
            sum(key * 10 for key in range(20))
        assert recovered_table.scan_sum(1) == \
            sum(key * 10 for key in range(1, 20, 2)) \
            + sum(5000 + key for key in range(0, 20, 2))

    def test_updates_and_deletes_survive(self, wal_db):
        db, log_path = wal_db
        table = db.create_table("t", num_columns=3)
        for key in range(20):
            table.insert([key, key * 10, 7])
        table.update(table.index.primary.get(3), {1: 999})
        table.delete(table.index.primary.get(7))
        db._wal.flush()
        recovered = _recover(log_path)
        query = recovered.query("t")
        assert query.select(3, 0, None)[0][1] == 999
        assert query.select(7, 0, None) == []
        assert query.count() == 19

    def test_version_history_survives(self, wal_db):
        db, log_path = wal_db
        table = db.create_table("t", num_columns=3)
        table.insert([1, 10, 0])
        table.update(table.index.primary.get(1), {1: 20})
        table.update(table.index.primary.get(1), {1: 30})
        db._wal.flush()
        recovered = _recover(log_path)
        query = recovered.query("t")
        assert query.select_version(1, 0, None, -1)[0][1] == 20
        assert query.select_version(1, 0, None, -2)[0][1] == 10

    def test_multiple_tables(self, wal_db):
        db, log_path = wal_db
        a = db.create_table("a", num_columns=2)
        b = db.create_table("b", num_columns=2)
        a.insert([1, 10])
        b.insert([1, 20])
        db._wal.flush()
        recovered = _recover(log_path)
        assert recovered.query("a").select(1, 0, None)[0][1] == 10
        assert recovered.query("b").select(1, 0, None)[0][1] == 20


class TestTransactionalRecovery:
    def test_committed_txn_replayed(self, wal_db):
        db, log_path = wal_db
        table = db.create_table("t", num_columns=3)
        for key in range(5):
            table.insert([key, 0, 0])
        txn = db.begin_transaction()
        txn.update(table, 2, {1: 77})
        txn.insert(table, [50, 1, 2])
        assert txn.commit()
        db._wal.flush()
        recovered = _recover(log_path)
        query = recovered.query("t")
        assert query.select(2, 0, None)[0][1] == 77
        assert query.select(50, 0, None)[0].columns == (50, 1, 2)

    def test_uncommitted_txn_tombstoned(self, wal_db):
        db, log_path = wal_db
        table = db.create_table("t", num_columns=3)
        for key in range(5):
            table.insert([key, 0, 0])
        txn = db.begin_transaction()
        txn.update(table, 2, {1: 999})
        txn.insert(table, [50, 1, 2])
        db._wal.flush()  # crash before commit
        recovered = _recover(log_path)
        query = recovered.query("t")
        assert query.select(2, 0, None)[0][1] == 0
        assert query.select(50, 0, None) == []

    def test_aborted_txn_not_replayed(self, wal_db):
        db, log_path = wal_db
        table = db.create_table("t", num_columns=3)
        table.insert([1, 10, 0])
        txn = db.begin_transaction()
        txn.update(table, 1, {1: 999})
        txn.abort()
        db._wal.flush()
        recovered = _recover(log_path)
        assert recovered.query("t").select(1, 0, None)[0][1] == 10

    def test_committed_markers_stamped(self, wal_db):
        # Replay resolves txn markers to commit times so the recovered
        # database needs no pre-crash transaction manager entries.
        db, log_path = wal_db
        table = db.create_table("t", num_columns=2)
        txn = db.begin_transaction()
        txn.insert(table, [1, 5])
        txn.commit()
        db._wal.flush()
        recovered = _recover(log_path)
        rid = recovered.get_table("t").index.primary.get(1)
        values = recovered.get_table("t").read_latest(rid)
        assert values == {0: 1, 1: 5}


class TestIndirectionRebuild:
    def test_option2_equivalent(self, wal_db):
        db, log_path = wal_db
        table = db.create_table("t", num_columns=3)
        for key in range(10):
            table.insert([key, key, 0])
        for key in range(0, 10, 2):
            table.update(table.index.primary.get(key), {1: key + 100})
        db._wal.flush()
        via_log = _recover(log_path)
        rebuilt = _recover(log_path, rebuild_indirection=True)
        for key in range(10):
            a = via_log.query("t").select(key, 0, None)[0].columns
            b = rebuilt.query("t").select(key, 0, None)[0].columns
            assert a == b

    def test_clock_advanced_past_log(self, wal_db):
        db, log_path = wal_db
        table = db.create_table("t", num_columns=2)
        table.insert([1, 5])
        pre_crash_now = db.clock.now()
        db._wal.flush()
        recovered = _recover(log_path)
        assert recovered.clock.now() >= pre_crash_now - 1

    def test_recovered_database_accepts_new_work(self, wal_db):
        db, log_path = wal_db
        table = db.create_table("t", num_columns=2)
        for key in range(20):
            table.insert([key, 1])
        table.update(table.index.primary.get(0), {1: 2})
        db._wal.flush()
        recovered = _recover(log_path)
        query = recovered.query("t")
        query.insert(100, 5)
        query.update(0, None, 7)
        query.delete(1)
        assert query.select(100, 0, None)[0][1] == 5
        assert query.select(0, 0, None)[0][1] == 7
        assert query.count() == 20
        recovered.run_merges()
        assert query.select(0, 0, None)[0][1] == 7


class TestMergeInteraction:
    def test_recovery_then_merge(self, wal_db):
        # Merges are not logged (idempotent); they re-run after replay.
        db, log_path = wal_db
        table = db.create_table("t", num_columns=2)
        for key in range(16):
            table.insert([key, 1])
        db.run_merges()
        table.update(table.index.primary.get(0), {1: 42})
        db._wal.flush()
        recovered = _recover(log_path)
        recovered.run_merges()
        query = recovered.query("t")
        assert query.select(0, 0, None)[0][1] == 42
        assert query.scan_sum(1) == 15 + 42
