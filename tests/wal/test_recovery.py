"""Crash recovery: redo replay, both indirection options (Section 5.1.3)."""

import os
import pickle
import struct

import pytest

from repro import Database, EngineConfig
from repro.txn.transaction import Transaction
from repro.wal.log import _SEGMENT_MAGIC, _V2_HEADER, LogManager
from repro.wal.recovery import recover_database


def _wal_config(tmp_path) -> EngineConfig:
    return EngineConfig(
        records_per_page=8, records_per_tail_page=8,
        update_range_size=16, merge_threshold=8, insert_range_size=16,
        wal_enabled=True, data_dir=str(tmp_path))


def _plain_config() -> EngineConfig:
    return EngineConfig(
        records_per_page=8, records_per_tail_page=8,
        update_range_size=16, merge_threshold=8, insert_range_size=16)


@pytest.fixture
def wal_db(tmp_path):
    db = Database(_wal_config(tmp_path))
    yield db, os.path.join(str(tmp_path), "wal.log")
    db.close()


def _recover(log_path, **kwargs):
    return recover_database(log_path, config=_plain_config(), **kwargs)


class TestBasicRecovery:
    def test_inserts_survive(self, wal_db):
        db, log_path = wal_db
        table = db.create_table("t", num_columns=3)
        for key in range(20):
            table.insert([key, key * 10, 7])
        db._wal.flush()
        recovered = _recover(log_path)
        query = recovered.query("t")
        assert query.count() == 20
        assert query.select(3, 0, None)[0].columns == (3, 30, 7)

    def test_snapshot_scans_correct_after_recovery(self, wal_db):
        """The version horizon is rebuilt from the replayed tails."""
        db, log_path = wal_db
        table = db.create_table("t", num_columns=3)
        for key in range(20):
            table.insert([key, key * 10, 7])
        as_of = table.clock.now()
        for key in range(0, 20, 2):
            table.update(table.index.primary.get(key), {1: 5000 + key})
        db._wal.flush()
        recovered = _recover(log_path)
        recovered_table = recovered.get_table("t")
        recovered.run_merges()
        update_range = recovered_table.sorted_ranges()[0]
        # Replay resolved the markers, so the rebuilt horizon is exact:
        # every unmerged update postdates the snapshot.
        assert update_range.unmerged_min_time is not None
        assert update_range.unmerged_min_time > as_of
        assert recovered_table.scan_sum(1, as_of=as_of) == \
            sum(key * 10 for key in range(20))
        assert recovered_table.scan_sum(1) == \
            sum(key * 10 for key in range(1, 20, 2)) \
            + sum(5000 + key for key in range(0, 20, 2))

    def test_updates_and_deletes_survive(self, wal_db):
        db, log_path = wal_db
        table = db.create_table("t", num_columns=3)
        for key in range(20):
            table.insert([key, key * 10, 7])
        table.update(table.index.primary.get(3), {1: 999})
        table.delete(table.index.primary.get(7))
        db._wal.flush()
        recovered = _recover(log_path)
        query = recovered.query("t")
        assert query.select(3, 0, None)[0][1] == 999
        assert query.select(7, 0, None) == []
        assert query.count() == 19

    def test_version_history_survives(self, wal_db):
        db, log_path = wal_db
        table = db.create_table("t", num_columns=3)
        table.insert([1, 10, 0])
        table.update(table.index.primary.get(1), {1: 20})
        table.update(table.index.primary.get(1), {1: 30})
        db._wal.flush()
        recovered = _recover(log_path)
        query = recovered.query("t")
        assert query.select_version(1, 0, None, -1)[0][1] == 20
        assert query.select_version(1, 0, None, -2)[0][1] == 10

    def test_multiple_tables(self, wal_db):
        db, log_path = wal_db
        a = db.create_table("a", num_columns=2)
        b = db.create_table("b", num_columns=2)
        a.insert([1, 10])
        b.insert([1, 20])
        db._wal.flush()
        recovered = _recover(log_path)
        assert recovered.query("a").select(1, 0, None)[0][1] == 10
        assert recovered.query("b").select(1, 0, None)[0][1] == 20


class TestTransactionalRecovery:
    def test_committed_txn_replayed(self, wal_db):
        db, log_path = wal_db
        table = db.create_table("t", num_columns=3)
        for key in range(5):
            table.insert([key, 0, 0])
        txn = db.begin_transaction()
        txn.update(table, 2, {1: 77})
        txn.insert(table, [50, 1, 2])
        assert txn.commit()
        db._wal.flush()
        recovered = _recover(log_path)
        query = recovered.query("t")
        assert query.select(2, 0, None)[0][1] == 77
        assert query.select(50, 0, None)[0].columns == (50, 1, 2)

    def test_uncommitted_txn_tombstoned(self, wal_db):
        db, log_path = wal_db
        table = db.create_table("t", num_columns=3)
        for key in range(5):
            table.insert([key, 0, 0])
        txn = db.begin_transaction()
        txn.update(table, 2, {1: 999})
        txn.insert(table, [50, 1, 2])
        db._wal.flush()  # crash before commit
        recovered = _recover(log_path)
        query = recovered.query("t")
        assert query.select(2, 0, None)[0][1] == 0
        assert query.select(50, 0, None) == []

    def test_aborted_txn_not_replayed(self, wal_db):
        db, log_path = wal_db
        table = db.create_table("t", num_columns=3)
        table.insert([1, 10, 0])
        txn = db.begin_transaction()
        txn.update(table, 1, {1: 999})
        txn.abort()
        db._wal.flush()
        recovered = _recover(log_path)
        assert recovered.query("t").select(1, 0, None)[0][1] == 10

    def test_committed_markers_stamped(self, wal_db):
        # Replay resolves txn markers to commit times so the recovered
        # database needs no pre-crash transaction manager entries.
        db, log_path = wal_db
        table = db.create_table("t", num_columns=2)
        txn = db.begin_transaction()
        txn.insert(table, [1, 5])
        txn.commit()
        db._wal.flush()
        recovered = _recover(log_path)
        rid = recovered.get_table("t").index.primary.get(1)
        values = recovered.get_table("t").read_latest(rid)
        assert values == {0: 1, 1: 5}


class TestIndirectionRebuild:
    def test_option2_equivalent(self, wal_db):
        db, log_path = wal_db
        table = db.create_table("t", num_columns=3)
        for key in range(10):
            table.insert([key, key, 0])
        for key in range(0, 10, 2):
            table.update(table.index.primary.get(key), {1: key + 100})
        db._wal.flush()
        via_log = _recover(log_path)
        rebuilt = _recover(log_path, rebuild_indirection=True)
        for key in range(10):
            a = via_log.query("t").select(key, 0, None)[0].columns
            b = rebuilt.query("t").select(key, 0, None)[0].columns
            assert a == b

    def test_clock_advanced_past_log(self, wal_db):
        db, log_path = wal_db
        table = db.create_table("t", num_columns=2)
        table.insert([1, 5])
        pre_crash_now = db.clock.now()
        db._wal.flush()
        recovered = _recover(log_path)
        assert recovered.clock.now() >= pre_crash_now - 1

    def test_recovered_database_accepts_new_work(self, wal_db):
        db, log_path = wal_db
        table = db.create_table("t", num_columns=2)
        for key in range(20):
            table.insert([key, 1])
        table.update(table.index.primary.get(0), {1: 2})
        db._wal.flush()
        recovered = _recover(log_path)
        query = recovered.query("t")
        query.insert(100, 5)
        query.update(0, None, 7)
        query.delete(1)
        assert query.select(100, 0, None)[0][1] == 5
        assert query.select(0, 0, None)[0][1] == 7
        assert query.count() == 20
        recovered.run_merges()
        assert query.select(0, 0, None)[0][1] == 7


class TestMergeInteraction:
    def test_recovery_then_merge(self, wal_db):
        # Merges are not logged (idempotent); they re-run after replay.
        db, log_path = wal_db
        table = db.create_table("t", num_columns=2)
        for key in range(16):
            table.insert([key, 1])
        db.run_merges()
        table.update(table.index.primary.get(0), {1: 42})
        db._wal.flush()
        recovered = _recover(log_path)
        recovered.run_merges()
        query = recovered.query("t")
        assert query.select(0, 0, None)[0][1] == 42
        assert query.scan_sum(1) == 15 + 42


def _to_v1(v2_path: str, v1_path: str) -> None:
    """Rewrite a v2 log chain as a legacy v1 file (length + pickle)."""
    records = list(LogManager.read_records(v2_path))
    with open(v1_path, "wb") as handle:
        for record in records:
            payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
            handle.write(struct.pack("<I", len(payload)) + payload)


class TestWalV1Compat:
    def test_v1_log_recovers(self, wal_db, tmp_path):
        """Logs written before the v2 framing still replay cleanly."""
        db, log_path = wal_db
        table = db.create_table("t", num_columns=3)
        for key in range(12):
            table.insert([key, key * 10, 7])
        table.update(table.index.primary.get(3), {1: 999})
        db._wal.flush()
        v1_path = str(tmp_path / "legacy.log")
        _to_v1(log_path, v1_path)
        recovered = _recover(v1_path)
        query = recovered.query("t")
        assert query.count() == 12
        assert query.select(3, 0, None)[0][1] == 999
        assert recovered.recovery_report.clean

    def test_v1_log_reopen_rotates_to_v2_sibling(self, wal_db, tmp_path):
        """Appending to a legacy log starts a v2 sibling segment; the
        chain reads old and new records in order."""
        db, log_path = wal_db
        table = db.create_table("t", num_columns=2)
        for key in range(6):
            table.insert([key, 1])
        db._wal.flush()
        v1_path = str(tmp_path / "legacy.log")
        _to_v1(log_path, v1_path)
        log = LogManager(v1_path)
        assert log.path == v1_path + ".000001"
        db2 = _recover(v1_path)
        # Drive appends through the reopened manager directly.
        from repro.wal.records import TxnCommitRecord
        log.append(TxnCommitRecord(txn_id=77, commit_time=5))
        log.flush()
        log.close()
        records = list(LogManager.read_records(v1_path))
        assert records[-1].txn_id == 77
        lsns = [r.lsn for r in records]
        assert lsns == sorted(lsns)
        db2.close()


class TestSalvageReport:
    def test_torn_tail_salvaged(self, wal_db):
        """A crash mid-append leaves a torn final frame: recovery keeps
        the valid prefix and reports the salvaged byte count."""
        db, log_path = wal_db
        table = db.create_table("t", num_columns=2)
        for key in range(10):
            table.insert([key, key])
        db._wal.flush()
        active = db._wal.path
        size = os.path.getsize(active)
        with open(active, "r+b") as handle:
            handle.truncate(size - 5)
        recovered = _recover(log_path)
        report = recovered.recovery_report
        assert report.salvaged_bytes > 0
        assert not report.quarantined
        assert not report.clean
        # All but the torn-off final frame survived.
        assert recovered.query("t").count() >= 9

    def test_flipped_byte_mid_log_quarantined(self, wal_db):
        """A corrupt non-tail frame is skipped and reported, not a
        crash loop and not a silent truncation of everything after it."""
        db, log_path = wal_db
        table = db.create_table("t", num_columns=2)
        for key in range(10):
            table.insert([key, key])
        db._wal.flush()
        active = db._wal.path
        with open(active, "rb") as handle:
            data = handle.read()
        # Walk the frames; flip a payload byte in a mid-log frame.
        pos = len(_SEGMENT_MAGIC)
        frames = []
        while pos < len(data):
            length, _, _ = _V2_HEADER.unpack_from(data, pos)
            end = pos + _V2_HEADER.size + length
            frames.append((pos, end))
            pos = end
        assert len(frames) > 4
        start, end = frames[len(frames) // 2]
        victim = start + _V2_HEADER.size + 2
        corrupted = bytearray(data)
        corrupted[victim] ^= 0xFF
        with open(active, "wb") as handle:
            handle.write(bytes(corrupted))
        recovered = _recover(log_path)
        report = recovered.recovery_report
        assert len(report.quarantined) == 1
        frame = report.quarantined[0]
        assert "checksum" in frame.reason
        assert frame.offset == start
        # Records before AND after the bad frame were recovered.
        assert recovered.query("t").count() == 9
        assert report.records_total == report.records_replayed


class TestCheckpointRecovery:
    def test_recovery_replays_only_suffix(self, wal_db):
        """With rotation disabled the whole history stays in the active
        segment, so the skip counters expose the checkpoint bound."""
        db, log_path = wal_db
        table = db.create_table("t", num_columns=3)
        for key in range(20):
            table.insert([key, key * 10, 0])
        db.checkpoint()
        for key in range(20):
            table.update(table.index.primary.get(key), {1: key * 100})
        db.checkpoint()
        for key in range(5):
            table.update(table.index.primary.get(key), {2: 7})
        db._wal.flush()
        recovered = _recover(log_path)
        report = recovered.recovery_report
        assert report.checkpoint_directory is not None
        assert report.checkpoint_lsn > 0
        assert report.records_replayed < report.records_total
        assert report.records_skipped > 0
        query = recovered.query("t")
        assert query.count() == 20
        assert query.select(3, 0, None)[0].columns == (3, 300, 7)
        assert query.select(9, 0, None)[0].columns == (9, 900, 0)

    def test_checkpoint_and_full_replay_equivalent(self, wal_db):
        """The checkpoint image + suffix must rebuild exactly what a
        full replay rebuilds: values, horizons, and dirty sets."""
        db, log_path = wal_db
        table = db.create_table("t", num_columns=3)
        for key in range(20):
            table.insert([key, key * 10, 0])
        for key in range(0, 20, 2):
            table.update(table.index.primary.get(key), {1: 5000 + key})
        db.checkpoint()
        for key in range(0, 20, 3):
            table.update(table.index.primary.get(key), {2: 11})
        db.query("t").delete(19)
        db._wal.flush()

        fast = _recover(log_path)
        full = _recover(log_path, use_checkpoint=False)
        assert fast.recovery_report.checkpoint_directory is not None
        assert full.recovery_report.checkpoint_directory is None

        fast_q, full_q = fast.query("t"), full.query("t")
        assert fast_q.count() == full_q.count()
        for key in range(19):
            assert (fast_q.select(key, 0, None)[0].columns
                    == full_q.select(key, 0, None)[0].columns)
        assert not fast_q.select(19, 0, None)
        assert not full_q.select(19, 0, None)

        fast_t, full_t = fast.get_table("t"), full.get_table("t")
        fast_ranges = fast_t.sorted_ranges()
        full_ranges = full_t.sorted_ranges()
        assert len(fast_ranges) == len(full_ranges)
        for fast_r, full_r in zip(fast_ranges, full_ranges):
            assert fast_r.unmerged_min_time == full_r.unmerged_min_time
            assert fast_r.dirty_offsets() == full_r.dirty_offsets()

    def test_straddling_txn_resolved_from_suffix(self, wal_db):
        """A transaction whose writes precede the checkpoint but whose
        commit lands after it is stamped by recovery; one that never
        commits stays invisible."""
        db, log_path = wal_db
        table = db.create_table("t", num_columns=2)
        for key in range(8):
            table.insert([key, 10])
        committed = Transaction(db.txn_manager)
        committed.update(table, 1, {1: 77})
        orphan = Transaction(db.txn_manager)
        orphan.update(table, 2, {1: 88})
        db._wal.flush()
        db.checkpoint()  # markers for both txns are inside the image
        assert committed.commit()  # commit record lands in the suffix
        db._wal.flush()
        recovered = _recover(log_path)
        assert recovered.recovery_report.checkpoint_directory is not None
        query = recovered.query("t")
        assert query.select(1, 0, None)[0][1] == 77  # straddler: stamped
        assert query.select(2, 0, None)[0][1] == 10  # orphan: invisible

    def test_checkpoint_truncates_dead_segments(self, tmp_path):
        """With tiny segments, checkpointing unlinks the covered chain
        and recovery stays green across two checkpoint generations."""
        config = EngineConfig(
            records_per_page=8, records_per_tail_page=8,
            update_range_size=16, merge_threshold=8, insert_range_size=16,
            wal_enabled=True, data_dir=str(tmp_path),
            wal_segment_bytes=1024)
        db = Database(config)
        log_path = os.path.join(str(tmp_path), "wal.log")
        table = db.create_table("t", num_columns=2)
        for key in range(30):
            table.insert([key, key])
        result_one = db.checkpoint()
        for key in range(30):
            table.update(table.index.primary.get(key), {1: key + 1000})
        result_two = db.checkpoint()
        assert result_one.segments_truncated + result_two.segments_truncated > 0
        assert db._wal.stat_segments_truncated > 0
        assert db._wal.stat_last_checkpoint_lsn == result_two.record_lsn
        assert db._wal.stat_last_checkpoint_seconds > 0
        db._wal.flush()
        recovered = _recover(log_path)
        query = recovered.query("t")
        assert query.count() == 30
        assert query.select(7, 0, None)[0][1] == 1007
        recovered.run_merges()
        query.update(7, None, 4242)
        assert query.select(7, 0, None)[0][1] == 4242
        db.close()
