"""Ownership Relaying protocol: pageLSN consistency (Section 5.2)."""

import threading

from repro.wal.ownership import OwnershipRelay, PageLSNTracker


class TestSingleWriter:
    def test_owner_stamps_page_lsn(self):
        relay = OwnershipRelay()
        with relay.write(page_id=1, lsn=10):
            pass
        assert relay.page_lsn(1) == 10
        assert relay.stat_stamps == 1

    def test_sequential_writers_monotone(self):
        relay = OwnershipRelay()
        for lsn in (5, 9, 12):
            with relay.write(1, lsn):
                pass
        assert relay.page_lsn(1) == 12

    def test_out_of_order_lsn_relayed(self):
        relay = OwnershipRelay()
        with relay.write(1, 10):
            pass
        with relay.write(1, 7):  # lower LSN: someone newer already owned
            pass
        assert relay.page_lsn(1) == 10

    def test_pages_independent(self):
        relay = OwnershipRelay()
        with relay.write(1, 10):
            pass
        with relay.write(2, 20):
            pass
        assert relay.page_lsn(1) == 10
        assert relay.page_lsn(2) == 20

    def test_exception_releases_latch(self):
        relay = OwnershipRelay()
        try:
            with relay.write(1, 5):
                raise RuntimeError("statement failed")
        except RuntimeError:
            pass
        # The latch must be free for the next writer.
        with relay.write(1, 6):
            pass
        assert relay.page_lsn(1) == 6


class TestConcurrentWriters:
    def test_page_lsn_reaches_max(self):
        relay = OwnershipRelay()
        lsns = list(range(1, 101))

        def writer(lsn: int) -> None:
            with relay.write(1, lsn):
                pass

        threads = [threading.Thread(target=writer, args=(lsn,))
                   for lsn in lsns]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # The defining invariant: after all writers drain, the pageLSN
        # equals the highest LSN that touched the page.
        assert relay.page_lsn(1) == 100
        assert relay.tracker(1).is_consistent()

    def test_fewer_stamps_than_writers(self):
        # The point of OR: one exclusive stamp serves many writers.
        relay = OwnershipRelay()
        barrier = threading.Barrier(8)

        def writer(lsn: int) -> None:
            barrier.wait()
            with relay.write(1, lsn):
                pass

        threads = [threading.Thread(target=writer, args=(lsn,))
                   for lsn in range(1, 9)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert relay.stat_stamps + relay.stat_relayed >= 8
        assert relay.page_lsn(1) == 8


class TestForcedFlush:
    def test_flush_page(self):
        relay = OwnershipRelay()
        with relay.write(1, 10):
            pass
        assert relay.flush_page(1) == 10
        assert relay.stat_forced_flushes == 1

    def test_theta_bound_triggers_flush(self):
        relay = OwnershipRelay(theta_shared=4)
        for lsn in range(1, 10):
            with relay.write(1, lsn):
                pass
        assert relay.stat_forced_flushes >= 1
        assert relay.page_lsn(1) == 9

    def test_tracker_reuse(self):
        relay = OwnershipRelay()
        assert relay.tracker(5) is relay.tracker(5)
