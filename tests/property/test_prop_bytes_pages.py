"""Byte-buffer pages vs the object-list semantics oracle.

The same random operation history — inserts, multi-column updates,
deletes, transactional writes aborted *between append and install*,
sidecar-spilling updates (values outside int64), and merges — runs
against two databases that differ only in ``EngineConfig.bytes_pages``.
Every observable must agree: latest reads, relative-version history,
scan sums (as-of and current), and the incremental dirty/horizon
bookkeeping — the byte-buffer layout is a physical change only, the
paper's semantics must be invariant under it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, EngineConfig
from repro.core.merge import merge_update_range
from repro.core.table import DELETED
from repro.core.types import make_txn_marker

NUM_COLUMNS = 4
#: Column that receives non-int64 values (sidecar spill); kept out of
#: the scan-sum probes so the object oracle's int64 scan path is never
#: asked to vectorise a > 2^63 value.
SPILL_COLUMN = NUM_COLUMNS - 1
KEYS = list(range(10))


def _database(bytes_pages: bool, cumulative: bool) -> Database:
    return Database(EngineConfig(
        records_per_page=8, records_per_tail_page=8,
        update_range_size=16, merge_threshold=1000, insert_range_size=16,
        background_merge=False, bytes_pages=bytes_pages,
        cumulative_updates=cumulative))


columns = st.lists(st.integers(1, NUM_COLUMNS - 1), min_size=1,
                   max_size=NUM_COLUMNS - 1, unique=True)

operation = st.one_of(
    st.tuples(st.just("insert"), st.sampled_from(KEYS)),
    st.tuples(st.just("update"), st.sampled_from(KEYS), columns,
              st.integers(0, 99)),
    st.tuples(st.just("delete"), st.sampled_from(KEYS)),
    st.tuples(st.just("aborted_update"), st.sampled_from(KEYS), columns,
              st.integers(100, 199)),
    # Values the fixed-width buffer cannot hold: huge ints overflow
    # int64 and spill to the page sidecar on the byte-buffer side.
    st.tuples(st.just("update_big"), st.sampled_from(KEYS),
              st.integers(0, 9)),
    st.tuples(st.just("merge")),
)


def _apply(db: Database, table, op) -> None:
    kind = op[0]
    if kind == "insert":
        key = op[1]
        if table.index.primary.get(key) is None:
            table.insert([key] + [key * 10 + c
                                  for c in range(1, NUM_COLUMNS)])
    elif kind == "update":
        _, key, cols, value = op
        rid = table.index.primary.get(key)
        if rid is None:
            return
        try:
            table.update(rid, {c: value + c for c in cols})
        except Exception:
            pass
    elif kind == "update_big":
        _, key, value = op
        rid = table.index.primary.get(key)
        if rid is None:
            return
        try:
            table.update(rid, {SPILL_COLUMN: (1 << 70) + value})
        except Exception:
            pass
    elif kind == "delete":
        rid = table.index.primary.get(op[1])
        if rid is None:
            return
        try:
            table.delete(rid)
        except Exception:
            pass
    elif kind == "aborted_update":
        _, key, cols, value = op
        rid = table.index.primary.get(key)
        if rid is None:
            return
        # OCC rollback driven at the storage level so the abort point
        # is exact: the tail record exists but the indirection never
        # moves and the record is tombstoned.
        txn = db.begin_transaction()
        marker = make_txn_marker(txn.txn_id)
        if not table.try_latch(rid):
            txn.abort()
            return
        try:
            tail_rid = table.append_update(rid,
                                           {c: value + c for c in cols},
                                           marker)
        except Exception:
            table.unlatch(rid)
            txn.abort()
            return
        table.unlatch(rid)  # abort path: never installed
        db.txn_manager.abort(txn.txn_id)
        table.mark_tail_tombstone(rid, tail_rid)
    elif kind == "merge":
        for update_range in table.sorted_ranges():
            if update_range.merged:
                merge_update_range(table, update_range)


def _observe(table):
    """Every observable the two layouts must agree on."""
    state = {}
    for key in KEYS:
        rid = table.index.primary.get(key)
        if rid is None:
            state[key] = ("absent",)
            continue
        latest = table.read_latest(rid)
        history = [table.read_relative_version(
                       rid, None, -back) for back in range(3)]
        state[key] = (
            "deleted" if latest is DELETED else latest,
            ["deleted" if v is DELETED else v for v in history],
        )
    sums = tuple(table.scan_sum(column)
                 for column in range(SPILL_COLUMN))
    dirty = tuple(sorted(update_range.dirty_offsets())
                  for update_range in table.sorted_ranges())
    return state, sums, dirty


@settings(max_examples=30, deadline=None)
@given(st.lists(operation, max_size=50), st.booleans())
def test_bytes_pages_match_object_oracle(operations, cumulative):
    bytes_db = _database(bytes_pages=True, cumulative=cumulative)
    object_db = _database(bytes_pages=False, cumulative=cumulative)
    try:
        bytes_table = bytes_db.create_table("prop",
                                            num_columns=NUM_COLUMNS)
        object_table = object_db.create_table("prop",
                                              num_columns=NUM_COLUMNS)
        for op in operations:
            _apply(bytes_db, bytes_table, op)
            _apply(object_db, object_table, op)
            assert (bytes_table.stat_updates, bytes_table.stat_deletes) \
                == (object_table.stat_updates, object_table.stat_deletes)
        assert _observe(bytes_table) == _observe(object_table)
        # The horizon summary must match too (same lower-bound rules).
        for b_range, o_range in zip(bytes_table.sorted_ranges(),
                                    object_table.sorted_ranges()):
            assert b_range.dirty_counts == o_range.dirty_counts
    finally:
        bytes_db.close()
        object_db.close()


@settings(max_examples=10, deadline=None)
@given(st.lists(operation, max_size=40))
def test_bytes_pages_snapshot_reads_match(operations):
    """Time-travel reads cross the layouts (as-of scan semantics)."""
    bytes_db = _database(bytes_pages=True, cumulative=True)
    object_db = _database(bytes_pages=False, cumulative=True)
    try:
        bytes_table = bytes_db.create_table("prop",
                                            num_columns=NUM_COLUMNS)
        object_table = object_db.create_table("prop",
                                              num_columns=NUM_COLUMNS)
        times = []
        for op in operations:
            _apply(bytes_db, bytes_table, op)
            _apply(object_db, object_table, op)
            # Clocks advance in lockstep (same operations), so shared
            # as_of probes are meaningful.
            assert bytes_table.clock.now() == object_table.clock.now()
            times.append(bytes_table.clock.now())
        for as_of in times[::5]:
            for column in range(SPILL_COLUMN):
                assert bytes_table.scan_sum(column, as_of=as_of) \
                    == object_table.scan_sum(column, as_of=as_of)
    finally:
        bytes_db.close()
        object_db.close()
