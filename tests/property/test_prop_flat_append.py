"""Flat-cell appends vs the dict-of-cells semantics oracle.

The same random operation history — inserts, multi-column updates,
deletes, transactional writes aborted *between append and install*,
and merges — runs against two databases that differ only in
``EngineConfig.flat_appends``. Every observable must agree: latest
reads, relative-version history (which exercises the Lemma-2 snapshot
records the flat path fuses into the update append), scan sums, and
the incremental dirty/horizon bookkeeping the flat path folds into a
single lock acquisition.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, EngineConfig
from repro.core.merge import merge_update_range
from repro.core.table import DELETED
from repro.core.types import make_txn_marker

NUM_COLUMNS = 4
KEYS = list(range(10))


def _database(flat: bool, cumulative: bool) -> Database:
    return Database(EngineConfig(
        records_per_page=8, records_per_tail_page=8,
        update_range_size=16, merge_threshold=1000, insert_range_size=16,
        background_merge=False, flat_appends=flat,
        cumulative_updates=cumulative))


columns = st.lists(st.integers(1, NUM_COLUMNS - 1), min_size=1,
                   max_size=NUM_COLUMNS - 1, unique=True)

operation = st.one_of(
    st.tuples(st.just("insert"), st.sampled_from(KEYS)),
    st.tuples(st.just("update"), st.sampled_from(KEYS), columns,
              st.integers(0, 99)),
    st.tuples(st.just("delete"), st.sampled_from(KEYS)),
    st.tuples(st.just("aborted_update"), st.sampled_from(KEYS), columns,
              st.integers(100, 199)),
    st.tuples(st.just("merge")),
)


def _apply(db: Database, table, op) -> None:
    kind = op[0]
    if kind == "insert":
        key = op[1]
        if table.index.primary.get(key) is None:
            table.insert([key] + [key * 10 + c
                                  for c in range(1, NUM_COLUMNS)])
    elif kind == "update":
        _, key, cols, value = op
        rid = table.index.primary.get(key)
        if rid is None:
            return
        try:
            table.update(rid, {c: value + c for c in cols})
        except Exception:
            pass
    elif kind == "delete":
        rid = table.index.primary.get(op[1])
        if rid is None:
            return
        try:
            table.delete(rid)
        except Exception:
            pass
    elif kind == "aborted_update":
        _, key, cols, value = op
        rid = table.index.primary.get(key)
        if rid is None:
            return
        # A transactional write that aborts between append and
        # install: the tail record exists (snapshot included) but the
        # indirection never moves and the record is tombstoned — the
        # OCC rollback path, driven at the storage level so the abort
        # point is exact.
        txn = db.begin_transaction()
        marker = make_txn_marker(txn.txn_id)
        if not table.try_latch(rid):
            txn.abort()
            return
        try:
            tail_rid = table.append_update(rid,
                                           {c: value + c for c in cols},
                                           marker)
        except Exception:
            table.unlatch(rid)
            txn.abort()
            return
        table.unlatch(rid)  # abort path: never installed
        db.txn_manager.abort(txn.txn_id)
        table.mark_tail_tombstone(rid, tail_rid)
    elif kind == "merge":
        for update_range in table.sorted_ranges():
            if update_range.merged:
                merge_update_range(table, update_range)


def _observe(table):
    """Every observable the two paths must agree on."""
    state = {}
    for key in KEYS:
        rid = table.index.primary.get(key)
        if rid is None:
            state[key] = ("absent",)
            continue
        latest = table.read_latest(rid)
        history = [table.read_relative_version(
                       rid, None, -back) for back in range(3)]
        state[key] = (
            "deleted" if latest is DELETED else latest,
            ["deleted" if v is DELETED else v for v in history],
        )
    sums = tuple(table.scan_sum(column)
                 for column in range(NUM_COLUMNS))
    dirty = tuple(sorted(update_range.dirty_offsets())
                  for update_range in table.sorted_ranges())
    return state, sums, dirty


@settings(max_examples=30, deadline=None)
@given(st.lists(operation, max_size=50), st.booleans())
def test_flat_append_matches_dict_oracle(operations, cumulative):
    flat_db = _database(flat=True, cumulative=cumulative)
    dict_db = _database(flat=False, cumulative=cumulative)
    try:
        flat_table = flat_db.create_table("prop", num_columns=NUM_COLUMNS)
        dict_table = dict_db.create_table("prop", num_columns=NUM_COLUMNS)
        for op in operations:
            _apply(flat_db, flat_table, op)
            _apply(dict_db, dict_table, op)
            assert (flat_table.stat_updates, flat_table.stat_deletes) \
                == (dict_table.stat_updates, dict_table.stat_deletes)
        assert _observe(flat_table) == _observe(dict_table)
        # The horizon summary must match too (same lower-bound rules).
        for flat_range, dict_range in zip(flat_table.sorted_ranges(),
                                          dict_table.sorted_ranges()):
            assert flat_range.dirty_counts == dict_range.dirty_counts
    finally:
        flat_db.close()
        dict_db.close()


@settings(max_examples=10, deadline=None)
@given(st.lists(operation, max_size=40))
def test_flat_append_snapshot_reads_match(operations):
    """Time-travel reads cross the paths (snapshot-record semantics)."""
    flat_db = _database(flat=True, cumulative=True)
    dict_db = _database(flat=False, cumulative=True)
    try:
        flat_table = flat_db.create_table("prop", num_columns=NUM_COLUMNS)
        dict_table = dict_db.create_table("prop", num_columns=NUM_COLUMNS)
        times = []
        for op in operations:
            _apply(flat_db, flat_table, op)
            _apply(dict_db, dict_table, op)
            # Clocks advance in lockstep (same operations), so shared
            # as_of probes are meaningful.
            assert flat_table.clock.now() == dict_table.clock.now()
            times.append(flat_table.clock.now())
        for as_of in times[::5]:
            for column in range(NUM_COLUMNS):
                assert flat_table.scan_sum(column, as_of=as_of) \
                    == dict_table.scan_sum(column, as_of=as_of)
    finally:
        flat_db.close()
        dict_db.close()
