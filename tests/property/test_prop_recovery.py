"""Recovery property: replaying any committed prefix reproduces state."""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, EngineConfig
from repro.wal.recovery import recover_database


def _config(data_dir=None) -> EngineConfig:
    return EngineConfig(
        records_per_page=8, records_per_tail_page=8,
        update_range_size=16, merge_threshold=1000, insert_range_size=16,
        wal_enabled=data_dir is not None, data_dir=data_dir)


operation = st.one_of(
    st.tuples(st.just("insert"), st.integers(0, 19)),
    st.tuples(st.just("update"), st.integers(0, 19),
              st.integers(1, 2), st.integers(0, 99)),
    st.tuples(st.just("delete"), st.integers(0, 19)),
)


@settings(max_examples=25, deadline=None)
@given(st.lists(operation, max_size=40), st.booleans())
def test_recovery_reproduces_visible_state(operations, rebuild):
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        db = Database(_config(tmp))
        try:
            table = db.create_table("t", num_columns=3)
            model: dict[int, dict[int, int] | None] = {}
            for op in operations:
                kind, key = op[0], op[1]
                live = model.get(key) is not None
                if kind == "insert" and not live:
                    table.insert([key, key, 0])
                    model[key] = {0: key, 1: key, 2: 0}
                elif kind == "update" and live:
                    _, _, column, value = op
                    table.update(table.index.primary.get(key),
                                 {column: value})
                    model[key][column] = value
                elif kind == "delete" and live:
                    table.delete(table.index.primary.get(key))
                    model[key] = None
            db._wal.flush()
            recovered = recover_database(
                os.path.join(tmp, "wal.log"), config=_config(),
                rebuild_indirection=rebuild)
            query = recovered.query("t")
            for key, expected in model.items():
                records = query.select(key, 0, None)
                if expected is None:
                    assert records == []
                else:
                    assert records[0].columns == tuple(
                        expected[c] for c in range(3))
            live_keys = [k for k, v in model.items() if v is not None]
            assert query.count() == len(live_keys)
        finally:
            db.close()
