"""Concurrency-protocol properties: atomicity and isolation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, EngineConfig, IsolationLevel
from repro.errors import TransactionAborted
from repro.txn.transaction import Transaction


def _database() -> Database:
    return Database(EngineConfig(
        records_per_page=8, records_per_tail_page=8,
        update_range_size=16, merge_threshold=1000, insert_range_size=16,
        background_merge=False))


statement = st.one_of(
    st.tuples(st.just("update"), st.integers(0, 7), st.integers(0, 99)),
    st.tuples(st.just("read"), st.integers(0, 7)),
    st.tuples(st.just("insert"), st.integers(100, 120)),
)


@settings(max_examples=40, deadline=None)
@given(st.lists(statement, min_size=1, max_size=10), st.booleans())
def test_atomicity_all_or_nothing(statements, commit):
    """Either every statement's effect is visible, or none is."""
    db = _database()
    try:
        table = db.create_table("t", num_columns=2)
        for key in range(8):
            table.insert([key, 0])
        baseline = {key: table.read_latest(
            table.index.primary.get(key))[1] for key in range(8)}
        txn = Transaction(db.txn_manager)
        expected = dict(baseline)
        inserted: set[int] = set()
        try:
            for op in statements:
                if op[0] == "update":
                    txn.update(table, op[1], {1: op[2]})
                    expected[op[1]] = op[2]
                elif op[0] == "read":
                    txn.select(table, op[1])
                else:
                    if op[1] in inserted:
                        continue
                    txn.insert(table, [op[1], 1])
                    inserted.add(op[1])
        except TransactionAborted:
            commit = False
        if commit:
            assert txn.commit()
            for key, value in expected.items():
                assert table.read_latest(
                    table.index.primary.get(key))[1] == value
            for key in inserted:
                assert table.index.primary.get(key) is not None
        else:
            txn.abort()
            for key, value in baseline.items():
                assert table.read_latest(
                    table.index.primary.get(key))[1] == value
            for key in inserted:
                assert table.index.primary.get(key) is None
    finally:
        db.close()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 7), st.integers(1, 99)),
                min_size=1, max_size=8))
def test_snapshot_isolation_immune_to_later_commits(writes):
    """A snapshot transaction's reads never change, whatever commits
    after its begin time."""
    db = _database()
    try:
        table = db.create_table("t", num_columns=2)
        for key in range(8):
            table.insert([key, 0])
        snapshot_txn = Transaction(db.txn_manager,
                                   isolation=IsolationLevel.SNAPSHOT)
        first_reads = {key: snapshot_txn.select(table, key)[1]
                       for key in range(8)}
        for key, value in writes:
            table.update(table.index.primary.get(key), {1: value})
        second_reads = {key: snapshot_txn.select(table, key)[1]
                        for key in range(8)}
        assert first_reads == second_reads == {key: 0 for key in range(8)}
        snapshot_txn.commit()
    finally:
        db.close()


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 7), st.integers(1, 99), st.integers(1, 99))
def test_first_writer_wins_second_aborts(key, first_value, second_value):
    db = _database()
    try:
        table = db.create_table("t", num_columns=2)
        for k in range(8):
            table.insert([k, 0])
        txn_a = Transaction(db.txn_manager)
        txn_b = Transaction(db.txn_manager)
        txn_a.update(table, key, {1: first_value})
        try:
            txn_b.update(table, key, {1: second_value})
            conflicted = False
        except TransactionAborted:
            conflicted = True
        assert conflicted
        assert txn_a.commit()
        rid = table.index.primary.get(key)
        assert table.read_latest(rid)[1] == first_value
    finally:
        db.close()
