"""Merge invariants: TPS monotonicity, stability, read preservation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, EngineConfig
from repro.core.merge import merge_update_range
from repro.core.table import DELETED, tps_applied
from repro.core.types import NULL_RID
from repro.core.version import visible_latest_committed


def _database() -> Database:
    return Database(EngineConfig(
        records_per_page=8, records_per_tail_page=8,
        update_range_size=16, merge_threshold=1000, insert_range_size=16,
        background_merge=False))


def _loaded_table(db, keys=16):
    table = db.create_table("t", num_columns=3)
    for key in range(keys):
        table.insert([key, key, 0])
    db.run_merges()
    return table


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 99)),
                min_size=1, max_size=40),
       st.lists(st.integers(1, 10), min_size=1, max_size=5))
def test_tps_monotone_across_partial_merges(updates, merge_batches):
    """Any sequence of partial merges keeps TPS strictly advancing and
    reads exact."""
    db = _database()
    try:
        table = _loaded_table(db)
        update_range = table.ranges[0]
        expected = {key: key for key in range(16)}
        for key, value in updates:
            table.update(table.index.primary.get(key), {1: value})
            expected[key] = value
        previous_tps = update_range.tps_rid
        for batch in merge_batches:
            result = merge_update_range(table, update_range,
                                        max_records=batch)
            if result.performed:
                if previous_tps != NULL_RID:
                    assert update_range.tps_rid < previous_tps
                previous_tps = update_range.tps_rid
        for key, value in expected.items():
            rid = table.index.primary.get(key)
            assert table.read_latest(rid)[1] == value
        assert table.scan_sum(1) == sum(expected.values())
    finally:
        db.close()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 99)),
                min_size=1, max_size=30))
def test_merge_equivalent_to_no_merge(updates):
    """The merged table answers every read exactly like an unmerged one."""
    db_a = _database()
    db_b = _database()
    try:
        table_a = _loaded_table(db_a)
        table_b = _loaded_table(db_b)
        for key, value in updates:
            table_a.update(table_a.index.primary.get(key), {1: value})
            table_b.update(table_b.index.primary.get(key), {1: value})
        merge_update_range(table_a, table_a.ranges[0])
        for key in range(16):
            rid_a = table_a.index.primary.get(key)
            rid_b = table_b.index.primary.get(key)
            assert table_a.read_latest(rid_a) == table_b.read_latest(rid_b)
            for back in range(3):
                assert table_a.read_relative_version(rid_a, (1,), -back) \
                    == table_b.read_relative_version(rid_b, (1,), -back)
        assert table_a.scan_sum(1) == table_b.scan_sum(1)
    finally:
        db_a.close()
        db_b.close()


@settings(max_examples=30, deadline=None)
@given(st.sets(st.integers(0, 15), min_size=1, max_size=8))
def test_deletes_survive_merge(deleted_keys):
    db = _database()
    try:
        table = _loaded_table(db)
        for key in deleted_keys:
            table.delete(table.index.primary.get(key))
        merge_update_range(table, table.ranges[0])
        for key in range(16):
            rid = table.index.primary.get(key)
            result = table.read_latest(rid)
            if key in deleted_keys:
                assert result is DELETED
            else:
                assert result[1] == key
        assert table.scan_sum(1) \
            == sum(key for key in range(16) if key not in deleted_keys)
    finally:
        db.close()


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 15), st.integers(1, 2),
                          st.integers(0, 99)),
                min_size=1, max_size=30))
def test_applied_watermark_consistent(updates):
    """After a full merge, every installed indirection is TPS-covered,
    and the 1-hop read path (merged base pages) serves the same values
    as the chain walk."""
    db = _database()
    try:
        table = _loaded_table(db)
        update_range = table.ranges[0]
        for key, column, value in updates:
            table.update(table.index.primary.get(key), {column: value})
        merge_update_range(table, update_range)
        for offset in range(update_range.size):
            indirection = update_range.indirection.read(offset)
            if indirection != NULL_RID:
                assert tps_applied(update_range.tps_rid, indirection)
        for key in range(16):
            rid = table.index.primary.get(key)
            via_chain = table.assemble_version(rid, (1, 2),
                                               visible_latest_committed)
            assert table.read_latest(rid, (1, 2)) == via_chain
    finally:
        db.close()
