"""Property tests on the storage primitives (pages, encodings, codecs)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compression import (delta_decode, delta_encode,
                                    maybe_compress_page)
from repro.core.encoding import SchemaEncoding
from repro.core.page import Page
from repro.core.types import NULL, PageKind, is_null
from repro.storage.serialization import deserialize_page, serialize_page

values_strategy = st.one_of(
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    st.just(NULL),
    st.text(max_size=8),
)


class TestEncodingProperties:
    @given(st.integers(1, 16), st.data())
    def test_column_round_trip(self, num_columns, data):
        columns = data.draw(st.sets(
            st.integers(0, num_columns - 1)))
        snapshot = data.draw(st.booleans())
        encoding = SchemaEncoding.from_columns(num_columns, columns,
                                               snapshot)
        assert set(encoding.updated_columns()) == columns
        assert encoding.is_snapshot == snapshot

    @given(st.integers(1, 16), st.data())
    def test_packed_round_trip(self, num_columns, data):
        bits = data.draw(st.integers(0, (1 << num_columns) - 1))
        snapshot = data.draw(st.booleans())
        encoding = SchemaEncoding(num_columns, bits, snapshot)
        assert SchemaEncoding.from_int(num_columns,
                                       encoding.to_int()) == encoding

    @given(st.integers(1, 12), st.data())
    def test_union_is_bitwise_or(self, num_columns, data):
        a_cols = data.draw(st.sets(st.integers(0, num_columns - 1)))
        b_cols = data.draw(st.sets(st.integers(0, num_columns - 1)))
        a = SchemaEncoding.from_columns(num_columns, a_cols)
        b = SchemaEncoding.from_columns(num_columns, b_cols)
        assert set(a.union(b).updated_columns()) == a_cols | b_cols


class TestDeltaCodecProperties:
    @given(st.lists(st.integers(min_value=-(2 ** 50),
                                max_value=2 ** 50)))
    def test_round_trip(self, values):
        if not values:
            return
        assert delta_decode(*delta_encode(values)) == values


class TestPageProperties:
    @given(st.lists(values_strategy, min_size=1, max_size=64))
    def test_serialization_round_trip(self, values):
        page = Page(1, PageKind.TAIL, max(len(values), 1))
        for slot, value in enumerate(values):
            page.write_slot(slot, value)
        restored = deserialize_page(serialize_page(page))
        for slot, value in enumerate(values):
            restored_value = restored.read_slot(slot)
            if is_null(value):
                assert is_null(restored_value)
            else:
                assert restored_value == value

    @given(st.lists(st.integers(0, 3), min_size=8, max_size=64))
    def test_dictionary_compression_lossless(self, values):
        page = Page(1, PageKind.MERGED, len(values))
        page.fill(values)
        compressed = maybe_compress_page(page)
        assert [compressed.read_slot(i) for i in range(len(values))] \
            == values
        array = compressed.as_numpy()
        assert array is not None and list(array) == values

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=32))
    def test_numpy_view_matches_values(self, values):
        page = Page(1, PageKind.BASE, len(values))
        page.fill(values)
        array = page.as_numpy()
        assert array is not None
        assert list(array) == values
        assert int(array.sum()) == sum(values)
