"""Model-based property tests on the lineage storage.

A random interleaving of inserts, updates, deletes and merges is
mirrored against a plain-dict model; the table must agree with the
model on every read — latest values, historic versions, and scans —
regardless of where merges landed (lineage completeness)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, EngineConfig
from repro.core.merge import merge_update_range
from repro.core.table import DELETED

NUM_COLUMNS = 4
KEYS = list(range(12))


def _database() -> Database:
    return Database(EngineConfig(
        records_per_page=8, records_per_tail_page=8,
        update_range_size=16, merge_threshold=1000, insert_range_size=16,
        background_merge=False))


operation = st.one_of(
    st.tuples(st.just("insert"), st.sampled_from(KEYS)),
    st.tuples(st.just("update"), st.sampled_from(KEYS),
              st.integers(1, NUM_COLUMNS - 1), st.integers(0, 99)),
    st.tuples(st.just("delete"), st.sampled_from(KEYS)),
    st.tuples(st.just("merge")),
    st.tuples(st.just("compress")),
)


class _Model:
    """Reference implementation: dict of versions per key."""

    def __init__(self) -> None:
        self.versions: dict[int, list[dict[int, int] | None]] = {}

    def live(self, key: int) -> bool:
        versions = self.versions.get(key)
        return bool(versions) and versions[-1] is not None

    def insert(self, key: int) -> None:
        row = {column: key * 10 + column for column in range(NUM_COLUMNS)}
        row[0] = key
        self.versions[key] = [row]

    def update(self, key: int, column: int, value: int) -> None:
        current = dict(self.versions[key][-1])
        current[column] = value
        self.versions[key].append(current)

    def delete(self, key: int) -> None:
        self.versions[key].append(None)

    def latest(self, key: int):
        versions = self.versions.get(key)
        if not versions:
            return None
        return versions[-1]

    def scan_sum(self, column: int) -> int:
        total = 0
        for versions in self.versions.values():
            if versions and versions[-1] is not None:
                total += versions[-1][column]
        return total


@settings(max_examples=40, deadline=None)
@given(st.lists(operation, max_size=60))
def test_table_agrees_with_model(operations):
    db = _database()
    try:
        table = db.create_table("prop", num_columns=NUM_COLUMNS)
        model = _Model()
        for op in operations:
            kind = op[0]
            if kind == "insert":
                key = op[1]
                if model.live(key):
                    continue
                row = {column: key * 10 + column
                       for column in range(NUM_COLUMNS)}
                row[0] = key
                table.insert([row[c] for c in range(NUM_COLUMNS)])
                model.insert(key)
            elif kind == "update":
                _, key, column, value = op
                if not model.live(key):
                    continue
                table.update(table.index.primary.get(key),
                             {column: value})
                model.update(key, column, value)
            elif kind == "delete":
                key = op[1]
                if not model.live(key):
                    continue
                table.delete(table.index.primary.get(key))
                model.delete(key)
            elif kind == "merge":
                db.run_merges()
                for update_range in table.sorted_ranges():
                    merge_update_range(table, update_range)
            else:  # compress
                db.compress_history()

        # Latest reads agree.
        for key in KEYS:
            expected = model.latest(key)
            rid = table.index.primary.get(key)
            if expected is None:
                if rid is not None and model.versions.get(key):
                    actual = table.read_latest(rid)
                    assert actual is DELETED or actual is None
                continue
            actual = table.read_latest(rid)
            assert actual == expected
            assert table.read_latest_fast(rid) == expected
        # Scans agree.
        for column in range(1, NUM_COLUMNS):
            assert table.scan_sum(column) == model.scan_sum(column)
    finally:
        db.close()


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(1, NUM_COLUMNS - 1),
                          st.integers(0, 99)),
                max_size=20),
       st.integers(0, 25))
def test_every_version_reachable_across_merges(updates, merge_after):
    """select_version(-k) equals the k-th most recent model version,
    no matter where a merge was injected in the middle."""
    db = _database()
    try:
        table = db.create_table("prop", num_columns=NUM_COLUMNS)
        rid = table.insert([5, 50, 51, 52])
        expected_versions = [{0: 5, 1: 50, 2: 51, 3: 52}]
        for step, (column, value) in enumerate(updates):
            if step == merge_after:
                db.run_merges()
                for update_range in table.sorted_ranges():
                    merge_update_range(table, update_range)
            table.update(rid, {column: value})
            version = dict(expected_versions[-1])
            version[column] = value
            expected_versions.append(version)
        for back, expected in enumerate(reversed(expected_versions)):
            actual = table.read_relative_version(
                rid, range(NUM_COLUMNS), -back)
            assert actual == expected
    finally:
        db.close()


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(1, NUM_COLUMNS - 1),
                          st.integers(0, 99)),
                min_size=1, max_size=15))
def test_as_of_reads_match_history(updates):
    """A snapshot read at any recorded timestamp sees exactly the state
    that was current then, even after merging and compressing."""
    from repro.core.version import visible_as_of
    db = _database()
    try:
        table = db.create_table("prop", num_columns=NUM_COLUMNS)
        rid = table.insert([5, 50, 51, 52])
        history = [(db.clock.now(), {0: 5, 1: 50, 2: 51, 3: 52})]
        for column, value in updates:
            table.update(rid, {column: value})
            version = dict(history[-1][1])
            version[column] = value
            history.append((db.clock.now(), version))
        db.run_merges()
        for update_range in table.sorted_ranges():
            merge_update_range(table, update_range)
        db.compress_history()
        for timestamp, expected in history:
            actual = table.assemble_version(rid, range(NUM_COLUMNS),
                                            visible_as_of(timestamp))
            assert actual == expected
    finally:
        db.close()
