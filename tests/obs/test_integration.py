"""End-to-end: a mixed workload leaves non-trivial metrics everywhere.

The ISSUE-7 acceptance shape: after a transactional mixed workload with
merges, scans, and a WAL, ``Database.metrics()`` must report non-zero
activity in the txn, write, merge, scan, wal, and gc domains, the
backlog/degradation gauges must move under churn, and the old ad-hoc
``stat_*`` attribute surface must agree with the registry it now
aliases.
"""

from __future__ import annotations

import pytest

from repro import Database, EngineConfig


@pytest.fixture
def durable_db(tmp_path):
    database = Database(EngineConfig(
        records_per_page=8, records_per_tail_page=8,
        update_range_size=16, merge_threshold=8, insert_range_size=16,
        background_merge=False, wal_enabled=True,
        data_dir=str(tmp_path)))
    yield database
    database.close()


def _mixed_workload(db: Database) -> None:
    table = db.create_table("mixed", 3)
    query = db.query("mixed")
    for key in range(64):
        query.insert(key, key, 0)
    for round_number in range(3):
        for key in range(0, 64, 2):
            query.update(key, None, round_number, None)
        db.run_merges()
    for key in range(4):
        txn = db.begin_transaction()
        txn.update(table, key, {2: key})
        assert txn.commit()
    txn = db.begin_transaction()
    txn.update(table, 0, {2: -1})
    txn.abort()
    query.scan_sum(1)
    query.scan_sum(1, as_of=db.clock.now())
    query.delete(63)


class TestMixedWorkloadMetrics:
    def test_every_domain_is_non_trivial(self, durable_db):
        _mixed_workload(durable_db)
        metrics = durable_db.metrics()
        assert metrics["txn"]["begins"] >= 5
        assert metrics["txn"]["commits"] >= 4
        assert metrics["txn"]["aborts"] >= 1
        assert metrics["txn"]["commit_seconds"]["count"] >= 4
        assert metrics["write"]["inserts"] == 64
        assert metrics["write"]["updates"] >= 96
        assert metrics["write"]["deletes"] == 1
        assert metrics["merge"]["ranges_merged"] >= 1
        assert metrics["merge"]["records_consolidated"] > 0
        assert metrics["scan"]["partitions_vectorized"] \
            + metrics["scan"]["partitions_version"] \
            + metrics["scan"]["partitions_row"] > 0
        assert metrics["wal"]["appends"] > 0
        assert metrics["wal"]["flushes"] > 0
        assert metrics["wal"]["fsync_seconds"]["count"] > 0
        assert metrics["wal"]["group_commit_batch"]["count"] > 0
        assert metrics["gc"]["pages_reclaimed"] >= 0
        assert metrics["gc"]["txn_entries"] >= 0

    def test_merge_backlog_gauge_moves_under_churn(self, db):
        db.create_table("churn", 2)
        query = db.query("churn")
        for key in range(32):
            query.insert(key, 0)
        registry_backlog = lambda: db.metrics()["merge"]["backlog"]
        db.run_merges()  # drain the insert-merge tasks the loads queued
        assert registry_backlog() == 0
        for key in range(32):
            query.update(key, None, 1)
        assert registry_backlog() > 0  # churn queued merge work
        db.run_merges()
        assert registry_backlog() == 0  # drained

    def test_page_bytes_gauge_moves_under_churn(self, db):
        """storage.page_bytes tracks the byte-buffer footprint."""
        assert db.metrics()["storage"]["page_bytes"] == 0  # no tables
        db.create_table("bytes", 2)
        query = db.query("bytes")
        for key in range(32):
            query.insert(key, 0)
        after_load = db.metrics()["storage"]["page_bytes"]
        if db.config.bytes_pages:
            assert after_load > 0
        else:
            assert after_load == 0  # object-list oracle reports 0
            return
        for key in range(32):
            query.update(key, None, 1)
        after_churn = db.metrics()["storage"]["page_bytes"]
        assert after_churn > after_load  # tail pages added buffers
        db.run_merges()
        # Merged pages replace chains and outdated buffers reclaim, so
        # the gauge moves but the footprint never drops to zero.
        after_merge = db.metrics()["storage"]["page_bytes"]
        assert 0 < after_merge != after_churn

    def test_batched_ranges_counter_moves_under_churn(self, db):
        """merge.batched_ranges counts tasks drained in multi-batches."""
        assert db.config.merge_batch_ranges > 1
        db.create_table("batched", 2)
        query = db.query("batched")
        # Several update ranges' worth of churn queues multiple merge
        # tasks, so one run_pending drain sees a multi-task batch.
        for key in range(48):
            query.insert(key, 0)
        db.run_merges()
        for key in range(48):
            query.update(key, None, 1)
        before = db.metrics()["merge"]["batched_ranges"]
        drained = db.run_merges()
        assert drained > 1
        assert db.metrics()["merge"]["batched_ranges"] >= before + 2

    def test_plane_degradation_counter_moves_under_churn(self):
        db = Database(EngineConfig(
            records_per_page=8, records_per_tail_page=8,
            update_range_size=16, merge_threshold=64,
            insert_range_size=16, background_merge=False,
            vectorized_dirty_fraction=0.25))
        try:
            db.create_table("dirty", 2)
            query = db.query("dirty")
            for key in range(16):
                query.insert(key, 0)
            db.run_merges()  # materialise: ranges now merged + clean
            query.scan_sum(1)
            clean = db.metrics()["scan"]
            assert clean["partitions_vectorized"] > 0
            assert clean["plane_degradations"] == 0
            # Dirty half the range without merging: above the 0.25
            # dirty-fraction gate the planner must degrade to row scan.
            for key in range(8):
                query.update(key, None, key)
            query.scan_sum(1)
            dirty = db.metrics()["scan"]
            assert dirty["plane_degradations"] > 0
            assert dirty["partitions_row"] > 0
        finally:
            db.close()

    def test_legacy_stat_aliases_agree_with_registry(self, db):
        table = db.create_table("alias", 2)
        query = db.query("alias")
        for key in range(10):
            query.insert(key, 0)
        query.update(3, None, 7)
        metrics = db.metrics()
        assert table.stat_inserts == metrics["write"]["inserts"] == 10
        assert table.stat_updates == metrics["write"]["updates"] == 1
        assert db.txn_manager.stat_committed == metrics["txn"]["commits"]
        assert db.merge_engine.stat_merges == \
            metrics["merge"]["ranges_merged"]

    def test_wal_aliases_agree_with_registry(self, durable_db):
        table = durable_db.create_table("walstats", 2)
        for key in range(8):
            table.insert([key, key])
        durable_db._wal.flush()
        metrics = durable_db.metrics()
        wal = durable_db._wal
        assert wal.stat_appends == metrics["wal"]["appends"] > 0
        assert wal.stat_flushes == metrics["wal"]["flushes"] > 0

    def test_disabled_metrics_keep_engine_working(self):
        db = Database(EngineConfig(background_merge=False,
                                   obs_metrics=False))
        try:
            db.create_table("dark", 2)
            query = db.query("dark")
            for key in range(16):
                query.insert(key, key)
            query.update(3, None, 9)
            assert query.scan_sum(1) == sum(range(16)) + 9 - 3
            assert db.metrics()["recovery"] == {}
            assert db.metrics().get("write") is None
            assert db.render_metrics() == ""
            # The alias surface stays readable (null instruments).
            assert db.get_table("dark").stat_inserts == 0
        finally:
            db.close()

    def test_recovery_domain_after_recovery(self, tmp_path):
        config = EngineConfig(
            records_per_page=8, records_per_tail_page=8,
            update_range_size=16, merge_threshold=8, insert_range_size=16,
            background_merge=False, wal_enabled=True,
            data_dir=str(tmp_path))
        db = Database(config)
        table = db.create_table("recov", 2)
        for key in range(8):
            table.insert([key, key])
        db.close()

        from repro.wal.recovery import recover_database
        recovered = recover_database(
            str(tmp_path / "wal.log"),
            config=EngineConfig(
                records_per_page=8, records_per_tail_page=8,
                update_range_size=16, merge_threshold=8,
                insert_range_size=16, background_merge=False))
        try:
            report = recovered.metrics()["recovery"]
            assert report["records_total"] > 0
            assert report["records_replayed"] > 0
            assert report["clean"] is True
        finally:
            recovered.close()
