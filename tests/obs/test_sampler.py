"""Sampler tests: JSONL ticks, final sample, error resilience."""

from __future__ import annotations

import json
import time

import pytest

from repro import Database, EngineConfig
from repro.obs.sampler import MetricsSampler


def _read_lines(path) -> list[dict]:
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestMetricsSampler:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            MetricsSampler(dict, "unused.jsonl", 0)

    def test_stop_appends_final_sample(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        sampler = MetricsSampler(lambda: {"txn": {"commits": 5}},
                                 str(path), interval=60.0)
        sampler.start()
        assert sampler.running
        sampler.stop()
        assert not sampler.running
        lines = _read_lines(path)
        assert len(lines) == 1  # the stop() sample; no tick elapsed
        assert lines[0]["metrics"] == {"txn": {"commits": 5}}
        assert lines[0]["ts"] > 0

    def test_periodic_ticks(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        sampler = MetricsSampler(lambda: {"n": 1}, str(path),
                                 interval=0.02)
        sampler.start()
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            if path.exists() and len(_read_lines(path)) >= 2:
                break
            time.sleep(0.01)
        sampler.stop()
        assert len(_read_lines(path)) >= 2

    def test_snapshot_failure_becomes_error_line(self, tmp_path):
        path = tmp_path / "metrics.jsonl"

        def boom():
            raise RuntimeError("snapshot exploded")

        sampler = MetricsSampler(boom, str(path), interval=60.0)
        sampler.stop()  # takes the final sample without a thread
        lines = _read_lines(path)
        assert lines[0]["error"] == "snapshot exploded"


class TestDatabaseIntegration:
    def test_config_starts_and_stops_sampler(self, tmp_path):
        path = tmp_path / "series.jsonl"
        db = Database(EngineConfig(
            background_merge=False, obs_sample_interval=0.02,
            obs_sample_path=str(path)))
        table = db.create_table("sampled", 2)
        table.insert([1, 2])
        assert db._sampler is not None and db._sampler.running
        db.close()
        assert not db._sampler.running
        lines = _read_lines(path)
        assert lines  # at least the final close() sample
        assert lines[-1]["metrics"]["write"]["inserts"] == 1

    def test_interval_none_means_no_sampler(self):
        db = Database(EngineConfig(background_merge=False))
        assert db._sampler is None
        db.close()

    def test_config_validates_interval(self):
        with pytest.raises(ValueError):
            EngineConfig(obs_sample_interval=-1.0)
