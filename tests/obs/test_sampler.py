"""Sampler tests: JSONL ticks, final sample, error resilience."""

from __future__ import annotations

import json
import time

import pytest

from repro import Database, EngineConfig
from repro.obs.sampler import MetricsSampler


def _read_lines(path) -> list[dict]:
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestMetricsSampler:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            MetricsSampler(dict, "unused.jsonl", 0)

    def test_stop_appends_final_sample(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        sampler = MetricsSampler(lambda: {"txn": {"commits": 5}},
                                 str(path), interval=60.0)
        sampler.start()
        assert sampler.running
        sampler.stop()
        assert not sampler.running
        lines = _read_lines(path)
        assert len(lines) == 1  # the stop() sample; no tick elapsed
        assert lines[0]["metrics"] == {"txn": {"commits": 5}}
        assert lines[0]["ts"] > 0

    def test_periodic_ticks(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        sampler = MetricsSampler(lambda: {"n": 1}, str(path),
                                 interval=0.02)
        sampler.start()
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            if path.exists() and len(_read_lines(path)) >= 2:
                break
            time.sleep(0.01)
        sampler.stop()
        assert len(_read_lines(path)) >= 2

    def test_snapshot_failure_becomes_error_line(self, tmp_path):
        path = tmp_path / "metrics.jsonl"

        def boom():
            raise RuntimeError("snapshot exploded")

        sampler = MetricsSampler(boom, str(path), interval=60.0)
        sampler.stop()  # takes the final sample without a thread
        lines = _read_lines(path)
        assert lines[0]["error"] == "RuntimeError: snapshot exploded"

    def test_snapshot_failures_are_counted(self, tmp_path):
        from repro.obs.registry import MetricsRegistry

        def boom():
            raise RuntimeError("snapshot exploded")

        registry = MetricsRegistry()
        sampler = MetricsSampler(boom, str(tmp_path / "m.jsonl"),
                                 interval=60.0, metrics=registry)
        sampler._sample()
        sampler._sample()
        assert registry.snapshot()["obs"]["sampler_errors"] == 2

    def test_repeated_errors_are_rate_limited(self, tmp_path):
        path = tmp_path / "m.jsonl"
        calls = []

        def boom():
            calls.append(1)
            raise RuntimeError("same error every tick")

        sampler = MetricsSampler(boom, str(path), interval=60.0)
        for _ in range(20):
            sampler._sample()
        lines = _read_lines(path)
        # 20 identical failures emit at repetitions 1, 2, 4, 8, 16.
        assert len(lines) == 5
        assert [line.get("repeats") for line in lines] == \
            [None, 2, 4, 8, 16]
        assert all(line["error"] == "RuntimeError: same error every tick"
                   for line in lines)

    def test_new_error_resets_the_rate_limit(self, tmp_path):
        path = tmp_path / "m.jsonl"
        errors = iter(["a", "a", "a", "b", "b"])

        def boom():
            raise RuntimeError(next(errors))

        sampler = MetricsSampler(boom, str(path), interval=60.0)
        for _ in range(5):
            sampler._sample()
        lines = _read_lines(path)
        # a(1), a(2), a(3 suppressed), b(1), b(2).
        assert [line["error"].split(": ")[1] for line in lines] == \
            ["a", "a", "b", "b"]

    def test_success_resets_the_rate_limit(self, tmp_path):
        path = tmp_path / "m.jsonl"
        outcomes = iter(["boom", "boom", "ok", "boom"])

        def snapshot():
            outcome = next(outcomes)
            if outcome == "boom":
                raise RuntimeError("boom")
            return {"n": 1}

        sampler = MetricsSampler(snapshot, str(path), interval=60.0)
        for _ in range(4):
            sampler._sample()
        lines = _read_lines(path)
        # boom(1), boom(2), metrics, boom(1 again: fresh line).
        assert "error" in lines[0] and "error" in lines[1]
        assert "metrics" in lines[2]
        assert "error" in lines[3] and "repeats" not in lines[3]

    def test_write_failure_kills_the_run_loop_for_supervision(
            self, tmp_path):
        """An unwritable path is a *sampler* crash, not a snapshot
        error: it propagates out of ``_sample`` so the supervisor's
        restart machinery (not the rate limiter) owns it."""
        sampler = MetricsSampler(lambda: {"n": 1},
                                 str(tmp_path / "no" / "dir" / "m.jsonl"),
                                 interval=60.0)
        with pytest.raises(OSError):
            sampler._sample()

    def test_supervised_start_restarts_after_a_crash(self, tmp_path):
        import os

        from repro.health import Supervisor

        path = tmp_path / "m.jsonl"
        os.makedirs(path)  # writes fail: the run loop itself crashes

        sampler = MetricsSampler(lambda: {"n": 1}, str(path),
                                 interval=0.005)
        supervisor = Supervisor(backoff_base=0.002, backoff_cap=0.01)
        sampler.start(supervisor=supervisor)
        try:
            service = supervisor.service("obs.sampler")
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if service.crash_count >= 1:
                    break
                time.sleep(0.005)
            assert service.crash_count >= 1
            os.rmdir(path)  # clear the fault: a restart now succeeds
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if path.exists() and _read_lines(path):
                    break
                time.sleep(0.005)
            assert _read_lines(path)
            assert sampler.running
            assert service.restart_count >= 1
        finally:
            sampler.stop()
            supervisor.stop_all()


class TestDatabaseIntegration:
    def test_config_starts_and_stops_sampler(self, tmp_path):
        path = tmp_path / "series.jsonl"
        db = Database(EngineConfig(
            background_merge=False, obs_sample_interval=0.02,
            obs_sample_path=str(path)))
        table = db.create_table("sampled", 2)
        table.insert([1, 2])
        assert db._sampler is not None and db._sampler.running
        db.close()
        assert not db._sampler.running
        lines = _read_lines(path)
        assert lines  # at least the final close() sample
        assert lines[-1]["metrics"]["write"]["inserts"] == 1

    def test_interval_none_means_no_sampler(self):
        db = Database(EngineConfig(background_merge=False))
        assert db._sampler is None
        db.close()

    def test_config_validates_interval(self):
        with pytest.raises(ValueError):
            EngineConfig(obs_sample_interval=-1.0)
