"""Prometheus renderer tests, including an exposition-format parser.

The acceptance bar is "``render_text`` output parses as Prometheus
exposition format": ``_parse_exposition`` below implements the format's
line grammar (HELP/TYPE comments, ``name{labels} value`` samples) and
every test pushes the rendered text through it.
"""

from __future__ import annotations

import re

from repro.obs.registry import MetricsRegistry
from repro.obs.render import render_text

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$")
_LABEL = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def _parse_exposition(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse exposition text; raise AssertionError on any bad line."""
    samples: dict[str, list[tuple[dict, float]]] = {}
    typed: dict[str, str] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            assert len(parts) >= 3, line
            assert _METRIC_NAME.match(parts[2]), line
            if parts[1] == "TYPE":
                assert parts[3] in ("counter", "gauge", "histogram"), line
                typed[parts[2]] = parts[3]
            continue
        assert not line.startswith("#"), "unknown comment: %r" % line
        match = _SAMPLE.match(line)
        assert match, "unparseable sample line: %r" % line
        labels: dict[str, str] = {}
        if match.group("labels"):
            for pair in match.group("labels").split(","):
                label_match = _LABEL.match(pair)
                assert label_match, "bad label pair: %r" % pair
                labels[label_match.group(1)] = label_match.group(2)
        value = float(match.group("value").replace("+Inf", "inf"))
        samples.setdefault(match.group("name"), []).append((labels, value))
    assert typed, "no TYPE lines found"
    return samples


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("txn.commits", help="Committed transactions").add(7)
    registry.counter("write.inserts", labels={"table": "a"}).add(2)
    registry.counter("write.inserts", labels={"table": "b"}).add(3)
    registry.gauge("merge.backlog").set(4)
    hist = registry.histogram("txn.commit_seconds", bounds=(0.001, 0.01),
                              unit="seconds")
    hist.observe(0.0005)
    hist.observe(0.5)
    return registry


class TestRenderText:
    def test_output_parses_as_exposition_format(self):
        samples = _parse_exposition(render_text(_registry()))
        assert samples["lstore_txn_commits_total"] == [({}, 7.0)]
        assert samples["lstore_merge_backlog"] == [({}, 4.0)]

    def test_counters_keep_label_series_unaggregated(self):
        samples = _parse_exposition(render_text(_registry()))
        series = dict((frozenset(labels.items()), value)
                      for labels, value in
                      samples["lstore_write_inserts_total"])
        assert series[frozenset({("table", "a")})] == 2.0
        assert series[frozenset({("table", "b")})] == 3.0

    def test_histogram_convention(self):
        samples = _parse_exposition(render_text(_registry()))
        buckets = samples["lstore_txn_commit_seconds_bucket"]
        les = [labels["le"] for labels, _ in buckets]
        assert les == ["0.001", "0.01", "+Inf"]
        counts = [value for _, value in buckets]
        assert counts == [1.0, 1.0, 2.0]  # cumulative
        assert samples["lstore_txn_commit_seconds_count"] == [({}, 2.0)]
        (_, total), = samples["lstore_txn_commit_seconds_sum"]
        assert abs(total - 0.5005) < 1e-9

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x.c", labels={"table": 'we"ird\\n'}).add()
        samples = _parse_exposition(render_text(registry))
        (labels, value), = samples["lstore_x_c_total"]
        assert value == 1.0

    def test_accepts_database_like_source(self):
        class Holder:
            metrics_registry = _registry()

        text = render_text(Holder())
        assert "lstore_txn_commits_total 7" in text

    def test_empty_registry_renders_empty(self):
        assert render_text(MetricsRegistry()) == ""

    def test_live_database_renders_cleanly(self, db):
        table = db.create_table("rendered", 3)
        query = db.query("rendered")
        for key in range(24):
            query.insert(key, key, key)
        query.scan_sum(1)
        samples = _parse_exposition(db.render_metrics())
        (labels, inserts), = samples["lstore_write_inserts_total"]
        assert labels == {"table": "rendered"}
        assert inserts == 24.0
