"""Registry unit tests: striping, bucket edges, snapshot consistency."""

from __future__ import annotations

import threading

import pytest

from repro.obs.registry import (LATENCY_BUCKETS, NULL_COUNTER, NULL_GAUGE,
                                NULL_HISTOGRAM, Counter, CounterStat,
                                GaugeStat, Histogram, MetricsRegistry,
                                SIZE_BUCKETS)


class TestCounter:
    def test_add_and_value(self):
        counter = Counter("t.x")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_set_resets_all_cells(self):
        counter = Counter("t.x")
        counter.add(10)
        counter.set(3)
        assert counter.value == 3
        counter.add()
        assert counter.value == 4

    def test_striped_under_threads(self):
        """N threads hammering one counter lose no increments."""
        counter = Counter("t.x")
        threads, per_thread = 8, 5000
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                counter.add()

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert counter.value == threads * per_thread

    def test_snapshot_mid_increment_is_monotone(self):
        """A fold racing writers never exceeds the final exact total."""
        counter = Counter("t.x")
        per_thread = 20000
        seen: list[int] = []
        done = threading.Event()

        def writer():
            for _ in range(per_thread):
                counter.add()
            done.set()

        def reader():
            while not done.is_set():
                seen.append(counter.value)

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        final = counter.value
        assert final == per_thread
        assert all(0 <= value <= final for value in seen)
        assert seen == sorted(seen)  # monotone: no decrements observed


class TestHistogram:
    def test_bucket_edges_land_in_their_own_bucket(self):
        """bisect_left: an observation equal to a bound counts <= it."""
        hist = Histogram("t.h", bounds=(1.0, 2.0, 4.0))
        for value in (1.0, 2.0, 4.0):
            hist.observe(value)
        snapshot = hist.snapshot_value()
        # Cumulative counts at each upper bound.
        assert snapshot["buckets"] == [[1.0, 1], [2.0, 2], [4.0, 3],
                                       ["inf", 3]]

    def test_overflow_goes_to_inf_bucket(self):
        hist = Histogram("t.h", bounds=(1.0, 2.0))
        hist.observe(100.0)
        snapshot = hist.snapshot_value()
        assert snapshot["buckets"][-1] == ["inf", 1]
        assert snapshot["max"] == 100.0

    def test_count_sum_percentiles(self):
        hist = Histogram("t.h", bounds=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 1.5, 3.0, 7.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(12.0)
        assert hist.percentile(0.5) == 2.0  # bucket upper bound
        assert hist.percentile(1.0) == 8.0

    def test_empty_histogram(self):
        hist = Histogram("t.h", bounds=(1.0,))
        assert hist.count == 0
        assert hist.percentile(0.99) == 0.0
        assert hist.snapshot_value()["count"] == 0

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("t.h", bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("t.h", bounds=())

    def test_striped_under_threads(self):
        hist = Histogram("t.h", bounds=LATENCY_BUCKETS)
        threads, per_thread = 4, 2000
        barrier = threading.Barrier(threads)

        def hammer(seed: int):
            barrier.wait()
            for index in range(per_thread):
                hist.observe(1e-6 * ((seed + index) % 50 + 1))

        workers = [threading.Thread(target=hammer, args=(n,))
                   for n in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert hist.count == threads * per_thread

    def test_default_bucket_families(self):
        assert LATENCY_BUCKETS[0] == 1e-6
        assert all(b2 == 2 * b1 for b1, b2 in
                   zip(LATENCY_BUCKETS, LATENCY_BUCKETS[1:]))
        assert SIZE_BUCKETS[0] == 1.0
        assert SIZE_BUCKETS[-1] == float(2 ** 20)


class TestRegistry:
    def test_get_or_create_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a.x") is registry.counter("a.x")
        assert registry.counter("a.x") is not registry.counter(
            "a.x", labels={"table": "t"})

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a.x")
        with pytest.raises(ValueError):
            registry.gauge("a.x")

    def test_disabled_registry_hands_out_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a.x") is NULL_COUNTER
        assert registry.gauge("a.g") is NULL_GAUGE
        assert registry.histogram("a.h") is NULL_HISTOGRAM
        registry.counter("a.x").add()
        registry.histogram("a.h").observe(1.0)
        assert registry.snapshot() == {}
        assert not registry.counter("a.x").enabled

    def test_snapshot_nests_by_domain(self):
        registry = MetricsRegistry()
        registry.counter("txn.commits").add(3)
        registry.gauge("merge.backlog").set(7)
        registry.counter("bare").add()
        snapshot = registry.snapshot()
        assert snapshot["txn"]["commits"] == 3
        assert snapshot["merge"]["backlog"] == 7
        assert snapshot["engine"]["bare"] == 1

    def test_snapshot_aggregates_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("write.inserts", labels={"table": "a"}).add(2)
        registry.counter("write.inserts", labels={"table": "b"}).add(5)
        assert registry.snapshot()["write"]["inserts"] == 7

    def test_snapshot_merges_histogram_label_sets(self):
        registry = MetricsRegistry()
        registry.histogram("w.lat", bounds=(1.0, 2.0),
                           labels={"table": "a"}).observe(0.5)
        registry.histogram("w.lat", bounds=(1.0, 2.0),
                           labels={"table": "b"}).observe(1.5)
        merged = registry.snapshot()["w"]["lat"]
        assert merged["count"] == 2
        assert merged["buckets"] == [[1.0, 1], [2.0, 2], ["inf", 2]]

    def test_callback_gauge_evaluates_at_snapshot(self):
        registry = MetricsRegistry()
        depth = [0]
        registry.gauge("q.depth", lambda: depth[0])
        depth[0] = 42
        assert registry.snapshot()["q"]["depth"] == 42


class TestDescriptors:
    class _Holder:
        stat_things = CounterStat("_stat_things")
        stat_level = GaugeStat("_stat_level")

        def __init__(self):
            registry = MetricsRegistry()
            self._stat_things = registry.counter("x.things")
            self._stat_level = registry.gauge("x.level")

    def test_counter_read_write_and_augmented_assign(self):
        holder = self._Holder()
        holder._stat_things.add(2)
        assert holder.stat_things == 2
        holder.stat_things += 1  # fold + absolute reset
        assert holder.stat_things == 3
        holder.stat_things = 0
        assert holder.stat_things == 0

    def test_gauge_read_write(self):
        holder = self._Holder()
        holder.stat_level = 9
        assert holder.stat_level == 9
