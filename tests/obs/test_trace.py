"""Trace collector tests: zero-cost off, bounded ring on."""

from __future__ import annotations

import pytest

from repro.obs.trace import (_NULL_SPAN, TRACE, disable_tracing,
                             enable_tracing, span, trace_event)


@pytest.fixture(autouse=True)
def clean_collector():
    """Leave the process-wide collector the way each test found it."""
    was_enabled = TRACE.enabled
    TRACE.drain()
    yield
    TRACE.drain()
    TRACE.enabled = was_enabled


class TestDisabled:
    def test_span_returns_shared_null_span(self):
        disable_tracing()
        assert span("merge.range", range_id=1) is _NULL_SPAN
        assert span("wal.drain") is span("scan.execute")

    def test_null_span_records_nothing(self):
        disable_tracing()
        with span("merge.range") as live:
            live.set(extra=1)
        trace_event("merge.enqueued")
        assert len(TRACE) == 0


class TestEnabled:
    def test_span_records_name_duration_attrs(self):
        enable_tracing()
        with span("merge.range", range_id=3, kind="update"):
            pass
        finished = TRACE.drain()
        assert len(finished) == 1
        record = finished[0]
        assert record["name"] == "merge.range"
        assert record["duration"] >= 0.0
        assert record["attrs"] == {"range_id": 3, "kind": "update"}

    def test_span_set_attaches_mid_span_attrs(self):
        enable_tracing()
        with span("scan.execute") as live:
            live.set(partitions=4)
        assert TRACE.drain()[0]["attrs"] == {"partitions": 4}

    def test_exception_marks_error_and_propagates(self):
        enable_tracing()
        with pytest.raises(RuntimeError):
            with span("wal.drain"):
                raise RuntimeError("disk on fire")
        record = TRACE.drain()[0]
        assert record["attrs"]["error"] == "RuntimeError"

    def test_event_has_zero_duration(self):
        enable_tracing()
        trace_event("merge.enqueued", range_id=1)
        record = TRACE.drain()[0]
        assert record["duration"] == 0.0
        assert record["attrs"] == {"range_id": 1}

    def test_ring_is_bounded(self):
        enable_tracing(capacity=8)
        for index in range(20):
            trace_event("tick", index=index)
        finished = TRACE.drain()
        assert len(finished) == 8
        assert finished[0]["attrs"]["index"] == 12  # oldest dropped
        enable_tracing(capacity=4096)  # restore default capacity

    def test_engine_spans_flow_into_collector(self, db):
        """A merge + scan under tracing leaves engine spans behind."""
        enable_tracing()
        table = db.create_table("traced", 3)
        query = db.query("traced")
        for key in range(32):
            query.insert(key, key, key)
        for key in range(16):
            query.update(key, None, 1, None)
        db.run_merges()
        query.scan_sum(1)
        names = {record["name"] for record in TRACE.drain()}
        assert "merge.range" in names
