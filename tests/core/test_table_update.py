"""Update/delete procedure (Section 3.1): tails, snapshots, cumulation."""

import pytest

from repro.core.encoding import SchemaEncoding
from repro.core.schema import (INDIRECTION_COLUMN, SCHEMA_ENCODING_COLUMN,
                               START_TIME_COLUMN)
from repro.core.table import DELETED
from repro.core.types import NULL, NULL_RID, is_tail_rid
from repro.errors import (RecordDeletedError, SchemaMismatchError,
                          WriteWriteConflict)


def _tail_record(table, rid, tail_rid):
    """(segment, offset) of a tail record for inspection."""
    update_range, _ = table.locate(rid)
    return update_range.locate_tail(tail_rid)


class TestFirstUpdate:
    def test_creates_snapshot_plus_update(self, table):
        rid = table.insert([1, 10, 20, 30, 40])
        table.update(rid, {1: 11})
        update_range, offset = table.locate(rid)
        tail = update_range.tail
        assert tail is not None
        # Two tail records: the original-value snapshot, then the update.
        assert tail.num_allocated() == 2
        snap_enc = SchemaEncoding.from_int(
            5, tail.record_cell(0, SCHEMA_ENCODING_COLUMN))
        assert snap_enc.is_snapshot
        assert list(snap_enc.updated_columns()) == [1]
        upd_enc = SchemaEncoding.from_int(
            5, tail.record_cell(1, SCHEMA_ENCODING_COLUMN))
        assert not upd_enc.is_snapshot
        assert list(upd_enc.updated_columns()) == [1]

    def test_snapshot_holds_original_value(self, table):
        rid = table.insert([1, 10, 20, 30, 40])
        table.update(rid, {1: 11})
        update_range, _ = table.locate(rid)
        tail = update_range.tail
        assert tail.record_cell(0, table.schema.physical_index(1)) == 10

    def test_snapshot_start_time_is_original(self, table):
        # Paper Table 2: t1's start time equals b2's insertion time.
        rid = table.insert([1, 10, 20, 30, 40])
        update_range, offset = table.locate(rid)
        segment = update_range.insert_range.segment
        insert_time = segment.record_cell(update_range.insert_offset(offset),
                                          START_TIME_COLUMN)
        table.update(rid, {1: 11})
        assert update_range.tail.record_cell(0, START_TIME_COLUMN) \
            == insert_time

    def test_backpointers(self, table):
        # Snapshot points at the base record; update points at snapshot.
        rid = table.insert([1, 10, 20, 30, 40])
        table.update(rid, {1: 11})
        update_range, offset = table.locate(rid)
        tail = update_range.tail
        assert tail.record_cell(0, INDIRECTION_COLUMN) == rid
        assert tail.record_cell(1, INDIRECTION_COLUMN) == tail.rid_at(0)
        assert update_range.indirection.read(offset) == tail.rid_at(1)

    def test_lazy_tail_allocation(self, table):
        rid = table.insert([1, 10, 20, 30, 40])
        update_range, _ = table.locate(rid)
        assert update_range.tail is None  # no update yet (Section 3.1)
        table.update(rid, {1: 11})
        assert update_range.tail is not None


class TestSubsequentUpdates:
    def test_single_record_per_update(self, table):
        rid = table.insert([1, 10, 20, 30, 40])
        table.update(rid, {1: 11})
        count = table.locate(rid)[0].tail.num_allocated()
        table.update(rid, {1: 12})
        assert table.locate(rid)[0].tail.num_allocated() == count + 1

    def test_first_update_of_second_column_snapshots_it(self, table):
        # Paper Table 2: updating C after A produced t4 (snapshot) + t5.
        rid = table.insert([1, 10, 20, 30, 40])
        table.update(rid, {1: 11})
        before = table.locate(rid)[0].tail.num_allocated()
        table.update(rid, {3: 31})
        tail = table.locate(rid)[0].tail
        assert tail.num_allocated() == before + 2
        snap_enc = SchemaEncoding.from_int(
            5, tail.record_cell(before, SCHEMA_ENCODING_COLUMN))
        assert snap_enc.is_snapshot
        assert list(snap_enc.updated_columns()) == [3]

    def test_read_latest_after_updates(self, table):
        rid = table.insert([1, 10, 20, 30, 40])
        table.update(rid, {1: 11})
        table.update(rid, {3: 31})
        assert table.read_latest(rid) == {0: 1, 1: 11, 2: 20, 3: 31, 4: 40}


class TestCumulativeUpdates:
    def test_cumulative_record_repeats_prior_columns(self, table):
        # Paper Table 2: t5 repeats A=a22 while adding C=c21.
        rid = table.insert([1, 10, 20, 30, 40])
        table.update(rid, {1: 11})
        table.update(rid, {3: 31})
        update_range, offset = table.locate(rid)
        tail = update_range.tail
        latest = update_range.indirection.read(offset)
        _, tail_offset = update_range.locate_tail(latest)
        encoding = SchemaEncoding.from_int(
            5, tail.record_cell(tail_offset, SCHEMA_ENCODING_COLUMN))
        assert sorted(encoding.updated_columns()) == [1, 3]
        assert tail.record_cell(tail_offset,
                                table.schema.physical_index(1)) == 11

    def test_two_hop_read(self, table):
        # Latest read touches the base record plus one tail record.
        rid = table.insert([1, 10, 20, 30, 40])
        for i in range(5):
            table.update(rid, {1: 100 + i})
        values = table.read_latest_fast(rid, (1, 2))
        assert values == {1: 104, 2: 20}


class TestNonCumulativeUpdates:
    @pytest.fixture
    def nc_table(self, db, config):
        nc_config = config.with_overrides(cumulative_updates=False)
        return db.create_table("nc", 5, 0, config=nc_config)

    def test_records_hold_only_changed_column(self, nc_table):
        rid = nc_table.insert([1, 10, 20, 30, 40])
        nc_table.update(rid, {1: 11})
        nc_table.update(rid, {3: 31})
        update_range, offset = nc_table.locate(rid)
        latest = update_range.indirection.read(offset)
        _, tail_offset = update_range.locate_tail(latest)
        encoding = SchemaEncoding.from_int(
            5, update_range.tail.record_cell(tail_offset,
                                             SCHEMA_ENCODING_COLUMN))
        assert list(encoding.updated_columns()) == [3]

    def test_reader_walks_back_chain(self, nc_table):
        # "readers are simply forced to walk back the chain" (§3.1).
        rid = nc_table.insert([1, 10, 20, 30, 40])
        nc_table.update(rid, {1: 11})
        nc_table.update(rid, {3: 31})
        assert nc_table.read_latest(rid) == {0: 1, 1: 11, 2: 20, 3: 31,
                                             4: 40}
        assert nc_table.read_latest_fast(rid) == {0: 1, 1: 11, 2: 20,
                                                  3: 31, 4: 40}


class TestDelete:
    def test_delete_appends_empty_encoding_record(self, table):
        table.snapshot_on_delete = False
        rid = table.insert([1, 10, 20, 30, 40])
        table.delete(rid)
        update_range, offset = table.locate(rid)
        tail = update_range.tail
        assert tail.num_allocated() == 1
        encoding = SchemaEncoding.from_int(
            5, tail.record_cell(0, SCHEMA_ENCODING_COLUMN))
        assert not encoding.any_updated and not encoding.is_snapshot
        assert tail.record_cell(0, table.schema.physical_index(1)) is NULL

    def test_delete_with_snapshot_preserves_originals(self, table):
        rid = table.insert([1, 10, 20, 30, 40])
        table.delete(rid)
        update_range, _ = table.locate(rid)
        tail = update_range.tail
        # snapshot record first, then the delete record
        assert tail.num_allocated() == 2
        snap_enc = SchemaEncoding.from_int(
            5, tail.record_cell(0, SCHEMA_ENCODING_COLUMN))
        assert snap_enc.is_snapshot
        assert tail.record_cell(0, table.schema.physical_index(1)) == 10

    def test_read_after_delete(self, table):
        rid = table.insert([1, 10, 20, 30, 40])
        table.delete(rid)
        assert table.read_latest(rid) is DELETED
        assert table.read_latest_fast(rid) is DELETED

    def test_double_delete_rejected(self, table):
        rid = table.insert([1, 10, 20, 30, 40])
        table.delete(rid)
        with pytest.raises(RecordDeletedError):
            table.delete(rid)

    def test_update_after_delete_rejected(self, table):
        rid = table.insert([1, 10, 20, 30, 40])
        table.delete(rid)
        with pytest.raises(RecordDeletedError):
            table.update(rid, {1: 5})


class TestUpdateValidation:
    def test_empty_update_rejected(self, table):
        rid = table.insert([1, 10, 20, 30, 40])
        with pytest.raises(SchemaMismatchError):
            table.update(rid, {})

    def test_primary_key_update_rejected(self, table):
        rid = table.insert([1, 10, 20, 30, 40])
        with pytest.raises(SchemaMismatchError):
            table.update(rid, {0: 2})

    def test_out_of_range_column(self, table):
        rid = table.insert([1, 10, 20, 30, 40])
        with pytest.raises(SchemaMismatchError):
            table.update(rid, {9: 1})

    def test_latched_record_conflicts(self, table):
        rid = table.insert([1, 10, 20, 30, 40])
        assert table.try_latch(rid)
        with pytest.raises(WriteWriteConflict):
            table.update(rid, {1: 5})
        table.unlatch(rid)
        table.update(rid, {1: 5})  # succeeds once released


class TestWriteOnceTails:
    def test_tail_cells_never_overwritten(self, table):
        from repro.errors import PageImmutableError
        rid = table.insert([1, 10, 20, 30, 40])
        table.update(rid, {1: 11})
        update_range, _ = table.locate(rid)
        tail = update_range.tail
        with pytest.raises(PageImmutableError):
            tail.write_cell(0, SCHEMA_ENCODING_COLUMN, 0)
