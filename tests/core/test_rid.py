"""RID allocation: ascending base ranges, descending tail blocks."""

import threading

import pytest

from repro.core.rid import MonotonicCounter, RIDAllocator, TailBlock
from repro.core.types import TAIL_RID_MAX, is_base_rid, is_tail_rid
from repro.errors import StorageError


class TestRIDAllocator:
    def test_base_ranges_ascend_contiguously(self):
        allocator = RIDAllocator()
        first = allocator.reserve_base_range(100)
        second = allocator.reserve_base_range(50)
        assert first == 1
        assert second == 101
        assert allocator.base_rids_allocated == 150

    def test_tail_blocks_descend(self):
        allocator = RIDAllocator()
        block_a = allocator.reserve_tail_block(10)
        block_b = allocator.reserve_tail_block(10)
        assert block_a.start_rid == TAIL_RID_MAX
        assert block_b.start_rid == TAIL_RID_MAX - 10
        assert allocator.tail_rids_allocated == 20

    def test_all_rids_in_correct_space(self):
        allocator = RIDAllocator()
        base = allocator.reserve_base_range(5)
        block = allocator.reserve_tail_block(5)
        for i in range(5):
            assert is_base_rid(base + i)
            rid = block.allocate()
            assert rid is not None and is_tail_rid(rid)

    def test_size_validation(self):
        allocator = RIDAllocator()
        with pytest.raises(ValueError):
            allocator.reserve_base_range(0)
        with pytest.raises(ValueError):
            allocator.reserve_tail_block(-1)

    def test_advance_cursors(self):
        allocator = RIDAllocator()
        allocator.advance_base_to(1000)
        assert allocator.reserve_base_range(1) == 1000
        allocator.advance_tail_below(TAIL_RID_MAX - 500)
        assert allocator.reserve_tail_block(1).start_rid \
            == TAIL_RID_MAX - 500

    def test_advance_never_regresses(self):
        allocator = RIDAllocator()
        allocator.advance_base_to(100)
        allocator.advance_base_to(50)
        assert allocator.reserve_base_range(1) == 100

    def test_concurrent_base_reservations_disjoint(self):
        allocator = RIDAllocator()
        results = []
        lock = threading.Lock()

        def worker():
            for _ in range(50):
                start = allocator.reserve_base_range(10)
                with lock:
                    results.append(start)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        starts = sorted(results)
        for a, b in zip(starts, starts[1:]):
            assert b - a >= 10  # ranges never overlap


class TestTailBlock:
    def test_allocation_descends_offsets_ascend(self):
        block = TailBlock(start_rid=1000, size=3)
        rids = [block.allocate() for _ in range(3)]
        assert rids == [1000, 999, 998]
        assert [block.offset_of(rid) for rid in rids] == [0, 1, 2]

    def test_exhaustion(self):
        block = TailBlock(start_rid=10, size=1)
        assert block.allocate() == 10
        assert block.allocate() is None
        assert block.exhausted

    def test_contains(self):
        block = TailBlock(start_rid=100, size=10)
        assert block.contains(100)
        assert block.contains(91)
        assert not block.contains(90)
        assert not block.contains(101)

    def test_rid_at_inverse_of_offset_of(self):
        block = TailBlock(start_rid=500, size=8)
        for offset in range(8):
            assert block.offset_of(block.rid_at(offset)) == offset

    def test_offset_of_outside_raises(self):
        block = TailBlock(start_rid=500, size=8)
        with pytest.raises(ValueError):
            block.offset_of(501)
        with pytest.raises(ValueError):
            block.rid_at(8)

    def test_concurrent_allocation_unique(self):
        block = TailBlock(start_rid=10_000, size=400)
        seen = []
        lock = threading.Lock()

        def worker():
            while True:
                rid = block.allocate()
                if rid is None:
                    return
                with lock:
                    seen.append(rid)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(seen) == 400
        assert len(set(seen)) == 400


class TestMonotonicCounter:
    def test_sequence(self):
        counter = MonotonicCounter()
        assert [counter.next() for _ in range(3)] == [0, 1, 2]
        assert counter.last == 2

    def test_start(self):
        counter = MonotonicCounter(10)
        assert counter.next() == 10

    def test_thread_safety(self):
        counter = MonotonicCounter()
        seen = []
        lock = threading.Lock()

        def worker():
            for _ in range(200):
                value = counter.next()
                with lock:
                    seen.append(value)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(seen)) == 800
