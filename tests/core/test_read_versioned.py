"""The version-stamped single-walk read (tracked OCC reads)."""

import pytest

from repro.core.table import DELETED
from repro.core.version import visible_as_of
from repro.errors import KeyNotFoundError
from repro.txn.occ import occ_write


class TestReadVersioned:
    def _check_agrees(self, table, rid, predicate=None, columns=None):
        """(version, values) must match the two classic walks."""
        version_rid, values = table.read_versioned(rid, columns, predicate)
        from repro.core.version import visible_latest_committed
        effective = predicate if predicate is not None \
            else visible_latest_committed
        assert version_rid == table.visible_version_rid(rid, effective)
        expected = table.read_latest(rid, columns, predicate)
        assert values == expected
        return version_rid, values

    def test_base_only(self, db, table):
        rid = table.insert([1, 10, 20, 30, 40])
        version_rid, values = self._check_agrees(table, rid, columns=(1, 3))
        assert version_rid == rid
        assert values == {1: 10, 3: 30}

    def test_after_updates(self, db, table):
        rid = table.insert([1, 10, 20, 30, 40])
        table.update(rid, {1: 11})
        tail = table.update(rid, {3: 33})
        version_rid, values = self._check_agrees(table, rid,
                                                 columns=(1, 2, 3))
        assert version_rid == tail
        assert values == {1: 11, 2: 20, 3: 33}

    def test_after_merge(self, db, table, config):
        for key in range(config.update_range_size):
            table.insert([key, key, 0, 0, 0])
        db.run_merges()
        rid = table.index.primary.get(3)
        tail = table.update(rid, {1: 1000})
        from repro.core.merge import merge_update_range
        merge_update_range(table, table.ranges[0])
        version_rid, values = self._check_agrees(table, rid, columns=(1, 2))
        assert version_rid == tail
        assert values == {1: 1000, 2: 0}

    def test_deleted(self, db, table):
        rid = table.insert([1, 10, 20, 30, 40])
        tail = table.delete(rid)
        version_rid, values = table.read_versioned(rid, (1,))
        assert version_rid == tail
        assert values is DELETED

    def test_uncommitted_head_is_skipped(self, db, table):
        rid = table.insert([1, 10, 20, 30, 40])
        committed_tail = table.update(rid, {1: 11})
        txn = db.begin_transaction()
        occ_write(txn.ctx, table, rid, {1: 999})
        version_rid, values = self._check_agrees(table, rid, columns=(1,))
        assert version_rid == committed_tail
        assert values == {1: 11}
        txn.abort()

    def test_no_visible_version(self, db, table):
        as_of_before = table.clock.now()
        rid = table.insert([1, 10, 20, 30, 40])
        version_rid, values = table.read_versioned(
            rid, (1,), visible_as_of(as_of_before))
        assert version_rid is None
        assert values is None

    def test_as_of_snapshot(self, db, table):
        rid = table.insert([1, 10, 20, 30, 40])
        as_of = table.clock.now()
        table.update(rid, {1: 999})
        version_rid, values = self._check_agrees(
            table, rid, predicate=visible_as_of(as_of), columns=(1, 2))
        assert version_rid == rid
        assert values == {1: 10, 2: 20}

    def test_missing_record_raises(self, db, table):
        table.insert([1, 10, 20, 30, 40])
        with pytest.raises(KeyNotFoundError):
            table.read_versioned(7, (1,))


class TestScanRecordsBatched:
    def test_batched_agrees_with_per_record(self, config):
        """Batched scan_records == per-record path, state for state."""
        from repro import Database

        def build(database):
            table = database.create_table("t", num_columns=5)
            for key in range(40):
                table.insert([key, key * 10, key % 3, 0, 7])
            database.run_merges()
            for key in range(0, 40, 4):
                table.update(table.index.primary.get(key), {1: key})
            for key in range(0, 40, 10):
                table.delete(table.index.primary.get(key))
            return table

        with Database(config) as batched_db, \
                Database(config.with_overrides(
                    batched_reads=False)) as plain_db:
            batched = list(build(batched_db).scan_records((0, 1, 2)))
            plain = list(build(plain_db).scan_records((0, 1, 2)))
            assert batched == plain

    def test_predicate_path_unchanged(self, db, table):
        for key in range(20):
            table.insert([key, key, 0, 0, 0])
        as_of = table.clock.now()
        for key in range(20):
            table.update(table.index.primary.get(key), {1: 1000})
        rows = list(table.scan_records((1,), visible_as_of(as_of)))
        assert [values[1] for _, values in rows] == list(range(20))
