"""Insert procedure (Section 3.2): insert ranges, table-level tails."""

import pytest

from repro.core.schema import (BASE_RID_COLUMN, INDIRECTION_COLUMN,
                               START_TIME_COLUMN)
from repro.core.table import DELETED
from repro.core.types import NULL_RID
from repro.errors import DuplicateKeyError, KeyNotFoundError


class TestInsertBasics:
    def test_insert_returns_stable_ascending_rids(self, table):
        rids = [table.insert([k, 0, 0, 0, 0]) for k in range(5)]
        assert rids == sorted(rids)
        assert len(set(rids)) == 5

    def test_primary_index_updated(self, table):
        rid = table.insert([42, 1, 2, 3, 4])
        assert table.index.primary.get(42) == rid

    def test_duplicate_key_rejected(self, table):
        table.insert([42, 0, 0, 0, 0])
        with pytest.raises(DuplicateKeyError):
            table.insert([42, 1, 1, 1, 1])

    def test_read_back(self, table):
        rid = table.insert([42, 1, 2, 3, 4])
        values = table.read_latest(rid)
        assert values == {0: 42, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_row_width_validated(self, table):
        with pytest.raises(Exception):
            table.insert([1, 2])

    def test_record_count(self, table):
        for k in range(3):
            table.insert([k, 0, 0, 0, 0])
        assert table.num_records == 3


class TestInsertRangeMechanics:
    def test_data_lives_in_table_level_tails_before_merge(self, table):
        rid = table.insert([7, 1, 2, 3, 4])
        update_range, offset = table.locate(rid)
        assert not update_range.merged
        segment = update_range.insert_range.segment
        insert_offset = update_range.insert_offset(offset)
        # The paper's Table 3: the tt record holds all columns...
        assert segment.record_cell(insert_offset, BASE_RID_COLUMN) == rid
        # ...while the base record materialises only the Indirection.
        assert update_range.indirection.read(offset) == NULL_RID

    def test_aligned_rid_spaces(self, table, config):
        rids = [table.insert([k, 0, 0, 0, 0])
                for k in range(config.insert_range_size)]
        update_range, _ = table.locate(rids[0])
        segment = update_range.insert_range.segment
        # i-th base RID ↔ i-th table-level tail slot (Section 3.2).
        for i, rid in enumerate(rids[:config.update_range_size]):
            assert segment.record_cell(i, BASE_RID_COLUMN) == rid

    def test_new_insert_range_created_when_full(self, table, config):
        total = config.insert_range_size + 1
        for k in range(total):
            table.insert([k, 0, 0, 0, 0])
        assert len(table.insert_ranges) == 2

    def test_all_covering_update_ranges_created(self, table, config):
        table.insert([0, 0, 0, 0, 0])
        expected = config.insert_range_size // config.update_range_size
        assert len(table.ranges) == expected

    def test_start_time_recorded(self, table):
        before = table.clock.now()
        rid = table.insert([1, 0, 0, 0, 0])
        update_range, offset = table.locate(rid)
        segment = update_range.insert_range.segment
        start = segment.record_cell(update_range.insert_offset(offset),
                                    START_TIME_COLUMN)
        assert start > before


class TestReinsertAfterDelete:
    def test_reinsert_same_key(self, table):
        old_rid = table.insert([5, 1, 1, 1, 1])
        table.delete(old_rid)
        new_rid = table.insert([5, 2, 2, 2, 2])
        assert new_rid != old_rid
        assert table.index.primary.get(5) == new_rid
        assert table.read_latest(new_rid)[1] == 2

    def test_reinsert_live_key_rejected(self, table):
        table.insert([5, 1, 1, 1, 1])
        with pytest.raises(DuplicateKeyError):
            table.insert([5, 2, 2, 2, 2])

    def test_old_rid_still_reads_deleted(self, table):
        old_rid = table.insert([5, 1, 1, 1, 1])
        table.delete(old_rid)
        table.insert([5, 2, 2, 2, 2])
        assert table.read_latest(old_rid) is DELETED


class TestLocate:
    def test_unallocated_rid(self, table):
        with pytest.raises(KeyNotFoundError):
            table.locate(999999)

    def test_non_base_rid(self, table):
        from repro.errors import StorageError
        with pytest.raises(StorageError):
            table.locate(0)
