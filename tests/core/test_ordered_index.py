"""Ordered indexes: range reads must match brute-force filtering.

The ordered primary/secondary indexes keep a lazily compacted sorted
array next to the hash map; these properties drive random interleavings
of inserts, replaces, removes and range queries (so compaction,
pending buffers and stale-key tombstones all get exercised mid-stream)
and check every range result against a model dict.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EngineConfig
from repro.core.index import (IndexManager, OrderedPrimaryIndex,
                              PrimaryIndex, SecondaryIndex)
from repro.core.schema import TableSchema
from repro.errors import DuplicateKeyError

KEYS = st.integers(min_value=0, max_value=40)

primary_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), KEYS, st.integers(1, 10_000)),
        st.tuples(st.just("replace"), KEYS, st.integers(1, 10_000)),
        st.tuples(st.just("remove"), KEYS, st.just(0)),
        st.tuples(st.just("range"), KEYS, KEYS),
    ),
    max_size=300,
)


class TestOrderedPrimaryIndexProperty:
    @settings(max_examples=200, deadline=None)
    @given(ops=primary_ops, low=KEYS, high=KEYS)
    def test_range_items_matches_brute_force(self, ops, low, high):
        index = OrderedPrimaryIndex()
        model = {}
        for op, a, b in ops:
            if op == "insert":
                if a in model:
                    with pytest.raises(DuplicateKeyError):
                        index.insert(a, b)
                else:
                    index.insert(a, b)
                    model[a] = b
            elif op == "replace":
                index.replace(a, b)
                model[a] = b
            elif op == "remove":
                index.remove(a)
                model.pop(a, None)
            else:  # interleaved range query: forces mid-stream compaction
                expected = sorted((key, rid) for key, rid in model.items()
                                  if a <= key <= b)
                assert index.range_items(a, b) == expected
        expected = sorted((key, rid) for key, rid in model.items()
                          if low <= key <= high)
        assert index.range_items(low, high) == expected
        assert len(index) == len(model)
        for key, rid in model.items():
            assert index.get(key) == rid


secondary_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), KEYS, st.integers(1, 50)),
        st.tuples(st.just("supersede"), KEYS, st.integers(1, 50)),
        st.tuples(st.just("range"), KEYS, KEYS),
    ),
    max_size=300,
)


class TestOrderedSecondaryIndexProperty:
    @settings(max_examples=200, deadline=None)
    @given(ops=secondary_ops, low=KEYS, high=KEYS)
    def test_lookup_range_matches_brute_force(self, ops, low, high):
        index = SecondaryIndex(column=1, ordered=True)
        model: dict[int, set[int]] = {}
        for op, value, rid in ops:
            if op == "insert":
                index.insert(value, rid)
                model.setdefault(value, set()).add(rid)
            elif op == "supersede":
                # Deferred removal (footnote 3) followed by an eager
                # vacuum: drops the entry, possibly the whole value.
                index.mark_stale(value, rid, superseded_at=1)
                index.vacuum(oldest_active_begin=None)
                rids = model.get(value)
                if rids is not None:
                    rids.discard(rid)
                    if not rids:
                        del model[value]
            else:
                expected = set()
                for candidate, rids in model.items():
                    if value <= candidate <= rid:
                        expected.update(rids)
                assert index.lookup_range(value, rid) == expected
        expected = set()
        for value, rids in model.items():
            if low <= value <= high:
                expected.update(rids)
        assert index.lookup_range(low, high) == expected


class TestOrderedIndexUnits:
    def test_reinserted_key_not_duplicated(self):
        index = OrderedPrimaryIndex()
        index.insert(5, 100)
        index.remove(5)
        index.insert(5, 200)
        assert index.range_items(0, 10) == [(5, 200)]

    def test_stale_rebuild_threshold(self):
        index = OrderedPrimaryIndex()
        for key in range(200):
            index.insert(key, key)
        assert len(index.range_items(0, 199)) == 200
        for key in range(150):
            index.remove(key)
        assert index.range_items(0, 199) == [(key, key)
                                             for key in range(150, 200)]

    def test_ordered_matches_hash_semantics(self):
        ordered, plain = OrderedPrimaryIndex(), PrimaryIndex()
        for index in (ordered, plain):
            index.insert(3, 30)
            index.insert(1, 10)
            index.insert(2, 20)
            index.remove(2)
        assert ordered.range_items(1, 3) \
            == sorted(plain.range_items(1, 3)) == [(1, 10), (3, 30)]

    def test_manager_respects_config_flags(self):
        schema = TableSchema("t", num_columns=3, key_index=0)
        on = IndexManager(schema, EngineConfig())
        assert isinstance(on.primary, OrderedPrimaryIndex)
        assert on.create_secondary(1).ordered
        off = IndexManager(schema, EngineConfig(
            ordered_primary_index=False, ordered_secondary_index=False))
        assert not isinstance(off.primary, OrderedPrimaryIndex)
        assert not off.create_secondary(1).ordered
