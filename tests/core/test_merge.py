"""The contention-free merge (Section 4.1, Algorithm 1)."""

from types import SimpleNamespace

import pytest

from repro.core.merge import (MergeEngine, MergeResult, MergeTask,
                              merge_insert_range, merge_update_range)
from repro.core.schema import LAST_UPDATED_COLUMN, START_TIME_COLUMN
from repro.core.table import DELETED, tps_applied
from repro.core.types import NULL_RID, make_txn_marker
from repro.core.version import visible_as_of


def _fill_range(table, config, payload=0):
    """Insert one full update range; return the rids."""
    return [table.insert([key, key * 10, payload, 0, 0])
            for key in range(config.update_range_size)]


class TestTpsApplied:
    def test_null_watermark_covers_nothing(self):
        assert not tps_applied(NULL_RID, 12345)

    def test_reversed_ordering(self):
        # Tail RIDs descend: a watermark covers all larger (older) RIDs.
        assert tps_applied(100, 150)
        assert tps_applied(100, 100)
        assert not tps_applied(100, 99)


class TestInsertMerge:
    def test_materializes_base_pages(self, db, table, config):
        rids = _fill_range(table, config)
        update_range, _ = table.locate(rids[0])
        assert not update_range.merged
        db.run_merges()
        assert update_range.merged
        assert table.read_latest(rids[3])[1] == 30

    def test_partial_range_not_merged(self, db, table, config):
        table.insert([0, 0, 0, 0, 0])
        db.run_merges()
        update_range, _ = table.locate(table.index.primary.get(0))
        assert not update_range.merged

    def test_retry_when_uncommitted(self, db, table, config):
        for key in range(config.update_range_size - 1):
            table.insert([key, 0, 0, 0, 0])
        # The last insert carries an unresolved transaction marker.
        txn = db.begin_transaction()
        from repro.txn.occ import occ_insert
        occ_insert(txn.ctx, table, [999, 0, 0, 0, 0])
        update_range = table.ranges[0]
        result = merge_insert_range(table, update_range)
        assert result.retry and not result.performed
        txn.commit()
        result = merge_insert_range(table, update_range)
        assert result.performed
        assert update_range.merged

    def test_start_times_resolved_to_commit_times(self, db, table, config):
        txn = db.begin_transaction()
        from repro.txn.occ import occ_insert
        for key in range(config.update_range_size):
            occ_insert(txn.ctx, table, [key, 0, 0, 0, 0])
        txn.commit()
        db.run_merges()
        update_range = table.ranges[0]
        assert update_range.merged
        start = table._read_base_cell(update_range, 0, START_TIME_COLUMN)
        assert start == txn.commit_time

    def test_aborted_insert_becomes_hole(self, db, table, config):
        txn = db.begin_transaction()
        from repro.txn.occ import occ_insert
        occ_insert(txn.ctx, table, [0, 5, 0, 0, 0])
        txn.abort()
        for key in range(1, config.update_range_size):
            table.insert([key, 5, 0, 0, 0])
        db.run_merges()
        update_range = table.ranges[0]
        assert update_range.merged
        assert 0 in update_range.base_tombstones
        assert table.scan_sum(1) == 5 * (config.update_range_size - 1)

    def test_table_level_tails_retired(self, db, table, config):
        rids = _fill_range(table, config)
        update_range, _ = table.locate(rids[0])
        segment_pages = update_range.insert_range.segment.pages_for_slots(
            0, config.update_range_size)
        db.run_merges()
        # No active queries: the pages must be reclaimed immediately.
        assert all(page.deallocated for page in segment_pages)


class TestRegularMerge:
    def test_consolidates_latest_values(self, db, table, config):
        rids = _fill_range(table, config)
        db.run_merges()
        for rid in rids[:4]:
            table.update(rid, {1: 777})
        update_range, _ = table.locate(rids[0])
        result = merge_update_range(table, update_range)
        assert result.performed
        # Base pages now hold the updated values directly.
        assert table._read_base_cell(
            update_range, 0, table.schema.physical_index(1)) == 777

    def test_tps_advances_monotonically(self, db, table, config):
        rids = _fill_range(table, config)
        db.run_merges()
        update_range, _ = table.locate(rids[0])
        table.update(rids[0], {1: 1})
        merge_update_range(table, update_range)
        first_tps = update_range.tps_rid
        table.update(rids[1], {1: 2})
        merge_update_range(table, update_range)
        # Descending tail RIDs: newer watermark is numerically smaller.
        assert update_range.tps_rid < first_tps

    def test_merge_skips_intermediate_versions(self, db, table, config):
        rids = _fill_range(table, config)
        db.run_merges()
        for value in (1, 2, 3):
            table.update(rids[0], {1: value})
        update_range, _ = table.locate(rids[0])
        merge_update_range(table, update_range)
        assert table._read_base_cell(
            update_range, 0, table.schema.physical_index(1)) == 3

    def test_merge_ignores_snapshot_records(self, db, table, config):
        rids = _fill_range(table, config)
        db.run_merges()
        table.update(rids[0], {1: 111})
        update_range, _ = table.locate(rids[0])
        merge_update_range(table, update_range)
        # The snapshot held the original 0*10; the merged page must
        # show the update, not the snapshot.
        assert table._read_base_cell(
            update_range, 0, table.schema.physical_index(1)) == 111

    def test_merge_skips_uncommitted_suffix(self, db, table, config):
        rids = _fill_range(table, config)
        db.run_merges()
        table.update(rids[0], {1: 5})
        txn = db.begin_transaction()
        from repro.txn.occ import occ_write
        occ_write(txn.ctx, table, rids[1], {1: 6})
        update_range, _ = table.locate(rids[0])
        result = merge_update_range(table, update_range)
        assert result.performed
        # Only the committed prefix was consumed.
        assert update_range.merged_upto < update_range.tail.num_allocated()
        txn.commit()

    def test_merge_applies_delete(self, db, table, config):
        rids = _fill_range(table, config)
        db.run_merges()
        table.delete(rids[2])
        update_range, _ = table.locate(rids[0])
        merge_update_range(table, update_range)
        from repro.core.types import is_null
        value = table._read_base_cell(
            update_range, 2, table.schema.physical_index(1))
        assert is_null(value)
        assert table.read_latest(rids[2]) is DELETED

    def test_last_updated_time_populated(self, db, table, config):
        rids = _fill_range(table, config)
        db.run_merges()
        before = table.clock.now()
        table.update(rids[0], {1: 5})
        update_range, _ = table.locate(rids[0])
        merge_update_range(table, update_range)
        last_updated = table._read_base_cell(update_range, 0,
                                             LAST_UPDATED_COLUMN)
        assert last_updated > before

    def test_start_time_preserved(self, db, table, config):
        rids = _fill_range(table, config)
        db.run_merges()
        update_range, _ = table.locate(rids[0])
        original = table._read_base_cell(update_range, 0, START_TIME_COLUMN)
        table.update(rids[0], {1: 5})
        merge_update_range(table, update_range)
        assert table._read_base_cell(update_range, 0, START_TIME_COLUMN) \
            == original

    def test_indirection_untouched_by_merge(self, db, table, config):
        rids = _fill_range(table, config)
        db.run_merges()
        tail_rid = table.update(rids[0], {1: 5})
        update_range, offset = table.locate(rids[0])
        merge_update_range(table, update_range)
        assert update_range.indirection.read(offset) == tail_rid

    def test_nothing_to_merge(self, db, table, config):
        rids = _fill_range(table, config)
        db.run_merges()
        update_range, _ = table.locate(rids[0])
        assert not merge_update_range(table, update_range).performed

    def test_requires_insert_merge_first(self, table, config):
        table.insert([0, 0, 0, 0, 0])
        update_range = table.ranges[0]
        result = merge_update_range(table, update_range)
        assert result.retry

    def test_historic_reads_survive_merge(self, db, table, config):
        # Lemma 2: snapshots make outdated base pages discardable.
        rids = _fill_range(table, config)
        db.run_merges()
        t1 = table.clock.now()
        table.update(rids[0], {1: 999})
        update_range, _ = table.locate(rids[0])
        merge_update_range(table, update_range)
        db.epoch_manager.reclaim()
        old = table.assemble_version(rids[0], (1,), visible_as_of(t1))
        assert old == {1: 0}

    def test_merge_idempotent_inputs(self, db, table, config):
        # Re-merging with no new tails changes nothing (Section 5.1.3).
        rids = _fill_range(table, config)
        db.run_merges()
        table.update(rids[0], {1: 5})
        update_range, _ = table.locate(rids[0])
        merge_update_range(table, update_range)
        state = (update_range.merged_upto, update_range.tps_rid,
                 update_range.merge_count)
        assert not merge_update_range(table, update_range).performed
        assert (update_range.merged_upto, update_range.tps_rid,
                update_range.merge_count) == state


class TestMergeEngine:
    def test_notifier_dedup(self, db, table):
        engine = MergeEngine()
        engine.attach(table)
        engine.notifier(table, 0, "update")
        engine.notifier(table, 0, "update")
        assert engine.queue_length == 1

    def test_run_pending_terminates_on_retry(self, db, table, config):
        engine = MergeEngine()
        engine.attach(table)
        table.insert([0, 0, 0, 0, 0])
        engine.notifier(table, 0, "update")  # not mergeable yet
        completed = engine.run_pending()
        assert completed == 0
        assert engine.stat_retries >= 1

    def test_background_thread_processes(self, db, table, config):
        import time
        engine = db.merge_engine
        engine.start()
        try:
            rids = _fill_range(table, config)
            deadline = time.time() + 5.0
            update_range, _ = table.locate(rids[0])
            while not update_range.merged and time.time() < deadline:
                time.sleep(0.01)
            assert update_range.merged
        finally:
            engine.stop()

    def test_threshold_triggers_via_notifier(self, db, table, config):
        rids = _fill_range(table, config)
        db.run_merges()
        for _ in range(config.merge_threshold):
            table.update(rids[0], {1: 1 + _})
        assert db.merge_engine.queue_length >= 1
        db.run_merges()
        update_range, _ = table.locate(rids[0])
        assert update_range.merged_upto > 0


class TestBatchRetryNotifier:
    def test_retry_notifier_runs_outside_processing_lock(self):
        """Batched drains must not invoke the (pluggable) notifier while
        holding the processing lock — a notifier that touches merge
        state would deadlock the whole batch. Mirrors the single-task
        path, which notifies only after _process returns."""
        engine = MergeEngine(batch_ranges=4)
        engine._process_inner = \
            lambda task: MergeResult(performed=False, retry=True)
        lock_free_at_notify = []

        def probing_notifier(table, range_id, kind):
            free = engine._processing.acquire(blocking=False)
            if free:
                engine._processing.release()
            lock_free_at_notify.append(free)

        engine.notifier = probing_notifier
        sentinel = SimpleNamespace(
            epoch_manager=SimpleNamespace(reclaim=lambda: 0))
        tasks = [MergeTask(sentinel, range_id, "update")
                 for range_id in range(3)]
        completed, retried = engine._drain_batch(tasks)
        assert completed == 0
        assert retried
        assert lock_free_at_notify == [True, True, True]
