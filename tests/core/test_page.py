"""Pages: write-once discipline, freezing, NumPy views, lineage."""

import sys
import threading

import numpy as np
import pytest

from repro.core.page import (BytesPage, Page, RowPage, UNWRITTEN,
                             page_values_equal)
from repro.core.types import NULL, PageKind
from repro.errors import PageFullError, PageImmutableError


class TestPageWrites:
    def test_write_and_read(self):
        page = Page(1, PageKind.TAIL, 4, column=2)
        page.write_slot(0, 42)
        assert page.read_slot(0) == 42
        assert page.num_records == 1

    def test_write_once_enforced(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(0, 1)
        with pytest.raises(PageImmutableError):
            page.write_slot(0, 2)

    def test_write_once_even_same_value(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(1, 7)
        with pytest.raises(PageImmutableError):
            page.write_slot(1, 7)

    def test_out_of_range_slot(self):
        page = Page(1, PageKind.TAIL, 4)
        with pytest.raises(PageFullError):
            page.write_slot(4, 1)
        with pytest.raises(PageFullError):
            page.write_slot(-1, 1)

    def test_frozen_rejects_writes(self):
        page = Page(1, PageKind.BASE, 4)
        page.write_slot(0, 1)
        page.freeze()
        with pytest.raises(PageImmutableError):
            page.write_slot(1, 2)

    def test_fill_freezes(self):
        page = Page(1, PageKind.MERGED, 4)
        page.fill([1, 2, 3])
        assert page.frozen
        assert page.num_records == 3
        assert [page.read_slot(i) for i in range(3)] == [1, 2, 3]

    def test_fill_requires_empty(self):
        page = Page(1, PageKind.MERGED, 4)
        page.write_slot(0, 9)
        with pytest.raises(PageImmutableError):
            page.fill([1, 2])

    def test_fill_capacity(self):
        page = Page(1, PageKind.MERGED, 2)
        with pytest.raises(PageFullError):
            page.fill([1, 2, 3])

    def test_unwritten_read_raises(self):
        page = Page(1, PageKind.TAIL, 4)
        with pytest.raises(PageImmutableError):
            page.read_slot(0)

    def test_is_written(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(2, NULL)
        assert page.is_written(2)
        assert not page.is_written(0)
        assert not page.is_written(99)

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            Page(1, PageKind.TAIL, 0)


class TestPageIteration:
    def test_iter_values_stops_at_gap(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(0, 1)
        page.write_slot(1, 2)
        page.write_slot(3, 4)  # gap at 2
        assert list(page.iter_values()) == [1, 2]

    def test_utilization(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(0, 1)
        assert page.utilization == 0.25
        assert page.has_capacity


class TestNumpyView:
    def test_requires_frozen(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(0, 1)
        assert page.as_numpy() is None

    def test_int_page(self):
        page = Page(1, PageKind.BASE, 4)
        page.fill([1, 2, 3, 4])
        array = page.as_numpy()
        assert array is not None
        assert array.dtype == np.int64
        assert int(array.sum()) == 10

    def test_cached(self):
        page = Page(1, PageKind.BASE, 4)
        page.fill([1, 2])
        assert page.as_numpy() is page.as_numpy()

    def test_null_values_fall_back(self):
        page = Page(1, PageKind.BASE, 4)
        page.fill([1, NULL, 3])
        assert page.as_numpy() is None

    def test_bool_is_not_int(self):
        # bool is an int subclass; the view must reject it to avoid
        # silently summing booleans.
        page = Page(1, PageKind.BASE, 4)
        page.fill([True, False])
        assert page.as_numpy() is None


class TestMaskedNumpyView:
    def test_null_slots_masked_not_fatal(self):
        # One ∅ (e.g. a merged delete) no longer knocks the page off
        # the fast path: it carries 0 with a False validity bit.
        page = Page(1, PageKind.MERGED, 4)
        page.fill([5, NULL, 7])
        assert page.as_numpy() is None
        masked = page.as_numpy_masked()
        assert masked is not None
        values, valid = masked
        assert values.tolist() == [5, 0, 7]
        assert valid.tolist() == [True, False, True]

    def test_all_int_page_masked_all_valid(self):
        page = Page(1, PageKind.BASE, 4)
        page.fill([1, 2, 3])
        values, valid = page.as_numpy_masked()
        assert values.tolist() == [1, 2, 3]
        assert valid.all()
        # The plain view shares the same cached array.
        assert page.as_numpy() is values

    def test_requires_frozen(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(0, 1)
        assert page.as_numpy_masked() is None

    def test_verdicts_cached(self):
        page = Page(1, PageKind.BASE, 4)
        page.fill([1, NULL])
        first = page.as_numpy_masked()
        assert page.as_numpy_masked()[0] is first[0]
        declined = Page(2, PageKind.BASE, 4)
        declined.fill(["text", 2])
        assert declined.as_numpy_masked() is None
        # The negative verdict is cached on the frozen page.
        assert declined._numpy_cache is Page._DECLINED
        assert declined.as_numpy_masked() is None
        assert declined.as_numpy() is None


class TestRowPageReadRows:
    def test_slice_and_unwritten(self):
        page = RowPage(1, PageKind.BASE, 4, width=2)
        page.write_row(0, (1, 2))
        page.write_row(2, (5, 6))
        rows = page.read_rows()
        assert rows == [(1, 2), None, (5, 6), None]
        assert page.read_rows(1, 3) == [None, (5, 6)]


class TestLineage:
    def test_set_lineage(self):
        page = Page(1, PageKind.MERGED, 4)
        page.set_lineage(123, 2)
        assert page.tps_rid == 123
        assert page.merge_count == 2

    def test_fresh_page_has_zero_tps(self):
        assert Page(1, PageKind.BASE, 4).tps_rid == 0


class TestRowPage:
    def test_write_read_row(self):
        page = RowPage(1, PageKind.BASE, 2, width=3)
        page.write_row(0, (1, 2, 3))
        assert page.read_row(0) == (1, 2, 3)
        assert page.read_cell(0, 1) == 2

    def test_write_once(self):
        page = RowPage(1, PageKind.BASE, 2, width=2)
        page.write_row(0, (1, 2))
        with pytest.raises(PageImmutableError):
            page.write_row(0, (3, 4))

    def test_width_check(self):
        page = RowPage(1, PageKind.BASE, 2, width=2)
        with pytest.raises(PageImmutableError):
            page.write_row(0, (1, 2, 3))

    def test_frozen(self):
        page = RowPage(1, PageKind.BASE, 2, width=2)
        page.write_row(0, (1, 2))
        page.freeze()
        with pytest.raises(PageImmutableError):
            page.write_row(1, (3, 4))

    def test_unwritten_read(self):
        page = RowPage(1, PageKind.BASE, 2, width=2)
        with pytest.raises(PageImmutableError):
            page.read_row(1)
        assert not page.is_written(1)

    def test_counts(self):
        page = RowPage(1, PageKind.BASE, 2, width=2)
        assert page.has_capacity
        page.write_row(0, (1, 2))
        page.write_row(1, (3, 4))
        assert page.num_records == 2
        assert not page.has_capacity


class TestValueEquality:
    def test_null_equals_null(self):
        assert page_values_equal(NULL, NULL)

    def test_null_not_equal_value(self):
        assert not page_values_equal(NULL, 0)

    def test_plain_equality(self):
        assert page_values_equal(3, 3)
        assert not page_values_equal(3, 4)


class TestBytesPageReplaceSlot:
    """replace_slot across storage representations.

    Regression coverage for the reader-atomic swap: the refinement
    must never expose a transient value to unlocked readers, and
    spilled cells must end up zeroed so buffer sums stay ∅-correct.
    """

    def _page(self, values):
        page = BytesPage(1, PageKind.TAIL, 8)
        for slot, value in enumerate(values):
            page.write_slot(slot, value)
        return page

    def test_int_to_int(self):
        page = self._page([7])
        assert page.replace_slot(0, 7, 8)
        assert page.read_slot(0) == 8

    def test_int_to_string_spills_and_zeroes_cell(self):
        page = self._page([7])
        assert page.replace_slot(0, 7, "seven")
        assert page.read_slot(0) == "seven"
        assert page._buf[0] == 0

    def test_string_to_int(self):
        page = self._page(["seven"])
        assert page.replace_slot(0, "seven", 7)
        assert page.read_slot(0) == 7
        assert page._sidecar.get(0) is None

    def test_int_to_null_and_back(self):
        page = self._page([7])
        assert page.replace_slot(0, 7, NULL)
        assert page.read_slot(0) is NULL
        assert page._buf[0] == 0
        assert page.replace_slot(0, NULL, 9)
        assert page.read_slot(0) == 9

    def test_string_to_null(self):
        page = self._page(["seven"])
        assert page.replace_slot(0, "seven", NULL)
        assert page.read_slot(0) is NULL
        assert page._sidecar.get(0) is None
        assert page._buf[0] == 0

    def test_int_to_wide_int(self):
        wide = 1 << 80
        page = self._page([7])
        assert page.replace_slot(0, 7, wide)
        assert page.read_slot(0) == wide
        assert page._buf[0] == 0

    def test_mismatch_and_unwritten_refused(self):
        page = self._page([7])
        assert not page.replace_slot(0, 6, 8)
        assert not page.replace_slot(1, 6, 8)
        assert page.read_slot(0) == 7

    def test_no_transient_value_under_concurrent_peek(self):
        """An unlocked reader must only ever see old or new values.

        The lazy Start Time stamping reads tail cells without the page
        lock; a transient 0 there would read as "committed at time 0"
        and leak uncommitted versions into every snapshot. Force rapid
        GIL switches and hammer one slot through int and spill
        representations while a reader peeks.
        """
        page = BytesPage(1, PageKind.TAIL, 4)
        page.write_slot(0, 1)
        allowed = set()
        seen = set()
        stop = threading.Event()

        def reader():
            peek = page.peek_slot
            while not stop.is_set():
                seen.add(peek(0))

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        thread = threading.Thread(target=reader)
        thread.start()
        try:
            current = 1
            for step in range(2, 15002):
                if step % 500 == 0:  # occasional spill transitions
                    value = "s%d" % step
                elif step % 501 == 0:
                    value = 1 << 70
                else:
                    value = step
                allowed.add(value)
                assert page.replace_slot(0, current, value)
                current = value
        finally:
            stop.set()
            thread.join()
            sys.setswitchinterval(old_interval)
        allowed.add(1)
        assert seen <= allowed, seen - allowed


class TestBytesPageFillBools:
    def test_fill_preserves_bools_both_layouts(self):
        # array('q') would coerce True -> 1; the bulk splice must not
        # be taken when bools are present so both layouts agree.
        for cls in (Page, BytesPage):
            page = cls(1, PageKind.MERGED, 4)
            page.fill([1, True, False, 2])
            values = [page.read_slot(i) for i in range(4)]
            assert values[0] == 1 and type(values[0]) is int
            assert values[1] is True
            assert values[2] is False
            assert values[3] == 2

    def test_fill_all_int_bulk_path_intact(self):
        page = BytesPage(1, PageKind.MERGED, 4)
        page.fill([1, 2, 3])
        assert [page.read_slot(i) for i in range(3)] == [1, 2, 3]
        assert page._sidecar is None


class _ProbingBuf:
    """array('q') stand-in running a visibility check after each store."""

    def __init__(self, inner, check):
        self._inner = inner
        self._check = check

    def __getitem__(self, index):
        return self._inner[index]

    def __setitem__(self, index, value):
        self._inner[index] = value
        self._check()


class _ProbingBytearray(bytearray):
    check = staticmethod(lambda: None)

    def __setitem__(self, index, value):
        super().__setitem__(index, value)
        self.check()


class _ProbingDict(dict):
    check = staticmethod(lambda: None)

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        self.check()

    def pop(self, key, *default):
        result = super().pop(key, *default)
        self.check()
        return result


class TestBytesPageReplaceSlotLinearizable:
    """Deterministic probe: after EVERY internal store replace_slot
    makes (buffer cell, null bitmap, sidecar), an unlocked peek_slot
    must return either the old or the new value — the exact invariant
    the lazy Start Time stamping relies on. The pre-fix ordering
    (zero the cell, then write) fails this on the first transition.
    """

    TRANSITIONS = [
        (7, 8),                  # int -> int (the stamping hot case)
        (7, "seven"),            # int -> sidecar
        ("seven", 7),            # sidecar -> int
        (7, NULL),               # int -> null
        (NULL, 7),               # null -> int
        ("seven", NULL),         # sidecar -> null
        (NULL, "seven"),         # null -> sidecar
        (7, 1 << 80),            # int -> wide int (overflow spill)
        (1 << 80, 7),            # wide int -> int
        ("a", "b"),              # sidecar -> sidecar
    ]

    @pytest.mark.parametrize("old,new", TRANSITIONS,
                             ids=[repr((o, n)) for o, n in TRANSITIONS])
    def test_every_intermediate_state_reads_old_or_new(self, old, new):
        page = BytesPage(1, PageKind.TAIL, 4)
        page.write_slot(0, old)
        active = []

        def check():
            if not active:
                return
            value = page.peek_slot(0)
            assert (page_values_equal(value, old)
                    or page_values_equal(value, new)), (
                "transient %r visible replacing %r -> %r"
                % (value, old, new))

        page._buf = _ProbingBuf(page._buf, check)
        nullbits = _ProbingBytearray(page._nullbits)
        nullbits.check = check
        page._nullbits = nullbits
        sidecar = _ProbingDict(page._sidecar or {})
        sidecar.check = check
        page._sidecar = sidecar
        active.append(True)
        assert page.replace_slot(0, old, new)
        assert page_values_equal(page.read_slot(0), new)
        if type(new) is not int or not (-2**63 <= new < 2**63):
            assert page._buf[0] == 0  # spilled cells stay ∅-sum-correct
