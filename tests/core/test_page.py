"""Pages: write-once discipline, freezing, NumPy views, lineage."""

import numpy as np
import pytest

from repro.core.page import Page, RowPage, UNWRITTEN, page_values_equal
from repro.core.types import NULL, PageKind
from repro.errors import PageFullError, PageImmutableError


class TestPageWrites:
    def test_write_and_read(self):
        page = Page(1, PageKind.TAIL, 4, column=2)
        page.write_slot(0, 42)
        assert page.read_slot(0) == 42
        assert page.num_records == 1

    def test_write_once_enforced(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(0, 1)
        with pytest.raises(PageImmutableError):
            page.write_slot(0, 2)

    def test_write_once_even_same_value(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(1, 7)
        with pytest.raises(PageImmutableError):
            page.write_slot(1, 7)

    def test_out_of_range_slot(self):
        page = Page(1, PageKind.TAIL, 4)
        with pytest.raises(PageFullError):
            page.write_slot(4, 1)
        with pytest.raises(PageFullError):
            page.write_slot(-1, 1)

    def test_frozen_rejects_writes(self):
        page = Page(1, PageKind.BASE, 4)
        page.write_slot(0, 1)
        page.freeze()
        with pytest.raises(PageImmutableError):
            page.write_slot(1, 2)

    def test_fill_freezes(self):
        page = Page(1, PageKind.MERGED, 4)
        page.fill([1, 2, 3])
        assert page.frozen
        assert page.num_records == 3
        assert [page.read_slot(i) for i in range(3)] == [1, 2, 3]

    def test_fill_requires_empty(self):
        page = Page(1, PageKind.MERGED, 4)
        page.write_slot(0, 9)
        with pytest.raises(PageImmutableError):
            page.fill([1, 2])

    def test_fill_capacity(self):
        page = Page(1, PageKind.MERGED, 2)
        with pytest.raises(PageFullError):
            page.fill([1, 2, 3])

    def test_unwritten_read_raises(self):
        page = Page(1, PageKind.TAIL, 4)
        with pytest.raises(PageImmutableError):
            page.read_slot(0)

    def test_is_written(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(2, NULL)
        assert page.is_written(2)
        assert not page.is_written(0)
        assert not page.is_written(99)

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            Page(1, PageKind.TAIL, 0)


class TestPageIteration:
    def test_iter_values_stops_at_gap(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(0, 1)
        page.write_slot(1, 2)
        page.write_slot(3, 4)  # gap at 2
        assert list(page.iter_values()) == [1, 2]

    def test_utilization(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(0, 1)
        assert page.utilization == 0.25
        assert page.has_capacity


class TestNumpyView:
    def test_requires_frozen(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(0, 1)
        assert page.as_numpy() is None

    def test_int_page(self):
        page = Page(1, PageKind.BASE, 4)
        page.fill([1, 2, 3, 4])
        array = page.as_numpy()
        assert array is not None
        assert array.dtype == np.int64
        assert int(array.sum()) == 10

    def test_cached(self):
        page = Page(1, PageKind.BASE, 4)
        page.fill([1, 2])
        assert page.as_numpy() is page.as_numpy()

    def test_null_values_fall_back(self):
        page = Page(1, PageKind.BASE, 4)
        page.fill([1, NULL, 3])
        assert page.as_numpy() is None

    def test_bool_is_not_int(self):
        # bool is an int subclass; the view must reject it to avoid
        # silently summing booleans.
        page = Page(1, PageKind.BASE, 4)
        page.fill([True, False])
        assert page.as_numpy() is None


class TestMaskedNumpyView:
    def test_null_slots_masked_not_fatal(self):
        # One ∅ (e.g. a merged delete) no longer knocks the page off
        # the fast path: it carries 0 with a False validity bit.
        page = Page(1, PageKind.MERGED, 4)
        page.fill([5, NULL, 7])
        assert page.as_numpy() is None
        masked = page.as_numpy_masked()
        assert masked is not None
        values, valid = masked
        assert values.tolist() == [5, 0, 7]
        assert valid.tolist() == [True, False, True]

    def test_all_int_page_masked_all_valid(self):
        page = Page(1, PageKind.BASE, 4)
        page.fill([1, 2, 3])
        values, valid = page.as_numpy_masked()
        assert values.tolist() == [1, 2, 3]
        assert valid.all()
        # The plain view shares the same cached array.
        assert page.as_numpy() is values

    def test_requires_frozen(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(0, 1)
        assert page.as_numpy_masked() is None

    def test_verdicts_cached(self):
        page = Page(1, PageKind.BASE, 4)
        page.fill([1, NULL])
        first = page.as_numpy_masked()
        assert page.as_numpy_masked()[0] is first[0]
        declined = Page(2, PageKind.BASE, 4)
        declined.fill(["text", 2])
        assert declined.as_numpy_masked() is None
        # The negative verdict is cached on the frozen page.
        assert declined._numpy_cache is Page._DECLINED
        assert declined.as_numpy_masked() is None
        assert declined.as_numpy() is None


class TestRowPageReadRows:
    def test_slice_and_unwritten(self):
        page = RowPage(1, PageKind.BASE, 4, width=2)
        page.write_row(0, (1, 2))
        page.write_row(2, (5, 6))
        rows = page.read_rows()
        assert rows == [(1, 2), None, (5, 6), None]
        assert page.read_rows(1, 3) == [None, (5, 6)]


class TestLineage:
    def test_set_lineage(self):
        page = Page(1, PageKind.MERGED, 4)
        page.set_lineage(123, 2)
        assert page.tps_rid == 123
        assert page.merge_count == 2

    def test_fresh_page_has_zero_tps(self):
        assert Page(1, PageKind.BASE, 4).tps_rid == 0


class TestRowPage:
    def test_write_read_row(self):
        page = RowPage(1, PageKind.BASE, 2, width=3)
        page.write_row(0, (1, 2, 3))
        assert page.read_row(0) == (1, 2, 3)
        assert page.read_cell(0, 1) == 2

    def test_write_once(self):
        page = RowPage(1, PageKind.BASE, 2, width=2)
        page.write_row(0, (1, 2))
        with pytest.raises(PageImmutableError):
            page.write_row(0, (3, 4))

    def test_width_check(self):
        page = RowPage(1, PageKind.BASE, 2, width=2)
        with pytest.raises(PageImmutableError):
            page.write_row(0, (1, 2, 3))

    def test_frozen(self):
        page = RowPage(1, PageKind.BASE, 2, width=2)
        page.write_row(0, (1, 2))
        page.freeze()
        with pytest.raises(PageImmutableError):
            page.write_row(1, (3, 4))

    def test_unwritten_read(self):
        page = RowPage(1, PageKind.BASE, 2, width=2)
        with pytest.raises(PageImmutableError):
            page.read_row(1)
        assert not page.is_written(1)

    def test_counts(self):
        page = RowPage(1, PageKind.BASE, 2, width=2)
        assert page.has_capacity
        page.write_row(0, (1, 2))
        page.write_row(1, (3, 4))
        assert page.num_records == 2
        assert not page.has_capacity


class TestValueEquality:
    def test_null_equals_null(self):
        assert page_values_equal(NULL, NULL)

    def test_null_not_equal_value(self):
        assert not page_values_equal(NULL, 0)

    def test_plain_equality(self):
        assert page_values_equal(3, 3)
        assert not page_values_equal(3, 4)
