"""Page directory: registry and atomic base-chain swaps."""

import pytest

from repro.core.page import Page
from repro.core.page_directory import PageDirectory
from repro.core.types import PageKind
from repro.errors import StorageError


def _page(page_id: int) -> Page:
    return Page(page_id, PageKind.BASE, 4)


class TestRegistry:
    def test_register_get(self):
        directory = PageDirectory()
        page = _page(1)
        directory.register(page)
        assert directory.get(1) is page
        assert 1 in directory
        assert len(directory) == 1

    def test_duplicate_rejected(self):
        directory = PageDirectory()
        directory.register(_page(1))
        with pytest.raises(StorageError):
            directory.register(_page(1))

    def test_register_many_atomic(self):
        directory = PageDirectory()
        directory.register(_page(2))
        with pytest.raises(StorageError):
            directory.register_many([_page(3), _page(2)])
        # Nothing from the failed batch must have been registered.
        assert 3 not in directory

    def test_unknown_get(self):
        with pytest.raises(StorageError):
            PageDirectory().get(99)

    def test_unregister(self):
        directory = PageDirectory()
        directory.register(_page(1))
        directory.unregister(1)
        assert 1 not in directory
        directory.unregister(1)  # idempotent


class TestChains:
    def test_set_and_read_chain(self):
        directory = PageDirectory()
        pages = (_page(1), _page(2))
        directory.set_base_chain(0, 5, pages)
        assert directory.base_chain(0, 5) == pages

    def test_missing_chain_is_none(self):
        assert PageDirectory().base_chain(0, 0) is None

    def test_swap_returns_old(self):
        directory = PageDirectory()
        old = (_page(1),)
        new = (_page(2),)
        directory.set_base_chain(0, 5, old)
        returned = directory.swap_base_chain(0, 5, new)
        assert returned == old
        assert directory.base_chain(0, 5) == new
        assert directory.swap_count == 1

    def test_swap_without_existing(self):
        directory = PageDirectory()
        assert directory.swap_base_chain(1, 2, (_page(9),)) == ()

    def test_chain_immutable_snapshot(self):
        # A reader holding the old tuple is unaffected by a swap.
        directory = PageDirectory()
        old = (_page(1),)
        directory.set_base_chain(0, 0, old)
        held = directory.base_chain(0, 0)
        directory.swap_base_chain(0, 0, (_page(2),))
        assert held == old

    def test_base_columns(self):
        directory = PageDirectory()
        directory.set_base_chain(3, 5, (_page(1),))
        directory.set_base_chain(3, 7, (_page(2),))
        directory.set_base_chain(4, 5, (_page(3),))
        assert sorted(directory.base_columns(3)) == [5, 7]
