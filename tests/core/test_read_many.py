"""Batched reads and the incremental scan patch-set.

``Table.read_latest_many`` must agree with per-rid
``read_latest_fast`` on any mix of clean (merged, TPS-covered) and
dirty (live unmerged tail) records; the per-range dirty-offset set must
grow with tail appends and shrink when merges consume them, keeping
``scan_sum`` exact.
"""

import pytest

from repro import Database, EngineConfig
from repro.core.merge import merge_update_range
from repro.core.table import DELETED
from repro.errors import KeyNotFoundError
from repro.txn.transaction import Transaction


@pytest.fixture
def bank(db, table, query):
    """32 rows across two insert ranges, base pages materialised."""
    for key in range(32):
        query.insert(key, key * 2, key * 3, key * 5, 7)
    db.run_merges()
    return query


def mixed_state(db, table, query):
    """Create clean, merged-dirty, re-dirty, deleted and in-flight rids."""
    for key in range(6):
        query.update(key, None, key + 100, None, None, None)
        query.update(key, None, None, key + 200, None, None)
    query.delete(7)
    query.update(20, None, 777, None, None, None)
    # Consolidate range 0 only; range 1 keeps its unmerged tail.
    rid0 = table.index.primary.get(0)
    merge_update_range(table, table.locate(rid0)[0])
    # Re-dirty one consolidated record.
    query.update(1, None, None, None, 999, None)
    # An uncommitted writer: visible to nobody yet.
    txn = Transaction(db.txn_manager)
    txn.update(table, 3, {1: 12345})
    return txn


class TestReadLatestMany:
    def test_agrees_with_read_latest_fast(self, db, table, bank):
        txn = mixed_state(db, table, bank)
        try:
            rids = [table.index.primary.get(key) for key in range(32)]
            for projection in ((1,), (1, 3), None):
                many = table.read_latest_many(rids, projection)
                for rid in rids:
                    assert many[rid] \
                        == table.read_latest_fast(rid, projection), rid
        finally:
            txn.abort()

    def test_deleted_record_reported(self, db, table, bank):
        bank.delete(7)
        rid = table.index.primary.get(7)
        assert table.read_latest_many([rid], (1,))[rid] is DELETED
        merge_update_range(table, table.locate(rid)[0])
        assert table.read_latest_many([rid], (1,))[rid] is DELETED

    def test_unknown_rid_raises(self, db, table, bank):
        with pytest.raises(KeyNotFoundError):
            table.read_latest_many([10**6 + 1], (1,))

    def test_flag_off_matches(self, bank):
        db = Database(EngineConfig(
            records_per_page=8, records_per_tail_page=8,
            update_range_size=16, merge_threshold=8, insert_range_size=16,
            background_merge=False, batched_reads=False))
        try:
            table = db.create_table("plain", num_columns=5)
            from repro.core.query import Query
            query = Query(table)
            for key in range(20):
                query.insert(key, key, key, key, key)
            db.run_merges()
            query.update(3, None, 42, None, None, None)
            rids = [table.index.primary.get(key) for key in range(20)]
            many = table.read_latest_many(rids, (1, 2))
            for rid in rids:
                assert many[rid] == table.read_latest_fast(rid, (1, 2))
        finally:
            db.close()


class TestUnmergedBatchedReads:
    """Insert-only ranges serve straight from base pages (no walks)."""

    def test_unmerged_agrees_with_fast_path(self, db, table, query):
        for key in range(10):  # insert range not full: stays unmerged
            query.insert(key, key * 2, key * 3, key * 5, 7)
        query.update(2, None, 111, None, None, None)
        query.delete(4)
        assert not table.sorted_ranges()[0].merged
        rids = [table.index.primary.get(key) for key in range(10)
                if table.index.primary.get(key) is not None]
        for projection in ((1,), (1, 3), None):
            many = table.read_latest_many(rids, projection)
            for rid in rids:
                assert many[rid] == table.read_latest_fast(rid, projection)

    def test_own_writes_visible(self, db, table, query):
        for key in range(6):
            query.insert(key, key, 0, 0, 0)
        txn = Transaction(db.txn_manager)
        txn.update(table, 3, {1: 5555})
        try:
            rids = [table.index.primary.get(key) for key in range(6)]
            many = table.read_latest_many(rids, (1,), txn.txn_id)
            for rid in rids:
                assert many[rid] \
                    == table.read_latest_fast(rid, (1,), txn.txn_id)
            assert many[table.index.primary.get(3)] == {1: 5555}
        finally:
            txn.abort()

    def test_uncommitted_insert_invisible(self, db, table, query):
        query.insert(0, 10, 0, 0, 0)
        txn = Transaction(db.txn_manager)
        txn.insert(table, [1, 20, 0, 0, 0])
        try:
            rids = [table.index.primary.get(0), table.index.primary.get(1)]
            many = table.read_latest_many(rids, (1,))
            assert many[rids[0]] == {1: 10}
            assert many[rids[1]] is None
        finally:
            txn.abort()


class TestRowLayoutBatchedReads:
    """The row layout reads whole-page row slices, not per-rid walks."""

    @pytest.fixture
    def row_db(self):
        from repro.core.types import Layout
        database = Database(EngineConfig(
            records_per_page=8, records_per_tail_page=8,
            update_range_size=16, merge_threshold=8, insert_range_size=16,
            background_merge=False, layout=Layout.ROW,
            compress_merged_pages=False))
        yield database
        database.close()

    def test_merged_and_unmerged_agree(self, row_db):
        from repro.core.query import Query
        table = row_db.create_table("rows", num_columns=4)
        query = Query(table)
        for key in range(24):  # range 0 merges, range 1 stays unmerged
            query.insert(key, key * 2, key * 3, 7)
        row_db.run_merges()
        query.update(2, None, 222, None, None)
        query.delete(5)
        query.update(20, None, 202, None, None)
        rids = [table.index.primary.get(key) for key in range(24)
                if table.index.primary.get(key) is not None]
        for projection in ((1,), (1, 2), None):
            many = table.read_latest_many(rids, projection)
            for rid in rids:
                assert many[rid] == table.read_latest_fast(rid, projection)

    def test_merged_delete_reported(self, row_db):
        from repro.core.query import Query
        table = row_db.create_table("rows", num_columns=4)
        query = Query(table)
        for key in range(16):
            query.insert(key, key, key, key)
        row_db.run_merges()
        query.delete(3)
        rid = table.index.primary.get(3)
        merge_update_range(table, table.locate(rid)[0])
        assert table.read_latest_many([rid], (1,))[rid] is DELETED


class TestIncrementalDirtySets:
    def test_appends_grow_and_merge_prunes(self, db, table, bank):
        rid = table.index.primary.get(2)
        update_range, offset = table.locate(rid)
        assert update_range.dirty_offsets() == set()
        # First update appends the Lemma-2 snapshot plus the update.
        bank.update(2, None, 11, None, None, None)
        assert update_range.dirty_counts[offset] == 2
        # A second update of the same column appends only the update;
        # a first-touch of another column would snapshot it first.
        bank.update(2, None, 22, None, None, None)
        assert update_range.dirty_counts[offset] == 3
        assert update_range.dirty_offsets() == {offset}
        merge_update_range(table, update_range)
        assert update_range.dirty_offsets() == set()

    def test_dirty_set_matches_tail_rewalk(self, db, table, bank):
        for key in (0, 1, 5, 9, 12):
            bank.update(key, None, key, None, None, None)
        bank.delete(14)
        for update_range in table.sorted_ranges():
            assert update_range.dirty_offsets() \
                == table._tail_patch_offsets(update_range,
                                             update_range.merged_upto)

    def test_scan_sum_exact_across_merges(self, db, table, bank):
        expected = sum(key * 2 for key in range(32))
        assert table.scan_sum(1) == expected
        bank.update(4, None, 1000, None, None, None)
        expected += 1000 - 8
        assert table.scan_sum(1) == expected
        db.run_merges()
        assert table.scan_sum(1) == expected
        bank.delete(9)
        expected -= 18
        assert table.scan_sum(1) == expected
        db.run_merges()
        assert table.scan_sum(1) == expected

    def test_scan_sum_with_flag_off(self):
        db = Database(EngineConfig(
            records_per_page=8, records_per_tail_page=8,
            update_range_size=16, merge_threshold=8, insert_range_size=16,
            background_merge=False, incremental_dirty_sets=False))
        try:
            table = db.create_table("legacy", num_columns=3)
            from repro.core.query import Query
            query = Query(table)
            for key in range(16):
                query.insert(key, key, 0)
            db.run_merges()
            query.update(3, None, 100, None)
            assert table.scan_sum(1) == sum(range(16)) + 100 - 3
        finally:
            db.close()
