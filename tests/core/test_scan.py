"""Analytical scans: SUM correctness across merges, patches, layouts."""

import pytest

from repro.core.config import EngineConfig
from repro.core.types import Layout


class TestScanSum:
    def test_basic(self, db, table):
        for key in range(20):
            table.insert([key, key, 2, 0, 0])
        assert table.scan_sum(1) == sum(range(20))
        assert table.scan_sum(2) == 40

    def test_updates_visible_before_merge(self, db, table):
        for key in range(20):
            table.insert([key, key, 0, 0, 0])
        table.update(table.index.primary.get(3), {1: 1000})
        assert table.scan_sum(1) == sum(range(20)) - 3 + 1000

    def test_updates_visible_after_merge(self, db, table, config):
        for key in range(config.update_range_size):
            table.insert([key, key, 0, 0, 0])
        db.run_merges()
        table.update(table.index.primary.get(3), {1: 1000})
        expected = sum(range(config.update_range_size)) - 3 + 1000
        assert table.scan_sum(1) == expected
        from repro.core.merge import merge_update_range
        merge_update_range(table, table.ranges[0])
        assert table.scan_sum(1) == expected

    def test_deletes_excluded(self, db, table):
        for key in range(20):
            table.insert([key, 5, 0, 0, 0])
        table.delete(table.index.primary.get(7))
        assert table.scan_sum(1) == 95

    def test_uncommitted_updates_invisible(self, db, table):
        for key in range(20):
            table.insert([key, 1, 0, 0, 0])
        txn = db.begin_transaction()
        from repro.txn.occ import occ_write
        occ_write(txn.ctx, table, table.index.primary.get(0), {1: 1000})
        assert table.scan_sum(1) == 20
        txn.commit()
        assert table.scan_sum(1) == 1019

    def test_aborted_updates_invisible(self, db, table):
        for key in range(20):
            table.insert([key, 1, 0, 0, 0])
        txn = db.begin_transaction()
        from repro.txn.occ import occ_write
        occ_write(txn.ctx, table, table.index.primary.get(0), {1: 1000})
        txn.abort()
        assert table.scan_sum(1) == 20

    def test_as_of_scan(self, db, table, config):
        for key in range(config.update_range_size):
            table.insert([key, 1, 0, 0, 0])
        t1 = table.clock.now()
        table.update(table.index.primary.get(0), {1: 500})
        expected_before = config.update_range_size
        assert table.scan_sum(1, as_of=t1) == expected_before
        assert table.scan_sum(1) == expected_before - 1 + 500

    def test_as_of_scan_after_merge(self, db, table, config):
        for key in range(config.update_range_size):
            table.insert([key, 1, 0, 0, 0])
        db.run_merges()
        t1 = table.clock.now()
        table.update(table.index.primary.get(0), {1: 500})
        from repro.core.merge import merge_update_range
        merge_update_range(table, table.ranges[0])
        # The merged page is newer than t1; the scan must walk back.
        assert table.scan_sum(1, as_of=t1) == config.update_range_size

    def test_empty_table(self, table):
        assert table.scan_sum(1) == 0


class TestRowLayoutScan:
    @pytest.fixture
    def row_db(self):
        from repro import Database
        config = EngineConfig(
            records_per_page=8, records_per_tail_page=8,
            update_range_size=16, merge_threshold=8, insert_range_size=16,
            layout=Layout.ROW, compress_merged_pages=False,
            background_merge=False)
        database = Database(config)
        yield database
        database.close()

    def test_row_layout_scan_matches(self, row_db):
        table = row_db.create_table("row", num_columns=3, key_index=0)
        for key in range(32):
            table.insert([key, key * 2, 7])
        assert table.scan_sum(1) == sum(key * 2 for key in range(32))
        row_db.run_merges()
        assert table.scan_sum(1) == sum(key * 2 for key in range(32))

    def test_row_layout_update_and_merge(self, row_db):
        table = row_db.create_table("row", num_columns=3, key_index=0)
        for key in range(16):
            table.insert([key, 1, 0])
        row_db.run_merges()
        table.update(table.index.primary.get(0), {1: 100})
        from repro.core.merge import merge_update_range
        merge_update_range(table, table.ranges[0])
        assert table.scan_sum(1) == 16 - 1 + 100
        assert table.read_latest(table.index.primary.get(0))[1] == 100

    def test_row_layout_delete(self, row_db):
        table = row_db.create_table("row", num_columns=3, key_index=0)
        for key in range(16):
            table.insert([key, 1, 0])
        row_db.run_merges()
        table.delete(table.index.primary.get(5))
        assert table.scan_sum(1) == 15
        from repro.core.merge import merge_update_range
        merge_update_range(table, table.ranges[0])
        assert table.scan_sum(1) == 15


class TestScanWithCompressedMergedPages:
    def test_dictionary_pages_scanned(self, db, config):
        # A constant column compresses to a dictionary page; scans must
        # still be exact.
        table = db.create_table("c", num_columns=2, key_index=0)
        for key in range(config.update_range_size):
            table.insert([key, 9])
        db.run_merges()
        update_range = table.ranges[0]
        assert update_range.merged
        from repro.core.compression import DictionaryPage
        chain = table.page_directory.base_chain(
            0, table.schema.physical_index(1))
        assert any(isinstance(page, DictionaryPage) for page in chain)
        assert table.scan_sum(1) == 9 * config.update_range_size
