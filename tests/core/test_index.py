"""Indexes: primary uniqueness, secondary deferred removal, vacuum."""

import pytest

from repro.core.index import IndexManager, PrimaryIndex, SecondaryIndex
from repro.core.schema import TableSchema
from repro.errors import DuplicateKeyError


class TestPrimaryIndex:
    def test_insert_get(self):
        index = PrimaryIndex()
        index.insert(5, 100)
        assert index.get(5) == 100
        assert 5 in index
        assert len(index) == 1

    def test_duplicate(self):
        index = PrimaryIndex()
        index.insert(5, 100)
        with pytest.raises(DuplicateKeyError):
            index.insert(5, 101)

    def test_replace(self):
        index = PrimaryIndex()
        index.insert(5, 100)
        index.replace(5, 200)
        assert index.get(5) == 200

    def test_remove(self):
        index = PrimaryIndex()
        index.insert(5, 100)
        index.remove(5)
        assert index.get(5) is None
        index.remove(5)  # idempotent

    def test_items_snapshot(self):
        index = PrimaryIndex()
        index.insert(1, 10)
        index.insert(2, 20)
        assert sorted(index.items()) == [(1, 10), (2, 20)]


class TestSecondaryIndex:
    def test_lookup_candidates(self):
        index = SecondaryIndex(column=2)
        index.insert("x", 1)
        index.insert("x", 2)
        index.insert("y", 3)
        assert index.lookup("x") == frozenset({1, 2})
        assert index.lookup("z") == frozenset()

    def test_stale_entries_kept_until_vacuum(self):
        # Footnote 3: removal of superseded values is deferred so
        # snapshot queries can keep using the index.
        index = SecondaryIndex(column=1)
        index.insert("old", 1)
        index.insert("new", 1)
        index.mark_stale("old", 1, superseded_at=100)
        assert index.lookup("old") == frozenset({1})
        assert index.stale_entries == 1

    def test_vacuum_respects_active_snapshots(self):
        index = SecondaryIndex(column=1)
        index.insert("old", 1)
        index.mark_stale("old", 1, superseded_at=100)
        # A query from before the supersession is still active.
        assert index.vacuum(oldest_active_begin=50) == 0
        assert index.lookup("old") == frozenset({1})
        # Once every active query began after the supersession, drop it.
        assert index.vacuum(oldest_active_begin=150) == 1
        assert index.lookup("old") == frozenset()

    def test_vacuum_with_no_queries(self):
        index = SecondaryIndex(column=1)
        index.insert("old", 1)
        index.mark_stale("old", 1, superseded_at=100)
        assert index.vacuum(None) == 1

    def test_range_lookup(self):
        index = SecondaryIndex(column=1)
        for value in (1, 5, 9):
            index.insert(value, value * 10)
        assert index.lookup_range(2, 9) == frozenset({50, 90})

    def test_len_counts_entries(self):
        index = SecondaryIndex(column=1)
        index.insert("a", 1)
        index.insert("a", 2)
        index.insert("b", 3)
        assert len(index) == 3


class TestIndexManager:
    def _manager(self) -> IndexManager:
        return IndexManager(TableSchema("t", num_columns=3, key_index=0))

    def test_create_secondary(self):
        manager = self._manager()
        index = manager.create_secondary(1)
        assert manager.secondary(1) is index
        assert manager.create_secondary(1) is index  # idempotent

    def test_key_column_rejected(self):
        manager = self._manager()
        with pytest.raises(ValueError):
            manager.create_secondary(0)

    def test_on_insert_populates_all(self):
        manager = self._manager()
        manager.create_secondary(1)
        manager.create_secondary(2)
        manager.on_insert(7, [0, "a", "b"])
        assert manager.secondary(1).lookup("a") == frozenset({7})
        assert manager.secondary(2).lookup("b") == frozenset({7})

    def test_on_update_adds_new_marks_old(self):
        manager = self._manager()
        manager.create_secondary(1)
        manager.on_insert(7, [0, "a", "b"])
        manager.on_update(7, 1, "a", "a2", superseded_at=10)
        assert manager.secondary(1).lookup("a2") == frozenset({7})
        assert manager.secondary(1).lookup("a") == frozenset({7})
        assert manager.vacuum(None) == 1
        assert manager.secondary(1).lookup("a") == frozenset()

    def test_drop_secondary(self):
        manager = self._manager()
        manager.create_secondary(1)
        manager.drop_secondary(1)
        assert manager.secondary(1) is None
