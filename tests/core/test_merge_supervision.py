"""Merge-engine robustness: crash accounting, quarantine, stop timeouts.

The threaded restart story lives in ``tests/health/test_health.py``;
these tests pin the same machinery *synchronously* — ``run_pending``
propagates a task crash after accounting for it, the crash counter
walks a range into quarantine deterministically, and ``stop()``
detects (rather than hides) a worker that refuses to die.
"""

import warnings

import pytest

from repro import Database, EngineConfig
from repro.core.merge import MergeEngine
from repro.fault import FAULTS, FaultError
from repro.obs.registry import MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_registry():
    FAULTS.clear()
    yield
    FAULTS.clear()


def make_db(**overrides):
    base = dict(records_per_page=8, records_per_tail_page=8,
                update_range_size=16, merge_threshold=4,
                insert_range_size=16, background_merge=False,
                merge_quarantine_after=3)
    base.update(overrides)
    return Database(EngineConfig(**base))


def load_with_updates(db, rows=16, rounds=2):
    db.create_table("t", 3)
    query = db.query("t")
    for key in range(rows):
        query.insert(key, key, key)
    for round_no in range(rounds):
        for key in range(rows):
            query.update(key, None, round_no, None)
    return query


class TestSynchronousCrashAccounting:
    def test_run_pending_propagates_after_accounting(self):
        with make_db() as db:
            load_with_updates(db)
            FAULTS.configure("merge.before_install=raise:1")
            with pytest.raises(FaultError):
                db.run_merges()
            snapshot = db.metrics()["merge"]
            assert snapshot["task_crashes"] == 1
            assert "merge.before_install" in db.merge_engine.last_crash
            # The crashed task re-enqueued: a clean retry drains it.
            assert db.run_merges() >= 1
            assert db.merge_engine.quarantined_count == 0

    def test_repeated_crashes_quarantine_the_range(self):
        with make_db() as db:
            query = load_with_updates(db)
            FAULTS.configure("merge.before_install=raise:100")
            crashes = 0
            # Each drain crashes once and re-enqueues, until the third
            # crash of the same range trips the quarantine threshold.
            while db.merge_engine.quarantined_count == 0 and crashes < 20:
                with pytest.raises(FaultError):
                    db.run_merges()
                crashes += 1
            assert db.merge_engine.quarantined_count >= 1
            assert db.metrics()["merge"]["quarantined_ranges"] >= 1
            FAULTS.clear()

            # Quarantined ranges drop further notifications instead of
            # re-entering the queue...
            [task] = db.merge_engine.quarantined_tasks()
            db.merge_engine.notifier(task.table, task.range_id, task.kind)
            assert db.merge_engine.backlog == 0
            assert db.metrics()["merge"]["quarantine_drops"] == 1
            # ...and the range still serves correct (row-plane) answers.
            for round_no in range(4):
                for key in range(16):
                    query.update(key, None, 100 + round_no, None)
            assert query.select(3, 0, [1, 1, 1])[0].columns[1] == 103

    def test_unquarantine_restores_merging(self):
        with make_db() as db:
            load_with_updates(db)
            FAULTS.configure("merge.before_install=raise:100")
            for _ in range(10):
                if db.merge_engine.quarantined_count:
                    break
                with pytest.raises(FaultError):
                    db.run_merges()
            FAULTS.clear()
            [task] = db.merge_engine.quarantined_tasks()
            assert db.merge_engine.unquarantine(
                task.table, task.range_id, task.kind)
            assert not db.merge_engine.unquarantine(
                task.table, task.range_id, task.kind)  # already lifted
            assert db.run_merges() >= 1
            assert db.metrics()["merge"]["ranges_merged"] >= 1


class TestStopTimeout:
    class StuckThread:
        """A thread handle that never dies (until told to)."""

        def __init__(self):
            self.stuck = True

        def join(self, timeout=None):
            pass

        def is_alive(self):
            return self.stuck

    def test_stop_timeout_is_counted_and_handle_kept(self):
        registry = MetricsRegistry()
        engine = MergeEngine(metrics=registry)
        stuck = self.StuckThread()
        engine._thread = stuck
        with pytest.warns(RuntimeWarning, match="did not stop"):
            engine.stop(drain=False)
        assert registry.snapshot()["merge"]["stop_timeouts"] == 1
        # The handle survives so `alive` stays truthful and a later
        # stop() can retry.
        assert engine._thread is stuck
        assert engine.alive
        stuck.stuck = False
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine.stop(drain=False)
        assert engine._thread is None
        assert registry.snapshot()["merge"]["stop_timeouts"] == 1
