"""Schema Encoding bitmaps: the paper's "0101" / "0001*" notation."""

import pytest

from repro.core.encoding import SchemaEncoding


class TestConstruction:
    def test_empty(self):
        encoding = SchemaEncoding.empty(4)
        assert str(encoding) == "0000"
        assert not encoding.any_updated

    def test_from_columns(self):
        # Table 2 of the paper: updating columns A and C of (A, B, C)
        # preceded by the key gives "0101" over (key, A, B, C).
        encoding = SchemaEncoding.from_columns(4, [1, 3])
        assert str(encoding) == "0101"

    def test_from_string(self):
        encoding = SchemaEncoding.from_string("0101")
        assert encoding.num_columns == 4
        assert list(encoding.updated_columns()) == [1, 3]

    def test_snapshot_flag_string(self):
        encoding = SchemaEncoding.from_string("0001*")
        assert encoding.is_snapshot
        assert str(encoding) == "0001*"

    def test_invalid_string(self):
        with pytest.raises(ValueError):
            SchemaEncoding.from_string("01x1")

    def test_out_of_range_column(self):
        with pytest.raises(ValueError):
            SchemaEncoding.from_columns(3, [3])

    def test_bits_out_of_range(self):
        with pytest.raises(ValueError):
            SchemaEncoding(2, 4)


class TestPackedForm:
    def test_round_trip(self):
        for text in ("0000", "1010", "0001*", "1111*", "0100"):
            encoding = SchemaEncoding.from_string(text)
            packed = encoding.to_int()
            assert SchemaEncoding.from_int(encoding.num_columns,
                                           packed) == encoding

    def test_snapshot_bit_is_msb_plus_one(self):
        encoding = SchemaEncoding.from_string("1111*")
        assert encoding.to_int() == 0b11111

    def test_zero_columns(self):
        encoding = SchemaEncoding.empty(0)
        assert str(encoding) == ""
        assert encoding.to_int() == 0


class TestQueries:
    def test_is_updated(self):
        encoding = SchemaEncoding.from_string("0101")
        assert not encoding.is_updated(0)
        assert encoding.is_updated(1)
        assert not encoding.is_updated(2)
        assert encoding.is_updated(3)

    def test_is_updated_bounds(self):
        encoding = SchemaEncoding.from_string("01")
        with pytest.raises(ValueError):
            encoding.is_updated(2)


class TestAlgebra:
    def test_with_column(self):
        encoding = SchemaEncoding.from_string("0100")
        assert str(encoding.with_column(3)) == "0101"

    def test_union(self):
        a = SchemaEncoding.from_string("0100")
        b = SchemaEncoding.from_string("0001")
        assert str(a.union(b)) == "0101"

    def test_union_drops_snapshot(self):
        a = SchemaEncoding.from_string("0100*")
        assert not a.union(SchemaEncoding.empty(4)).is_snapshot

    def test_union_size_mismatch(self):
        with pytest.raises(ValueError):
            SchemaEncoding.empty(3).union(SchemaEncoding.empty(4))

    def test_as_snapshot_round_trip(self):
        encoding = SchemaEncoding.from_string("0011")
        assert encoding.as_snapshot().is_snapshot
        assert not encoding.as_snapshot().without_snapshot().is_snapshot

    def test_equality_and_hash(self):
        a = SchemaEncoding.from_string("0101")
        b = SchemaEncoding.from_string("0101")
        c = SchemaEncoding.from_string("0101*")
        assert a == b and hash(a) == hash(b)
        assert a != c
