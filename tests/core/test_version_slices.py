"""Version-horizon slices: the storage layer of the snapshot plane.

``Table.read_version_slices`` must classify every range offset for a
snapshot at time T exactly once — visible (the base value *is* the
version visible at T), walk (straddles the merge horizon, dirty, or
unreadable — replay through ``assemble_version``), or dropped
(inserted after T, deleted at or before T, tombstoned) — and the
horizon summary (``unmerged_min_time`` / ``merged_max_time``) must let
a frozen partition serve even its dirty records from the base slices.
"""

import pytest

from repro import Database, EngineConfig
from repro.core.merge import merge_columns, merge_update_range
from repro.core.table import DELETED
from repro.core.types import Layout
from repro.core.version import visible_as_of
from repro.exec.plan import plan_scan


@pytest.fixture
def bank(db, table, query):
    """32 rows across two update ranges, base pages materialised."""
    for key in range(32):
        query.insert(key, key * 2, key * 3, key * 5, 7)
    db.run_merges()
    return query


class TestReadVersionSlices:
    def test_clean_range_all_visible_when_settled(self, db, table, bank):
        update_range = table.sorted_ranges()[0]
        now = table.clock.now()
        sliced = table.read_version_slices(update_range, (1,), now)
        assert sliced is not None
        assert sliced.dirty == []
        assert sliced.valid.all()
        assert sliced.columns[1][0].tolist() == \
            [key * 2 for key in range(16)]

    def test_inserts_after_snapshot_dropped_without_walk(self, db, table,
                                                         bank):
        update_range = table.sorted_ranges()[0]
        start_times = [
            table._read_base_cell(update_range, offset, 2)  # START_TIME
            for offset in range(4)
        ]
        # A snapshot older than record 2's insert sees records 0-1 only
        # — and record 2+ must not even be walked (no version can
        # predate its insert).
        as_of = start_times[2] - 1
        sliced = table.read_version_slices(update_range, (1,), as_of)
        assert sliced.dirty == []
        assert sliced.valid.tolist() == \
            [offset < 2 for offset in range(16)]

    def test_straddling_record_goes_to_walk(self, db, table, bank):
        as_of = table.clock.now()
        bank.update(3, None, 999, None, None, None)
        update_range = table.sorted_ranges()[0]
        merge_update_range(table, update_range)
        # The update is consolidated: base slice holds 999, but the
        # snapshot predates it — the record must walk, not serve.
        sliced = table.read_version_slices(update_range, (1,), as_of)
        assert 3 in sliced.dirty
        assert not sliced.valid[3]
        assert table.assemble_version(
            update_range.start_rid + 3, (1,),
            visible_as_of(as_of)) == {1: 6}
        # At a snapshot after the update the same record serves.
        sliced = table.read_version_slices(update_range, (1,),
                                           table.clock.now())
        assert sliced.dirty == []
        assert sliced.columns[1][0][3] == 999

    def test_merged_delete_straddle_walks_older_version(self, db, table,
                                                        bank):
        before = table.clock.now()
        bank.delete(6)
        update_range = table.sorted_ranges()[0]
        merge_update_range(table, update_range)
        # Deleted and consolidated: the key slot is ∅ now, but the
        # pre-delete version is visible at `before` — walk resurrects
        # it from the delete's snapshot record.
        sliced = table.read_version_slices(update_range, (1,), before)
        assert 6 in sliced.dirty
        rid = update_range.start_rid + 6
        assert table.assemble_version(rid, (1,),
                                      visible_as_of(before)) == {1: 12}
        # After the delete the slot is simply dead — no walk.
        sliced = table.read_version_slices(update_range, (1,),
                                           table.clock.now())
        assert 6 not in sliced.dirty
        assert not sliced.valid[6]

    def test_frozen_partition_serves_dirty_from_base(self, db, table,
                                                     bank):
        as_of = table.clock.now()
        for key in range(16):  # 100% churn after the snapshot
            bank.update(key, None, 1000 + key, None, None, None)
        update_range = table.sorted_ranges()[0]
        assert len(update_range.dirty_counts) == 16
        # Horizon: merged content predates as_of, every unmerged
        # update postdates it — frozen, zero walks.
        sliced = table.read_version_slices(update_range, (1,), as_of)
        assert sliced.dirty == []
        assert sliced.valid.all()
        assert sliced.columns[1][0].tolist() == \
            [key * 2 for key in range(16)]

    def test_unfrozen_dirty_records_walk(self, db, table, bank):
        bank.update(3, None, 999, None, None, None)
        update_range = table.sorted_ranges()[0]
        now = table.clock.now()  # the unmerged update IS visible now
        sliced = table.read_version_slices(update_range, (1,), now)
        assert 3 in sliced.dirty
        assert not sliced.valid[3]

    def test_decoupled_merge_detected_via_metadata_tps(self, db, table,
                                                       bank):
        as_of = table.clock.now()
        bank.update(2, None, 777, None, None, None)
        update_range = table.sorted_ranges()[0]
        # Consolidate ONLY column 1: data pages advance their TPS while
        # Last Updated keeps the old lineage — the mismatch must send
        # the affected pages to the walk, or the snapshot would read
        # the too-new 777 as of `as_of`.
        merge_columns(table, update_range, (1,))
        sliced = table.read_version_slices(update_range, (1,), as_of)
        assert 2 in sliced.dirty
        assert not sliced.valid[2]

    def test_row_layout_and_unmerged_decline(self, config):
        row_db = Database(config.with_overrides(
            layout=Layout.ROW, compress_merged_pages=False))
        try:
            row_table = row_db.create_table("rows", num_columns=5)
            for key in range(16):
                row_table.insert([key, 1, 2, 3, 4])
            row_db.run_merges()
            update_range = row_table.sorted_ranges()[0]
            assert row_table.read_version_slices(
                update_range, (1,), row_table.clock.now()) is None
        finally:
            row_db.close()

    def test_agrees_with_assemble_version_everywhere(self, db, table,
                                                     bank):
        timestamps = [table.clock.now()]
        for key in range(0, 32, 3):
            bank.update(key, None, key + 100, None, None, None)
        timestamps.append(table.clock.now())
        for update_range in table.sorted_ranges():
            merge_update_range(table, update_range)
        for key in range(0, 32, 5):
            bank.update(key, None, key + 200, None, None, None)
        timestamps.append(table.clock.now())
        for as_of in timestamps:
            predicate = visible_as_of(as_of)
            for update_range in table.sorted_ranges():
                sliced = table.read_version_slices(update_range, (1,),
                                                   as_of)
                values, nulls = sliced.columns[1]
                for offset in range(update_range.size):
                    rid = update_range.start_rid + offset
                    expected = table.assemble_version(rid, (1,), predicate)
                    if sliced.valid[offset]:
                        assert not nulls[offset]
                        assert expected == {1: int(values[offset])}
                    elif offset not in sliced.dirty:
                        # Dropped: invisible or deleted at as_of.
                        assert expected is None or expected is DELETED


class TestHorizonSummary:
    def test_append_and_merge_maintain_horizon(self, db, table, bank):
        update_range = table.sorted_ranges()[0]
        assert update_range.unmerged_min_time is None
        assert update_range.merged_max_time > 0
        first = table.clock.now() + 1
        bank.update(0, None, 1, None, None, None)
        bank.update(1, None, 2, None, None, None)
        assert update_range.unmerged_min_time is not None
        assert update_range.unmerged_min_time >= first
        merged_before = update_range.merged_max_time
        merge_update_range(table, update_range)
        assert update_range.unmerged_min_time is None
        assert update_range.merged_max_time > merged_before

    def test_planner_dirty_fraction_degrades_to_row_plane(self, db, table,
                                                          bank):
        # Below the threshold: vectorised; at/above: row plane.
        limit = table.config.vectorized_dirty_fraction
        update_range = table.sorted_ranges()[0]
        churn = int(limit * update_range.size) + 1
        for key in range(churn):
            bank.update(key, None, 50 + key, None, None, None)
        partitions = plan_scan(table)
        assert partitions[0].vectorized is False
        assert partitions[1].vectorized is True  # untouched range

    def test_planner_frozen_override_keeps_vector_plane(self, db, table,
                                                        bank):
        as_of = table.clock.now()
        update_range = table.sorted_ranges()[0]
        for key in range(update_range.size):
            bank.update(key, None, 50 + key, None, None, None)
        # Latest-visibility plan degrades under churn …
        assert plan_scan(table)[0].vectorized is False
        # … but the frozen snapshot keeps the horizon plane.
        assert plan_scan(table, as_of=as_of)[0].vectorized is True
        assert plan_scan(table, as_of=table.clock.now())[0] \
            .vectorized is False
