"""Compression: codecs, dictionary pages, historic tail compression."""

import pytest

from repro.core.compression import (CompressedTailPart, DictionaryPage,
                                    compress_historic_tails, delta_decode,
                                    delta_encode, maybe_compress_page)
from repro.core.page import Page
from repro.core.types import NULL, PageKind, is_null
from repro.core.version import visible_as_of


class TestDeltaCodec:
    def test_round_trip(self):
        values = [10, 12, 12, 40, 7]
        first, deltas = delta_encode(values)
        assert delta_decode(first, deltas) == values

    def test_empty(self):
        assert delta_encode([]) == (0, [])
        assert delta_decode(0, []) == [0]

    def test_single(self):
        assert delta_decode(*delta_encode([5])) == [5]

    def test_monotone_compresses_small(self):
        first, deltas = delta_encode(list(range(100, 200)))
        assert all(delta == 1 for delta in deltas)


class TestDictionaryPage:
    def _page(self, values):
        page = Page(1, PageKind.MERGED, len(values))
        page.fill(values)
        return page

    def test_round_trip_values(self):
        raw = [5, 5, 7, 5, 7, 7, 5, 5] * 4
        compressed = maybe_compress_page(self._page(raw))
        assert isinstance(compressed, DictionaryPage)
        assert [compressed.read_slot(i) for i in range(len(raw))] == raw
        assert list(compressed.iter_values()) == raw

    def test_distinct_count(self):
        raw = [1, 2, 1, 2] * 8
        compressed = maybe_compress_page(self._page(raw))
        assert isinstance(compressed, DictionaryPage)
        assert compressed.distinct_values == 2

    def test_numpy_view_and_fast_sum(self):
        raw = [3, 3, 9, 3] * 8
        compressed = maybe_compress_page(self._page(raw))
        array = compressed.as_numpy()
        assert array is not None and int(array.sum()) == sum(raw)
        assert compressed.fast_sum() == sum(raw)

    def test_null_values_supported(self):
        raw = [NULL, 1, NULL, 1] * 8
        compressed = maybe_compress_page(self._page(raw))
        assert isinstance(compressed, DictionaryPage)
        assert is_null(compressed.read_slot(0))
        assert compressed.as_numpy() is None
        assert compressed.fast_sum() is None

    def test_high_cardinality_kept_raw(self):
        raw = list(range(32))
        page = self._page(raw)
        assert maybe_compress_page(page) is page

    def test_tiny_page_kept_raw(self):
        page = self._page([1, 1, 1])
        assert maybe_compress_page(page) is page

    def test_lineage_preserved(self):
        page = self._page([1, 1] * 8)
        page.set_lineage(42, 3)
        compressed = maybe_compress_page(page)
        assert compressed.tps_rid == 42
        assert compressed.merge_count == 3

    def test_page_interface(self):
        raw = [2, 2, 4, 4] * 4
        compressed = maybe_compress_page(self._page(raw))
        assert compressed.frozen
        assert compressed.num_records == len(raw)
        assert not compressed.has_capacity
        assert compressed.is_written(0)
        assert not compressed.is_written(len(raw))


def _prepare_merged_history(db, table, config):
    """Fill a range, update some records, merge, return the rids."""
    rids = [table.insert([key, key * 10, 0, 0, 0])
            for key in range(config.update_range_size)]
    db.run_merges()
    for rid in rids[:4]:
        table.update(rid, {1: 111})
        table.update(rid, {1: 222})
    from repro.core.merge import merge_update_range
    update_range, _ = table.locate(rids[0])
    merge_update_range(table, update_range)
    return rids, update_range


class TestHistoricCompression:
    def test_compresses_whole_pages_below_watermark(self, db, table,
                                                    config):
        rids, update_range = _prepare_merged_history(db, table, config)
        compressed = compress_historic_tails(table, update_range)
        tail = update_range.tail
        assert compressed > 0
        assert compressed % tail.page_capacity == 0
        assert tail.compressed_upto == compressed

    def test_chain_reads_cross_compression_boundary(self, db, table,
                                                    config):
        rids, update_range = _prepare_merged_history(db, table, config)
        t_all = table.clock.now()
        compress_historic_tails(table, update_range)
        db.epoch_manager.reclaim()
        # Latest and historic reads still work through the parts.
        assert table.read_latest(rids[0])[1] == 222
        assert table.read_relative_version(rids[0], (1,), -1) == {1: 111}
        assert table.read_relative_version(rids[0], (1,), -2) == {1: 0}

    def test_groups_ordered_by_base_rid(self, db, table, config):
        rids, update_range = _prepare_merged_history(db, table, config)
        compress_historic_tails(table, update_range)
        parts = update_range.tail.compressed_parts
        assert parts
        base_rids = [group.base_rid for group in parts[0].groups()]
        assert base_rids == sorted(base_rids)

    def test_versions_inlined_per_group(self, db, table, config):
        rids, update_range = _prepare_merged_history(db, table, config)
        compress_historic_tails(table, update_range)
        part = update_range.tail.compressed_parts[0]
        group = part.groups()[0]
        times = group.start_times()
        assert times == sorted(times)  # temporally ordered inline

    def test_active_snapshot_blocks_compression(self, db, table, config):
        rids, update_range = _prepare_merged_history(db, table, config)
        handle = db.epoch_manager.enter_query(begin_time=1)
        try:
            assert compress_historic_tails(table, update_range) == 0
        finally:
            db.epoch_manager.exit_query(handle)

    def test_tombstones_reclaimed(self, db, table, config):
        rids = [table.insert([key, 0, 0, 0, 0])
                for key in range(config.update_range_size)]
        db.run_merges()
        txn = db.begin_transaction()
        from repro.txn.occ import occ_write
        occ_write(txn.ctx, table, rids[0], {1: 5})
        txn.abort()
        # Fill the rest of the tail page with committed updates.
        update_range, _ = table.locate(rids[0])
        while update_range.tail.num_allocated() \
                % update_range.tail.page_capacity != 0:
            table.update(rids[1], {1: 7})
        from repro.core.merge import merge_update_range
        merge_update_range(table, update_range)
        compressed = compress_historic_tails(table, update_range)
        assert compressed > 0
        part = update_range.tail.compressed_parts[0]
        assert part.reclaimed_tombstones >= 1
        # Reads still skip the reclaimed tombstone.
        assert table.read_latest(rids[0])[1] == 0

    def test_old_pages_retired(self, db, table, config):
        rids, update_range = _prepare_merged_history(db, table, config)
        tail = update_range.tail
        boundary = (update_range.merged_upto // tail.page_capacity) \
            * tail.page_capacity
        pages = tail.pages_for_slots(0, boundary)
        compress_historic_tails(table, update_range)
        db.epoch_manager.reclaim()
        assert pages and all(page.deallocated for page in pages)

    def test_database_compress_history(self, db, table, config):
        _prepare_merged_history(db, table, config)
        assert db.compress_history() > 0
