"""TailSegment mechanics: blocks, offsets, lazy columns, implicit nulls."""

import threading

import pytest

from repro.core.page import Page
from repro.core.page_directory import PageDirectory
from repro.core.rid import MonotonicCounter, RIDAllocator
from repro.core.schema import (BASE_RID_COLUMN, SCHEMA_ENCODING_COLUMN,
                               START_TIME_COLUMN)
from repro.core.table import TailSegment
from repro.core.types import Layout, is_null
from repro.errors import StorageError


def _segment(page_capacity=4, block_size=8, layout=Layout.COLUMNAR,
             width=9) -> TailSegment:
    return TailSegment(
        range_id=0, layout=layout, width=width,
        page_capacity=page_capacity, block_size=block_size,
        rid_allocator=RIDAllocator(), page_counter=MonotonicCounter(),
        page_directory=PageDirectory())


class TestAllocation:
    def test_offsets_ascend_rids_descend(self):
        segment = _segment()
        pairs = [segment.allocate() for _ in range(5)]
        offsets = [offset for _, offset in pairs]
        rids = [rid for rid, _ in pairs]
        assert offsets == list(range(5))
        assert rids == sorted(rids, reverse=True)

    def test_block_extension_preserves_mapping(self):
        segment = _segment(block_size=4)
        pairs = [segment.allocate() for _ in range(10)]  # 3 blocks
        assert segment.num_reserved_slots() == 12
        for rid, offset in pairs:
            assert segment.locate(rid) == offset
            assert segment.rid_at(offset) == rid

    def test_unknown_rid(self):
        segment = _segment()
        segment.allocate()
        with pytest.raises(StorageError):
            segment.locate(123)

    def test_unreserved_offset(self):
        segment = _segment(block_size=4)
        with pytest.raises(StorageError):
            segment.rid_at(4)

    def test_concurrent_allocations_unique(self):
        segment = _segment(block_size=16)
        results = []
        lock = threading.Lock()

        def worker():
            for _ in range(50):
                pair = segment.allocate()
                with lock:
                    results.append(pair)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        rids = [rid for rid, _ in results]
        offsets = [offset for _, offset in results]
        assert len(set(rids)) == 200
        assert len(set(offsets)) == 200


class TestCellIO:
    def test_lazy_column_materialisation(self):
        # "A column that has never been updated does not even have to
        # be materialized" (Section 3.1).
        segment = _segment()
        segment.allocate()
        segment.write_record(0, {SCHEMA_ENCODING_COLUMN: 1,
                                 START_TIME_COLUMN: 5,
                                 BASE_RID_COLUMN: 1,
                                 7: 42})
        assert segment.materialized_columns() == [SCHEMA_ENCODING_COLUMN,
                                                  START_TIME_COLUMN,
                                                  BASE_RID_COLUMN, 7]
        assert segment.record_cell(0, 7) == 42
        # Never-touched column: implicit special null.
        assert is_null(segment.record_cell(0, 8))
        assert not segment.has_value(0, 8)

    def test_record_written_via_start_time(self):
        segment = _segment()
        segment.allocate()
        assert not segment.record_written(0)
        segment.write_record(0, {START_TIME_COLUMN: 5})
        assert segment.record_written(0)

    def test_pages_span_offsets(self):
        segment = _segment(page_capacity=2, block_size=8)
        for offset in range(6):
            segment.allocate()
            segment.write_record(offset, {START_TIME_COLUMN: offset})
        pages = segment.pages_for_column(START_TIME_COLUMN)
        assert len(pages) == 3
        covered = segment.pages_for_slots(0, 4)
        assert len(covered) == 2

    def test_row_layout_full_width(self):
        segment = _segment(layout=Layout.ROW, width=6)
        segment.allocate()
        segment.write_record(0, {START_TIME_COLUMN: 9, 5: 1})
        assert segment.record_cell(0, 5) == 1
        assert is_null(segment.record_cell(0, 4))
        assert segment.record_written(0)

    def test_replace_cell_refines_in_place(self):
        segment = _segment()
        segment.allocate()
        segment.write_record(0, {START_TIME_COLUMN: 77})
        assert segment.replace_cell(0, START_TIME_COLUMN, 77, 99)
        assert segment.record_cell(0, START_TIME_COLUMN) == 99
        # CAS semantics: stale expectation fails.
        assert not segment.replace_cell(0, START_TIME_COLUMN, 77, 11)


class TestTombstones:
    def test_mark_and_check(self):
        segment = _segment()
        segment.allocate()
        assert not segment.is_tombstone(0)
        segment.mark_tombstone(0)
        assert segment.is_tombstone(0)
