"""Column-slice reads: the storage layer of the vectorised scan plane.

``Table.read_column_slices`` must classify every range offset exactly
once — valid (base value authoritative), dirty (patch via the
per-record walk), or dead (tombstone / merged delete) — and the slice
values must equal what the per-record read path returns for the same
records. ``read_latest_values`` (the dict-free keyed fast path) must
agree with ``read_latest_many`` on every rid.
"""

import numpy as np
import pytest

from repro import Database, EngineConfig
from repro.core.merge import merge_update_range
from repro.core.table import DELETED
from repro.core.types import Layout, NULL, is_null


@pytest.fixture
def bank(db, table, query):
    """32 rows across two update ranges, base pages materialised."""
    for key in range(32):
        query.insert(key, key * 2, key * 3, key * 5, 7)
    db.run_merges()
    return query


class TestReadColumnSlices:
    def test_clean_range_all_valid(self, db, table, bank):
        update_range = table.sorted_ranges()[0]
        sliced = table.read_column_slices(update_range, (1, 3))
        assert sliced is not None
        assert sliced.dirty == []
        assert sliced.valid.all()
        values, nulls = sliced.columns[1]
        assert values.tolist() == [key * 2 for key in range(16)]
        assert not nulls.any()

    def test_unmerged_range_declines(self, db, table, query):
        query.insert(0, 1, 2, 3, 4)  # insert range not yet full/merged
        update_range = table.sorted_ranges()[0]
        assert table.read_column_slices(update_range, (1,)) is None

    def test_dirty_records_excluded_and_listed(self, db, table, bank):
        bank.update(3, None, 999, None, None, None)
        bank.update(5, None, None, 888, None, None)
        update_range = table.sorted_ranges()[0]
        sliced = table.read_column_slices(update_range, (1,))
        assert set(sliced.dirty) == {3, 5}
        assert not sliced.valid[3] and not sliced.valid[5]
        # The clean rest stays valid with base values intact.
        assert sliced.valid.sum() == 14
        assert sliced.columns[1][0][4] == 8

    def test_merged_delete_masked_out(self, db, table, bank):
        bank.delete(6)
        rid = table.index.primary.get(6)
        update_range = table.locate(rid)[0]
        merge_update_range(table, update_range)
        sliced = table.read_column_slices(update_range, (1,))
        assert sliced.dirty == []
        assert not sliced.valid[6]
        assert sliced.valid.sum() == 15

    def test_non_int_page_goes_dirty(self, db, table, query):
        for key in range(16):
            query.insert(key, "text-%d" % key, key, key, key)
        db.run_merges()
        update_range = table.sorted_ranges()[0]
        sliced = table.read_column_slices(update_range, (1,))
        # Column 1's pages decline the NumPy view: every record of the
        # declining pages is patched per-record instead.
        assert set(sliced.dirty) == set(range(16))
        assert not sliced.valid.any()
        # A pure-int column of the same range still vectorises.
        sliced = table.read_column_slices(update_range, (2,))
        assert sliced.dirty == []
        assert sliced.valid.all()

    def test_row_layout_declines(self):
        db = Database(EngineConfig(
            records_per_page=8, records_per_tail_page=8,
            update_range_size=16, merge_threshold=8, insert_range_size=16,
            background_merge=False, layout=Layout.ROW,
            compress_merged_pages=False))
        try:
            table = db.create_table("rows", num_columns=3)
            from repro.core.query import Query
            query = Query(table)
            for key in range(16):
                query.insert(key, key, key)
            db.run_merges()
            update_range = table.sorted_ranges()[0]
            assert table.read_column_slices(update_range, (1,)) is None
        finally:
            db.close()

    def test_slices_match_per_record_reads(self, db, table, bank):
        bank.update(2, None, 1234, None, None, None)
        bank.delete(9)
        update_range = table.sorted_ranges()[0]
        sliced = table.read_column_slices(update_range, (1,))
        values = sliced.columns[1][0]
        for offset in range(update_range.size):
            rid = update_range.start_rid + offset
            if not sliced.valid[offset]:
                continue
            result = table.read_latest_fast(rid, (1,))
            assert result not in (None, DELETED)
            assert values[offset] == result[1], offset


class TestReadLatestValues:
    def _assert_matches_many(self, table, rids, column, txn_id=None):
        values = table.read_latest_values(rids, column, txn_id)
        many = table.read_latest_many(rids, (column,), txn_id)
        expected = [many[rid][column] for rid in rids
                    if many[rid] is not None and many[rid] is not DELETED]
        assert values == expected

    def test_clean_and_dirty_mix(self, db, table, bank):
        bank.update(3, None, 999, None, None, None)
        bank.delete(7)
        rids = [table.index.primary.get(key) for key in range(32)
                if table.index.primary.get(key) is not None]
        self._assert_matches_many(table, rids, 1)

    def test_unmerged_range(self, db, table, query):
        for key in range(6):
            query.insert(key, key * 11, 0, 0, 0)
        rids = [table.index.primary.get(key) for key in range(6)]
        assert table.read_latest_values(rids, 1) \
            == [key * 11 for key in range(6)]

    def test_null_values_included(self, db, table, query):
        for key in range(4):
            query.insert(key, NULL if key % 2 else key, 0, 0, 0)
        db.run_merges()
        rids = [table.index.primary.get(key) for key in range(4)]
        values = table.read_latest_values(rids, 1)
        assert [v if not is_null(v) else "null" for v in values] \
            == [0, "null", 2, "null"]

    def test_flag_off_matches(self):
        db = Database(EngineConfig(
            records_per_page=8, records_per_tail_page=8,
            update_range_size=16, merge_threshold=8, insert_range_size=16,
            background_merge=False, batched_reads=False))
        try:
            table = db.create_table("plain", num_columns=3)
            from repro.core.query import Query
            query = Query(table)
            for key in range(12):
                query.insert(key, key * 7, 0)
            db.run_merges()
            query.update(4, None, 123, None)
            rids = [table.index.primary.get(key) for key in range(12)]
            expected = [key * 7 for key in range(12)]
            expected[4] = 123
            assert table.read_latest_values(rids, 1) == expected
        finally:
            db.close()
