"""Database wiring: tables, transactions, maintenance entry points."""

import pytest

from repro import Database, EngineConfig, IsolationLevel
from repro.errors import LStoreError, SchemaMismatchError


class TestTables:
    def test_create_get(self, db):
        table = db.create_table("a", num_columns=2)
        assert db.get_table("a") is table
        assert db.query("a").table is table

    def test_duplicate_name(self, db):
        db.create_table("a", num_columns=2)
        with pytest.raises(SchemaMismatchError):
            db.create_table("a", num_columns=2)

    def test_unknown_table(self, db):
        with pytest.raises(LStoreError):
            db.get_table("nope")

    def test_drop(self, db):
        db.create_table("a", num_columns=2)
        db.drop_table("a")
        with pytest.raises(LStoreError):
            db.get_table("a")

    def test_shared_clock(self, db):
        a = db.create_table("a", num_columns=2)
        b = db.create_table("b", num_columns=2)
        assert a.clock is b.clock is db.clock

    def test_per_table_config_override(self, db, config):
        custom = config.with_overrides(merge_threshold=3)
        table = db.create_table("a", num_columns=2, config=custom)
        assert table.config.merge_threshold == 3

    def test_named_columns(self, db):
        table = db.create_table("a", num_columns=2,
                                column_names=("id", "value"))
        assert table.schema.column_index("value") == 1


class TestTransactions:
    def test_cross_table_transaction(self, db):
        a = db.create_table("a", num_columns=2)
        b = db.create_table("b", num_columns=2)
        txn = db.begin_transaction()
        txn.insert(a, [1, 10])
        txn.insert(b, [1, 20])
        assert txn.commit()
        assert db.query("a").select(1, 0, None)[0][1] == 10
        assert db.query("b").select(1, 0, None)[0][1] == 20

    def test_cross_table_abort(self, db):
        a = db.create_table("a", num_columns=2)
        b = db.create_table("b", num_columns=2)
        txn = db.begin_transaction()
        txn.insert(a, [1, 10])
        txn.insert(b, [1, 20])
        txn.abort()
        assert db.query("a").select(1, 0, None) == []
        assert db.query("b").select(1, 0, None) == []

    def test_isolation_parameter(self, db):
        db.create_table("a", num_columns=2)
        txn = db.begin_transaction(isolation=IsolationLevel.SNAPSHOT)
        assert txn.ctx.isolation is IsolationLevel.SNAPSHOT
        txn.abort()


class TestMaintenance:
    def test_run_merges(self, db, config):
        table = db.create_table("a", num_columns=2)
        for key in range(config.insert_range_size):
            table.insert([key, 0])
        assert db.run_merges() > 0

    def test_vacuum_indexes(self, db):
        table = db.create_table("a", num_columns=2)
        table.index.create_secondary(1)
        table.insert([1, 10])
        table.update(1, {1: 11})
        assert db.vacuum_indexes() == 1

    def test_close_idempotent(self, config):
        db = Database(config)
        db.close()
        db.close()

    def test_context_manager(self, config):
        with Database(config) as db:
            db.create_table("a", num_columns=2)

    def test_background_merge_config(self):
        config = EngineConfig(background_merge=True,
                              records_per_page=8,
                              records_per_tail_page=8,
                              update_range_size=16,
                              merge_threshold=8, insert_range_size=16)
        db = Database(config)
        try:
            table = db.create_table("a", num_columns=2)
            import time
            for key in range(config.insert_range_size):
                table.insert([key, 1])
            deadline = time.time() + 5.0
            while not table.ranges[0].merged and time.time() < deadline:
                time.sleep(0.01)
            assert table.ranges[0].merged
        finally:
            db.close()
