"""Start-time resolution and visibility predicates."""

import pytest

from repro.core.types import TransactionState, make_txn_marker
from repro.core.version import (ResolvedTime, resolve_start_cell,
                                visible_as_of, visible_latest_committed,
                                visible_speculative, visible_to_txn)


class _FakeManager:
    """Minimal TxnStateSource for predicate tests."""

    def __init__(self) -> None:
        self.entries: dict[int, tuple[TransactionState, int | None]] = {}

    def lookup(self, txn_id):
        return self.entries.get(txn_id, (TransactionState.ABORTED, None))


class TestResolution:
    def test_plain_timestamp(self):
        resolved = resolve_start_cell(42, None)
        assert resolved == ResolvedTime(committed=True, time=42,
                                        txn_id=None)

    def test_marker_without_manager_is_uncommitted(self):
        resolved = resolve_start_cell(make_txn_marker(7), None)
        assert not resolved.committed
        assert resolved.txn_id == 7

    def test_marker_states(self):
        manager = _FakeManager()
        for state, commit_time, expect_committed in (
                (TransactionState.ACTIVE, None, False),
                (TransactionState.PRE_COMMIT, 99, False),
                (TransactionState.COMMITTED, 99, True),
                (TransactionState.ABORTED, None, False)):
            manager.entries[7] = (state, commit_time)
            resolved = resolve_start_cell(make_txn_marker(7), manager)
            assert resolved.committed == expect_committed
            assert resolved.state is state
            if expect_committed:
                assert resolved.time == 99


class TestPredicates:
    def _committed(self, time):
        return ResolvedTime(committed=True, time=time, txn_id=None)

    def _uncommitted(self, txn_id, state=TransactionState.ACTIVE):
        return ResolvedTime(committed=False, time=None, txn_id=txn_id,
                            state=state)

    def test_latest_committed(self):
        assert visible_latest_committed(self._committed(5))
        assert not visible_latest_committed(self._uncommitted(1))

    def test_as_of(self):
        predicate = visible_as_of(10)
        assert predicate(self._committed(10))
        assert predicate(self._committed(9))
        assert not predicate(self._committed(11))
        assert not predicate(self._uncommitted(1))

    def test_own_writes(self):
        predicate = visible_to_txn(7, visible_as_of(10))
        assert predicate(self._uncommitted(7))       # own write
        assert not predicate(self._uncommitted(8))   # someone else's
        assert predicate(self._committed(5))         # base rule
        assert not predicate(self._committed(50))

    def test_own_aborted_writes_invisible(self):
        predicate = visible_to_txn(7, visible_latest_committed)
        aborted = self._uncommitted(7, TransactionState.ABORTED)
        assert not predicate(aborted)

    def test_speculative(self):
        predicate = visible_speculative(visible_latest_committed)
        precommit = self._uncommitted(9, TransactionState.PRE_COMMIT)
        active = self._uncommitted(9, TransactionState.ACTIVE)
        assert predicate(precommit)
        assert not predicate(active)
        assert predicate(self._committed(1))
