"""Read paths: versions, visibility, fast path equivalence."""

import pytest

from repro.core.table import DELETED
from repro.core.version import visible_as_of
from repro.errors import KeyNotFoundError


class TestRelativeVersions:
    def test_version_zero_is_latest(self, table):
        rid = table.insert([1, 10, 20, 30, 40])
        table.update(rid, {1: 11})
        assert table.read_relative_version(rid, (1,), 0) == {1: 11}

    def test_walk_back_versions(self, table):
        rid = table.insert([1, 10, 20, 30, 40])
        for value in (11, 12, 13):
            table.update(rid, {1: value})
        assert table.read_relative_version(rid, (1,), -1) == {1: 12}
        assert table.read_relative_version(rid, (1,), -2) == {1: 11}
        assert table.read_relative_version(rid, (1,), -3) == {1: 10}

    def test_beyond_history_clamps_to_base(self, table):
        rid = table.insert([1, 10, 20, 30, 40])
        table.update(rid, {1: 11})
        assert table.read_relative_version(rid, (1,), -10) == {1: 10}

    def test_other_columns_from_base(self, table):
        rid = table.insert([1, 10, 20, 30, 40])
        table.update(rid, {1: 11})
        table.update(rid, {3: 33})
        assert table.read_relative_version(rid, (1, 3), -1) \
            == {1: 11, 3: 30}


class TestAsOfReads:
    def test_snapshot_read(self, table):
        rid = table.insert([1, 10, 20, 30, 40])
        t1 = table.clock.now()
        table.update(rid, {1: 11})
        t2 = table.clock.now()
        table.update(rid, {1: 12})
        assert table.assemble_version(rid, (1,), visible_as_of(t1)) \
            == {1: 10}
        assert table.assemble_version(rid, (1,), visible_as_of(t2)) \
            == {1: 11}

    def test_before_insert_invisible(self, table):
        t0 = table.clock.now()
        rid = table.insert([1, 10, 20, 30, 40])
        assert table.assemble_version(rid, (1,), visible_as_of(t0)) is None

    def test_deleted_version_selection(self, table):
        rid = table.insert([1, 10, 20, 30, 40])
        t1 = table.clock.now()
        table.delete(rid)
        assert table.assemble_version(
            rid, (1,), visible_as_of(table.clock.now())) is DELETED
        assert table.assemble_version(rid, (1,), visible_as_of(t1)) \
            == {1: 10}


class TestFastPathEquivalence:
    def test_matches_general_path(self, table):
        rids = []
        for key in range(10):
            rids.append(table.insert([key, key * 10, 0, 0, 0]))
        for rid in rids[::2]:
            table.update(rid, {1: 999})
        table.delete(rids[3])
        for rid in rids:
            general = table.read_latest(rid)
            fast = table.read_latest_fast(rid)
            assert general == fast or (general is DELETED
                                       and fast is DELETED)

    def test_after_merge(self, db, table):
        rids = [table.insert([key, key, 0, 0, 0]) for key in range(16)]
        for rid in rids:
            table.update(rid, {1: 7})
        db.run_merges()
        for rid in rids:
            assert table.read_latest(rid) == table.read_latest_fast(rid)

    def test_missing_record(self, table):
        table.insert([0, 0, 0, 0, 0])  # allocates the insert range
        unused_rid = table.insert_ranges[0].start_rid + 5
        with pytest.raises(KeyNotFoundError):
            table.read_latest_fast(unused_rid)


class TestVisibleVersionRid:
    def test_base_version(self, table):
        rid = table.insert([1, 0, 0, 0, 0])
        now = visible_as_of(table.clock.now())
        assert table.visible_version_rid(rid, now) == rid

    def test_tail_version(self, table):
        rid = table.insert([1, 0, 0, 0, 0])
        tail_rid = table.update(rid, {1: 5})
        now = visible_as_of(table.clock.now())
        assert table.visible_version_rid(rid, now) == tail_rid

    def test_invisible(self, table):
        t0 = table.clock.now()
        rid = table.insert([1, 0, 0, 0, 0])
        assert table.visible_version_rid(rid, visible_as_of(t0)) is None

    def test_moves_with_updates(self, table):
        rid = table.insert([1, 0, 0, 0, 0])
        first = table.update(rid, {1: 5})
        t1 = table.clock.now()
        second = table.update(rid, {1: 6})
        assert table.visible_version_rid(rid, visible_as_of(t1)) == first
        now = visible_as_of(table.clock.now())
        assert table.visible_version_rid(rid, now) == second


class TestScanRecords:
    def test_yields_visible_only(self, table):
        for key in range(5):
            table.insert([key, key, 0, 0, 0])
        table.delete(table.index.primary.get(2))
        rows = dict(table.scan_records((0, 1)))
        keys = sorted(values[0] for values in rows.values())
        assert keys == [0, 1, 3, 4]
