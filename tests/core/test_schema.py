"""TableSchema: physical layout, names, validation."""

import pytest

from repro.core.schema import (BASE_RID_COLUMN, INDIRECTION_COLUMN,
                               LAST_UPDATED_COLUMN, NUM_METADATA_COLUMNS,
                               SCHEMA_ENCODING_COLUMN, START_TIME_COLUMN,
                               TableSchema)
from repro.errors import SchemaMismatchError


class TestMetadataLayout:
    def test_metadata_columns_are_distinct_and_first(self):
        columns = {INDIRECTION_COLUMN, SCHEMA_ENCODING_COLUMN,
                   START_TIME_COLUMN, LAST_UPDATED_COLUMN, BASE_RID_COLUMN}
        assert columns == set(range(NUM_METADATA_COLUMNS))


class TestSchema:
    def test_basic(self):
        schema = TableSchema("t", num_columns=3, key_index=0)
        assert schema.total_columns == NUM_METADATA_COLUMNS + 3
        assert schema.column_names == ("col0", "col1", "col2")

    def test_physical_data_round_trip(self):
        schema = TableSchema("t", num_columns=4)
        for data_column in range(4):
            physical = schema.physical_index(data_column)
            assert physical >= NUM_METADATA_COLUMNS
            assert schema.data_index(physical) == data_column

    def test_physical_out_of_range(self):
        schema = TableSchema("t", num_columns=2)
        with pytest.raises(SchemaMismatchError):
            schema.physical_index(2)
        with pytest.raises(SchemaMismatchError):
            schema.data_index(0)  # a metadata column

    def test_named_columns(self):
        schema = TableSchema("t", num_columns=2,
                             column_names=("id", "balance"))
        assert schema.column_name(1) == "balance"
        assert schema.column_index("id") == 0

    def test_unknown_name(self):
        schema = TableSchema("t", num_columns=1)
        with pytest.raises(SchemaMismatchError):
            schema.column_index("nope")

    def test_name_count_mismatch(self):
        with pytest.raises(SchemaMismatchError):
            TableSchema("t", num_columns=2, column_names=("only",))

    def test_key_index_bounds(self):
        with pytest.raises(SchemaMismatchError):
            TableSchema("t", num_columns=2, key_index=2)

    def test_at_least_one_column(self):
        with pytest.raises(SchemaMismatchError):
            TableSchema("t", num_columns=0)

    def test_data_column_indices(self):
        schema = TableSchema("t", num_columns=2)
        assert list(schema.data_column_indices()) == [
            NUM_METADATA_COLUMNS, NUM_METADATA_COLUMNS + 1]


class TestValidation:
    def test_validate_row(self):
        schema = TableSchema("t", num_columns=3)
        schema.validate_row([1, 2, 3])
        with pytest.raises(SchemaMismatchError):
            schema.validate_row([1, 2])

    def test_validate_projection(self):
        schema = TableSchema("t", num_columns=3)
        schema.validate_projection([1, 0, 1])
        with pytest.raises(SchemaMismatchError):
            schema.validate_projection([1, 0])
        with pytest.raises(SchemaMismatchError):
            schema.validate_projection([1, 2, 0])
