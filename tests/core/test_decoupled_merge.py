"""Decoupled per-column merges: Lemma 3 detection, Theorem 2 repair."""

import pytest

from repro.core.merge import merge_columns, merge_update_range
from repro.core.table import DELETED
from repro.errors import InconsistentReadError


@pytest.fixture
def merged(db, table, config):
    """A merged range with updates on columns 1 and 3."""
    rids = [table.insert([key, key, 0, key * 2, 0])
            for key in range(config.update_range_size)]
    db.run_merges()
    for rid in rids[:6]:
        table.update(rid, {1: 100, 3: 200})
    return rids, table.ranges[0]


class TestMergeColumns:
    def test_merges_only_requested_columns(self, db, table, merged):
        rids, update_range = merged
        result = merge_columns(table, update_range, [1])
        assert result.performed
        physical1 = table.schema.physical_index(1)
        physical3 = table.schema.physical_index(3)
        chain1 = table.page_directory.base_chain(update_range.range_id,
                                                 physical1)
        chain3 = table.page_directory.base_chain(update_range.range_id,
                                                 physical3)
        # Column 1's pages advanced; column 3's pages did not.
        assert chain1[0].tps_rid != chain3[0].tps_rid
        assert chain1[0].read_slot(0) == 100   # applied
        assert chain3[0].read_slot(0) == 0     # untouched

    def test_range_watermark_not_advanced(self, db, table, merged):
        rids, update_range = merged
        before = (update_range.merged_upto, update_range.tps_rid)
        merge_columns(table, update_range, [1])
        assert (update_range.merged_upto, update_range.tps_rid) == before

    def test_lemma3_mismatch_detected(self, db, table, merged):
        rids, update_range = merged
        merge_columns(table, update_range, [1])
        offset = 0
        with pytest.raises(InconsistentReadError):
            table._read_merged_current(
                update_range, offset, (1, 3),
                lambda resolved: resolved.committed)

    def test_theorem2_reads_repaired(self, db, table, merged):
        # The public read path must silently repair the inconsistency.
        rids, update_range = merged
        merge_columns(table, update_range, [1])
        for rid in rids[:6]:
            assert table.read_latest(rid, (1, 3)) == {1: 100, 3: 200}
        for rid in rids[6:10]:
            values = table.read_latest(rid, (1, 3))
            key = rid - update_range.start_rid
            assert values == {1: key, 3: key * 2}

    def test_scans_stay_exact(self, db, table, merged):
        rids, update_range = merged
        expected_1 = 6 * 100 + sum(range(6, len(rids)))
        expected_3 = 6 * 200 + sum(key * 2 for key in range(6, len(rids)))
        merge_columns(table, update_range, [1])
        assert table.scan_sum(1) == expected_1
        assert table.scan_sum(3) == expected_3

    def test_full_merge_converges_lineage(self, db, table, merged):
        rids, update_range = merged
        merge_columns(table, update_range, [1])
        result = merge_update_range(table, update_range)
        assert result.performed
        physical1 = table.schema.physical_index(1)
        physical3 = table.schema.physical_index(3)
        chain1 = table.page_directory.base_chain(update_range.range_id,
                                                 physical1)
        chain3 = table.page_directory.base_chain(update_range.range_id,
                                                 physical3)
        assert chain1[0].tps_rid == chain3[0].tps_rid \
            == update_range.tps_rid
        # Idempotent re-application: values unchanged.
        assert table.read_latest(rids[0], (1, 3)) == {1: 100, 3: 200}

    def test_deletes_respected(self, db, table, merged):
        rids, update_range = merged
        table.delete(rids[10])
        merge_columns(table, update_range, [1])
        assert table.read_latest(rids[10]) is DELETED
        from repro.core.types import is_null
        physical1 = table.schema.physical_index(1)
        chain1 = table.page_directory.base_chain(update_range.range_id,
                                                 physical1)
        assert is_null(chain1[10 // table.config.records_per_page]
                       .read_slot(10 % table.config.records_per_page))

    def test_unmerged_range_retries(self, db, table, config):
        table.insert([0, 0, 0, 0, 0])
        assert merge_columns(table, table.ranges[0], [1]).retry

    def test_nothing_to_merge(self, db, table, config):
        rids = [table.insert([key, 0, 0, 0, 0])
                for key in range(config.update_range_size)]
        db.run_merges()
        assert not merge_columns(table, table.ranges[0], [1]).performed
