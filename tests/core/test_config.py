"""EngineConfig validation and derived quantities."""

import pytest

from repro.core.config import PAPER_CONFIG, TEST_CONFIG, EngineConfig
from repro.core.types import Layout


class TestValidation:
    def test_defaults_are_valid(self):
        config = EngineConfig()
        assert config.pages_per_range >= 1

    def test_range_must_be_page_multiple(self):
        with pytest.raises(ValueError):
            EngineConfig(records_per_page=512, update_range_size=1000)

    def test_insert_range_must_be_page_multiple(self):
        with pytest.raises(ValueError):
            EngineConfig(records_per_page=512, update_range_size=512,
                         insert_range_size=700)

    def test_positive_page_size(self):
        with pytest.raises(ValueError):
            EngineConfig(records_per_page=0)

    def test_positive_tail_page_size(self):
        with pytest.raises(ValueError):
            EngineConfig(records_per_tail_page=-1)

    def test_positive_merge_threshold(self):
        with pytest.raises(ValueError):
            EngineConfig(merge_threshold=0)

    def test_positive_merge_granularity(self):
        with pytest.raises(ValueError):
            EngineConfig(merge_ranges_per_merge=0)


class TestDerived:
    def test_pages_per_range(self):
        config = EngineConfig(records_per_page=8, update_range_size=32,
                              insert_range_size=32)
        assert config.pages_per_range == 4

    def test_with_overrides_returns_new(self):
        config = EngineConfig()
        derived = config.with_overrides(merge_threshold=7)
        assert derived.merge_threshold == 7
        assert config.merge_threshold != 7 or True
        assert derived is not config

    def test_with_overrides_revalidates(self):
        config = EngineConfig(records_per_page=8, update_range_size=16,
                              insert_range_size=16)
        with pytest.raises(ValueError):
            config.with_overrides(update_range_size=12)

    def test_frozen(self):
        config = EngineConfig()
        with pytest.raises(Exception):
            config.merge_threshold = 1  # type: ignore[misc]


class TestPresets:
    def test_paper_config_matches_paper_geometry(self):
        # 32 KB pages of 8-byte values = 4096 slots (Section 6.1).
        assert PAPER_CONFIG.records_per_page == 4096
        assert 2 ** 12 <= PAPER_CONFIG.update_range_size <= 2 ** 16
        assert PAPER_CONFIG.background_merge

    def test_test_config_small(self):
        assert TEST_CONFIG.records_per_page <= 16
        assert TEST_CONFIG.layout is Layout.COLUMNAR
