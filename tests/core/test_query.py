"""The statement-level Query API (classic L-Store interface)."""

import pytest

from repro.core.query import Query, Record
from repro.errors import DuplicateKeyError, KeyNotFoundError


class TestInsertSelect:
    def test_insert_select(self, query):
        query.insert(1, 10, 20, 30, 40)
        records = query.select(1, 0, [1, 1, 1, 1, 1])
        assert len(records) == 1
        assert records[0].columns == (1, 10, 20, 30, 40)
        assert records[0].key == 1

    def test_projection(self, query):
        query.insert(1, 10, 20, 30, 40)
        record = query.select(1, 0, [0, 1, 0, 1, 0])[0]
        assert record[1] == 10
        assert record[3] == 30
        assert record[0] is None  # not projected

    def test_select_missing_key(self, query):
        assert query.select(99, 0, None) == []

    def test_select_by_non_key_column_scan(self, loaded):
        records = loaded.select(100, 2, None)  # key 1 has col2 = 100
        assert [record.key for record in records] == [1]

    def test_select_with_secondary_index(self, table, loaded):
        table.create_index(4)
        table.update(table.index.primary.get(5), {4: 1234})
        records = loaded.select(1234, 4, None)
        assert [record.key for record in records] == [5]

    def test_secondary_index_stale_entry_revalidated(self, table, loaded):
        index = table.create_index(1)
        loaded.update(3, None, 999, None, None, None)
        # The old value 30 still has a (stale) index entry...
        assert index.lookup(30)
        # ...but select re-validates against the visible version.
        assert loaded.select(30, 1, None) == []
        assert [r.key for r in loaded.select(999, 1, None)] == [3]


class TestUpdateDelete:
    def test_positional_update(self, loaded):
        loaded.update(3, None, 555, None, None, None)
        assert loaded.select(3, 0, None)[0].columns == (3, 555, 300, 9, 7)

    def test_update_columns_mapping(self, loaded):
        loaded.update_columns(3, {2: 1, 4: 2})
        assert loaded.select(3, 0, None)[0].columns == (3, 30, 1, 9, 2)

    def test_update_missing_key(self, query):
        with pytest.raises(KeyNotFoundError):
            query.update(99, None, 1, None, None, None)

    def test_delete(self, loaded):
        loaded.delete(3)
        assert loaded.select(3, 0, None) == []
        assert loaded.count() == 39

    def test_increment(self, loaded):
        loaded.increment(3, 1, delta=5)
        assert loaded.select(3, 0, None)[0][1] == 35

    def test_increment_missing(self, query):
        with pytest.raises(KeyNotFoundError):
            query.increment(99, 1)


class TestVersions:
    def test_select_version(self, loaded):
        loaded.update(3, None, 100, None, None, None)
        loaded.update(3, None, 200, None, None, None)
        assert loaded.select_version(3, 0, None, 0)[0][1] == 200
        assert loaded.select_version(3, 0, None, -1)[0][1] == 100
        assert loaded.select_version(3, 0, None, -2)[0][1] == 30

    def test_select_as_of(self, loaded, table):
        t1 = table.clock.now()
        loaded.update(3, None, 100, None, None, None)
        records = loaded.select_as_of(3, 0, None, t1)
        assert records[0][1] == 30

    def test_select_as_of_unindexed_column_full_history(self, db, loaded,
                                                        table):
        """The unindexed as_of path scans the snapshot, not the present.

        A record whose *current* version no longer matches (updated
        away, then the key deleted) must still be found at a timestamp
        where it matched — the old latest-visibility candidate
        enumeration could not see it.
        """
        t1 = table.clock.now()
        loaded.update(3, None, None, 4242, None, None)  # col 2 unindexed
        t2 = table.clock.now()
        loaded.update(3, None, None, 9, None, None)
        loaded.delete(3)
        db.run_merges()
        assert loaded.select_as_of(4242, 2, None, t1) == []
        records = loaded.select_as_of(4242, 2, None, t2)
        assert [record.key for record in records] == [3]
        assert records[0][2] == 4242
        assert loaded.select_as_of(4242, 2, None, table.clock.now()) == []
        # Even when the projection excludes the key column, the Record
        # carries the key *as of the snapshot* — the latest-visibility
        # key fallback would return None (deleted) or the wrong key.
        records = loaded.select_as_of(4242, 2, [0, 0, 1, 0, 0], t2)
        assert [record.key for record in records] == [3]
        assert records[0][2] == 4242
        assert records[0][1] is None  # unprojected column stays None

    def test_sum_version(self, loaded):
        base = loaded.sum(0, 39, 1)
        loaded.update(3, None, 1000, None, None, None)
        assert loaded.sum_version(0, 39, 1, -1) == base
        assert loaded.sum_version(0, 39, 1, 0) == base - 30 + 1000
        assert loaded.sum(0, 39, 1) == base - 30 + 1000


class TestAggregates:
    def test_sum_range(self, loaded):
        assert loaded.sum(0, 9, 1) == sum(k * 10 for k in range(10))

    def test_sum_partial_range(self, loaded):
        assert loaded.sum(5, 7, 1) == 50 + 60 + 70

    def test_sum_empty_range(self, loaded):
        assert loaded.sum(100, 200, 1) == 0

    def test_sum_skips_deleted(self, loaded):
        loaded.delete(5)
        assert loaded.sum(0, 9, 1) == sum(k * 10 for k in range(10)) - 50

    def test_scan_sum_matches_sum(self, loaded):
        assert loaded.scan_sum(1) == loaded.sum(0, 39, 1)

    def test_scan_iterator(self, loaded):
        keys = sorted(record.key for record in loaded.scan())
        assert keys == list(range(40))

    def test_count(self, loaded):
        assert loaded.count() == 40


class TestRecord:
    def test_getitem(self):
        record = Record(rid=1, key=5, columns=(5, 6, 7))
        assert record[2] == 7
