"""Epoch-based de-allocation: pages survive until pre-merge readers drain."""

from repro.core.epoch import EpochManager
from repro.core.page import Page
from repro.core.types import PageKind


def _pages(*ids: int) -> list[Page]:
    return [Page(page_id, PageKind.BASE, 4) for page_id in ids]


class TestQueryRegistry:
    def test_enter_exit(self):
        epoch = EpochManager()
        handle = epoch.enter_query(begin_time=10)
        assert epoch.active_queries == 1
        assert epoch.oldest_active_begin() == 10
        epoch.exit_query(handle)
        assert epoch.active_queries == 0
        assert epoch.oldest_active_begin() is None

    def test_oldest_of_several(self):
        epoch = EpochManager()
        epoch.enter_query(30)
        epoch.enter_query(10)
        epoch.enter_query(20)
        assert epoch.oldest_active_begin() == 10

    def test_exit_idempotent(self):
        epoch = EpochManager()
        handle = epoch.enter_query(1)
        epoch.exit_query(handle)
        epoch.exit_query(handle)


class TestRetireReclaim:
    def test_immediate_reclaim_with_no_queries(self):
        epoch = EpochManager()
        pages = _pages(1, 2)
        epoch.retire(pages, retired_at=5)
        assert all(page.deallocated for page in pages)
        assert epoch.reclaimed_pages == 2
        assert epoch.pending_pages == 0

    def test_active_old_query_blocks_reclaim(self):
        epoch = EpochManager()
        handle = epoch.enter_query(begin_time=3)
        pages = _pages(1)
        epoch.retire(pages, retired_at=5)
        # The query began before the merge retired the pages: it may
        # still hold references, so the pages must survive.
        assert not pages[0].deallocated
        assert epoch.pending_pages == 1
        epoch.exit_query(handle)
        assert pages[0].deallocated

    def test_young_query_does_not_block(self):
        epoch = EpochManager()
        epoch.enter_query(begin_time=10)
        pages = _pages(1)
        # Retired before the only active query began: that query can
        # only have seen the new chain.
        epoch.retire(pages, retired_at=5)
        assert pages[0].deallocated

    def test_on_reclaim_callback(self):
        epoch = EpochManager()
        reclaimed = []
        pages = _pages(7)
        epoch.retire(pages, retired_at=1,
                     on_reclaim=lambda page: reclaimed.append(page.page_id))
        assert reclaimed == [7]

    def test_retire_empty_is_noop(self):
        epoch = EpochManager()
        epoch.retire([], retired_at=1)
        assert epoch.pending_pages == 0

    def test_multiple_batches_ordered_reclaim(self):
        epoch = EpochManager()
        old_query = epoch.enter_query(begin_time=4)
        first = _pages(1)
        second = _pages(2)
        epoch.retire(first, retired_at=3)   # before the query began
        epoch.retire(second, retired_at=6)  # after the query began
        assert first[0].deallocated
        assert not second[0].deallocated
        epoch.exit_query(old_query)
        assert second[0].deallocated

    def test_boundary_equal_times_not_reclaimed(self):
        # A query that began exactly at the retirement time may have
        # raced the pointer swap: keep the pages.
        epoch = EpochManager()
        epoch.enter_query(begin_time=5)
        pages = _pages(1)
        epoch.retire(pages, retired_at=5)
        assert not pages[0].deallocated

    def test_reclaim_returns_count(self):
        epoch = EpochManager()
        handle = epoch.enter_query(1)
        epoch.retire(_pages(1, 2, 3), retired_at=2)
        assert epoch.reclaim() == 0
        epoch.exit_query(handle)
        assert epoch.pending_pages == 0
