"""RID spaces, transaction markers, and the special null sentinel."""

import pickle

from repro.core import types
from repro.core.types import (BASE_RID_MAX, LATCH_BIT, NULL, NULL_RID,
                              TAIL_RID_MAX, TAIL_RID_SPLIT, is_base_rid,
                              is_null, is_tail_rid, is_txn_marker,
                              make_txn_marker, tail_rid_newer,
                              txn_id_from_marker)


class TestNullSentinel:
    def test_singleton(self):
        assert types._SpecialNull() is NULL

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null(None)
        assert not is_null(0)
        assert not is_null("")

    def test_falsy(self):
        assert not NULL

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(NULL)) is NULL

    def test_repr(self):
        assert repr(NULL) == "∅"


class TestRIDSpaces:
    def test_null_rid_is_neither(self):
        assert not is_base_rid(NULL_RID)
        assert not is_tail_rid(NULL_RID)

    def test_base_rid_range(self):
        assert is_base_rid(1)
        assert is_base_rid(BASE_RID_MAX)
        assert not is_base_rid(BASE_RID_MAX + 1)

    def test_tail_rid_range(self):
        assert is_tail_rid(TAIL_RID_SPLIT)
        assert is_tail_rid(TAIL_RID_MAX)
        assert not is_tail_rid(TAIL_RID_MAX + 1)
        assert not is_tail_rid(TAIL_RID_SPLIT - 1)

    def test_spaces_disjoint(self):
        for rid in (1, 1000, TAIL_RID_SPLIT - 1, TAIL_RID_SPLIT,
                    TAIL_RID_MAX):
            assert is_base_rid(rid) != is_tail_rid(rid)

    def test_latch_bit_above_all_rids(self):
        assert LATCH_BIT > TAIL_RID_MAX
        assert TAIL_RID_MAX & LATCH_BIT == 0

    def test_tail_rid_newer_is_reversed(self):
        # Tail RIDs descend over time: smaller is newer (Section 4.4).
        assert tail_rid_newer(TAIL_RID_MAX - 1, TAIL_RID_MAX)
        assert not tail_rid_newer(TAIL_RID_MAX, TAIL_RID_MAX - 1)


class TestTxnMarkers:
    def test_round_trip(self):
        marker = make_txn_marker(12345)
        assert is_txn_marker(marker)
        assert txn_id_from_marker(marker) == 12345

    def test_plain_timestamp_is_not_marker(self):
        assert not is_txn_marker(0)
        assert not is_txn_marker(10_000_000)

    def test_marker_not_a_valid_rid(self):
        marker = make_txn_marker(1)
        assert not is_base_rid(marker) or marker >= types.TXN_ID_FLAG
