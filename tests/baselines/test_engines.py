"""Baseline engines: IUH and DBM semantics plus cross-engine agreement."""

import random

import pytest

from repro.baselines.common import LStoreEngine
from repro.baselines.delta_merge import DeltaMergeEngine
from repro.baselines.inplace_history import InPlaceHistoryEngine
from repro.core.config import EngineConfig
from repro.errors import DuplicateKeyError, KeyNotFoundError


def _lstore() -> LStoreEngine:
    return LStoreEngine(3, config=EngineConfig(
        records_per_page=16, records_per_tail_page=16,
        update_range_size=32, merge_threshold=16, insert_range_size=32))


ENGINE_FACTORIES = {
    "lstore": _lstore,
    "iuh": lambda: InPlaceHistoryEngine(3, records_per_page=32),
    "dbm": lambda: DeltaMergeEngine(3, range_size=32, merge_threshold=16),
}


@pytest.fixture(params=sorted(ENGINE_FACTORIES))
def engine(request):
    instance = ENGINE_FACTORIES[request.param]()
    instance.load([[key, key * 10, 7] for key in range(64)])
    yield instance
    instance.close()


class TestUniformBehaviour:
    """Every engine must agree on these (the paper's fairness baseline)."""

    def test_read(self, engine):
        txn = engine.begin()
        assert txn.read(5) == {0: 5, 1: 50, 2: 7}
        assert txn.read(5, (1,)) == {1: 50}
        assert txn.read(999) is None
        txn.commit()

    def test_update_visible_after_commit(self, engine):
        txn = engine.begin()
        txn.update(5, {1: 999})
        txn.commit()
        check = engine.begin()
        assert check.read(5, (1,)) == {1: 999}
        check.commit()

    def test_abort_rolls_back(self, engine):
        txn = engine.begin()
        txn.update(5, {1: 999})
        txn.abort()
        check = engine.begin()
        assert check.read(5, (1,)) == {1: 50}
        check.commit()

    def test_insert_delete(self, engine):
        txn = engine.begin()
        txn.insert([100, 1, 2])
        txn.delete(7)
        txn.commit()
        check = engine.begin()
        assert check.read(100) == {0: 100, 1: 1, 2: 2}
        assert check.read(7) is None
        check.commit()

    def test_insert_abort(self, engine):
        txn = engine.begin()
        txn.insert([100, 1, 2])
        txn.abort()
        check = engine.begin()
        assert check.read(100) is None
        check.commit()

    def test_scan_sum(self, engine):
        assert engine.scan_sum(2) == 64 * 7
        assert engine.scan_sum(1) == sum(key * 10 for key in range(64))

    def test_scan_after_updates_and_maintenance(self, engine):
        txn = engine.begin()
        txn.update(0, {2: 100})
        txn.delete(1)
        txn.commit()
        expected = 64 * 7 - 7 + 100 - 7
        assert engine.scan_sum(2) == expected
        engine.maintenance()
        assert engine.scan_sum(2) == expected

    def test_read_point(self, engine):
        assert engine.read_point(3, (1,)) == {1: 30}

    def test_update_missing_key(self, engine):
        txn = engine.begin()
        with pytest.raises(KeyNotFoundError):
            txn.update(999, {1: 1})
        txn.abort()

    def test_describe(self, engine):
        info = engine.describe()
        assert info["name"] == engine.name


class TestRandomizedAgreement:
    def test_engines_agree_on_random_workload(self):
        rng = random.Random(42)
        operations = []
        live_keys = set(range(64))
        next_key = 64
        for _ in range(300):
            kind = rng.random()
            if kind < 0.55 and live_keys:
                operations.append(
                    ("u", rng.choice(sorted(live_keys)),
                     {rng.randint(1, 2): rng.randint(0, 999)}))
            elif kind < 0.7:
                operations.append(("i", next_key))
                live_keys.add(next_key)
                next_key += 1
            elif kind < 0.8 and len(live_keys) > 4:
                key = rng.choice(sorted(live_keys))
                live_keys.discard(key)
                operations.append(("d", key))
            else:
                operations.append(("m",))

        sums = {}
        for name, factory in ENGINE_FACTORIES.items():
            engine = factory()
            engine.load([[key, key * 10, 7] for key in range(64)])
            for op in operations:
                if op[0] == "u":
                    txn = engine.begin()
                    txn.update(op[1], op[2])
                    txn.commit()
                elif op[0] == "i":
                    txn = engine.begin()
                    txn.insert([op[1], op[1], 1])
                    txn.commit()
                elif op[0] == "d":
                    txn = engine.begin()
                    txn.delete(op[1])
                    txn.commit()
                else:
                    engine.maintenance()
            sums[name] = (engine.scan_sum(1), engine.scan_sum(2))
            engine.close()
        assert sums["lstore"] == sums["iuh"] == sums["dbm"]


class TestIUHSpecific:
    def test_history_chain_time_travel(self):
        engine = InPlaceHistoryEngine(3, records_per_page=16)
        engine.load([[1, 10, 0]])
        t0 = engine.clock.now()
        txn = engine.begin()
        txn.update(1, {1: 20})
        txn.commit()
        t1 = engine.clock.now()
        txn = engine.begin()
        txn.update(1, {1: 30})
        txn.commit()
        rid = engine._index[1]
        assert engine.version_at(rid, 1, t0) == 10
        assert engine.version_at(rid, 1, t1) == 20
        assert len(engine.history) == 2
        engine.close()

    def test_history_only_stores_updated_columns(self):
        engine = InPlaceHistoryEngine(3)
        engine.load([[1, 10, 0]])
        txn = engine.begin()
        txn.update(1, {1: 20})
        txn.commit()
        _, _, values, _ = engine.history.version(0)
        assert set(values) == {1}  # paper: history optimised this way

    def test_duplicate_key(self):
        engine = InPlaceHistoryEngine(2)
        engine.load([[1, 0]])
        txn = engine.begin()
        with pytest.raises(DuplicateKeyError):
            txn.insert([1, 5])
        txn.abort()
        engine.close()


class TestDBMSpecific:
    def test_merge_applies_delta(self):
        engine = DeltaMergeEngine(3, range_size=16, merge_threshold=4)
        engine.load([[key, 0, 0] for key in range(16)])
        txn = engine.begin()
        for key in range(5):
            txn.update(key, {1: 9})
        txn.commit()
        engine.maintenance()
        assert engine.stat_merges >= 1
        store = engine._ranges[0]
        assert store.delta == []
        assert int(store.main[1][:5].sum()) == 45

    def test_merge_is_blocking_gate(self):
        # While a statement holds the shared gate, the merge must wait.
        import threading
        import time
        engine = DeltaMergeEngine(3, range_size=16, merge_threshold=4)
        engine.load([[key, 0, 0] for key in range(16)])
        engine.gate.acquire_shared()
        done = []

        def merge():
            engine.merge_range(0)
            done.append(True)

        thread = threading.Thread(target=merge)
        thread.start()
        time.sleep(0.05)
        assert not done  # drained: waiting on the active "transaction"
        engine.gate.release_shared()
        thread.join(timeout=5.0)
        assert done
        engine.close()

    def test_aborted_delta_entries_skipped_in_merge(self):
        engine = DeltaMergeEngine(3, range_size=16, merge_threshold=100)
        engine.load([[key, 5, 0] for key in range(16)])
        txn = engine.begin()
        txn.update(0, {1: 999})
        txn.abort()
        engine.merge_range(0)
        assert int(engine._ranges[0].main[1][0]) == 5
        engine.close()
