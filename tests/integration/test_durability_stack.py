"""The full durability stack: pages → page file → buffer pool → WAL.

Exercises the storage substrate end to end: merged pages serialized to
disk, read back through a small buffer pool with evictions, while the
logical state is recoverable from the WAL — the deployment shape the
paper's Section 5.2 (bufferpool steal policy) reasons about.
"""

import os

import pytest

from repro import Database, EngineConfig
from repro.storage.bufferpool import BufferPool
from repro.storage.disk import PageFile
from repro.wal.recovery import recover_database


def _config(tmp_path=None) -> EngineConfig:
    return EngineConfig(
        records_per_page=16, records_per_tail_page=16,
        update_range_size=32, merge_threshold=16, insert_range_size=32,
        wal_enabled=tmp_path is not None,
        data_dir=str(tmp_path) if tmp_path else None)


class TestPagePersistenceRoundTrip:
    def test_merged_pages_survive_disk_round_trip(self, tmp_path):
        db = Database(_config())
        table = db.create_table("t", num_columns=3)
        for key in range(64):
            table.insert([key, key * 2, 7])
        db.run_merges()
        # Persist every registered page of the table.
        page_file = PageFile(str(tmp_path / "t.pages"))
        pages = [table.page_directory.get(page_id)
                 for page_id in list(table.page_directory._pages)]
        for page in pages:
            if page.num_records and not hasattr(page, "_codes"):
                page_file.write_page(page)
        page_file.sync()
        # Read a base page back and compare cell for cell.
        chain = table.page_directory.base_chain(
            0, table.schema.physical_index(1))
        original = chain[0]
        restored = page_file.read_page(original.page_id)
        for slot in range(original.num_records):
            assert restored.read_slot(slot) == original.read_slot(slot)
        assert restored.tps_rid == original.tps_rid
        page_file.close()
        db.close()

    def test_bufferpool_serves_evicted_pages(self, tmp_path):
        db = Database(_config())
        table = db.create_table("t", num_columns=2)
        for key in range(64):
            table.insert([key, key])
        db.run_merges()
        page_file = PageFile(str(tmp_path / "t.pages"))
        pool = BufferPool(page_file, capacity=2)
        chain = table.page_directory.base_chain(
            0, table.schema.physical_index(1))
        page_ids = []
        for page in chain:
            if hasattr(page, "_codes"):
                continue  # dictionary pages: persisted via raw form
            pool.put(page, dirty=True)
            page_ids.append(page.page_id)
        pool.flush_all()
        # Thrash the pool: every page must come back intact even after
        # eviction to disk.
        for _ in range(3):
            for page_id in page_ids:
                with pool.pinned(page_id) as page:
                    assert page.num_records > 0
        assert pool.stat_evictions > 0 or len(page_ids) <= 2
        page_file.close()
        db.close()


class TestWalPlusMergeLifecycle:
    def test_crash_after_merge_recovers_from_tails(self, tmp_path):
        # Merged pages are volatile (not logged); recovery rebuilds the
        # pre-merge state from the WAL and simply re-merges.
        db = Database(_config(tmp_path))
        table = db.create_table("t", num_columns=3)
        for key in range(32):
            table.insert([key, 1, 0])
        db.run_merges()
        for key in range(32):
            table.update(table.index.primary.get(key), {1: 2})
        db.run_merges()
        db._wal.flush()
        expected = db.query("t").scan_sum(1)

        recovered = recover_database(
            os.path.join(str(tmp_path), "wal.log"), config=_config())
        assert recovered.query("t").scan_sum(1) == expected
        recovered.run_merges()
        assert recovered.query("t").scan_sum(1) == expected
        recovered.close()
        db.close()

    def test_two_generations_of_crashes(self, tmp_path):
        # Crash, recover into a NEW WAL, crash again, recover from the
        # concatenated log chain (frames are self-delimiting, so the
        # two generations splice byte-for-byte).
        first_dir = tmp_path / "gen1"
        db = Database(_config(first_dir))
        table = db.create_table("t", num_columns=2)
        for key in range(16):
            table.insert([key, 1])
        db._wal.flush()
        recovered = recover_database(
            os.path.join(str(first_dir), "wal.log"),
            config=_config(tmp_path / "gen2"))
        # The recovered database logs new work to its own WAL segment
        # automatically (recovery re-attaches logging at the end).
        query = recovered.query("t")
        query.update(0, None, 99)
        query.insert(100, 5)
        recovered._wal.flush()
        # Second crash: splice the generations and recover everything.
        combined = tmp_path / "combined.log"
        with open(combined, "wb") as out:
            for gen_dir in (first_dir, tmp_path / "gen2"):
                with open(os.path.join(str(gen_dir), "wal.log"),
                          "rb") as src:
                    out.write(src.read())
        third = recover_database(str(combined), config=_config())
        final = third.query("t")
        assert final.select(0, 0, None)[0][1] == 99
        assert final.select(100, 0, None)[0][1] == 5
        assert final.count() == 17
        recovered.close()
        db.close()
