"""Scenario tests mirroring the runnable examples (deterministic)."""

import pytest

from repro import Database, EngineConfig, IsolationLevel
from repro.errors import TransactionAborted


@pytest.fixture
def db():
    database = Database(EngineConfig(
        records_per_page=32, records_per_tail_page=32,
        update_range_size=64, merge_threshold=32, insert_range_size=64))
    yield database
    database.close()


class TestAdAuctionScenario:
    """The paper's mobile-advertising motivation, single-threaded."""

    def test_purchases_feed_next_auction(self, db):
        shoppers = db.create_table(
            "shoppers", num_columns=4,
            column_names=("id", "zone", "purchases", "spend"))
        for shopper in range(128):
            shoppers.insert([shopper, shopper % 8, 0, 0])
        db.run_merges()

        # Auction 1 sees zero spend.
        assert shoppers.scan_sum(3) == 0
        # A purchase commits...
        txn = db.begin_transaction()
        profile = txn.select(shoppers, 42, (2, 3))
        txn.update(shoppers, 42, {2: profile[2] + 1,
                                  3: profile[3] + 75})
        assert txn.commit()
        # ...and the very next auction sees it: no ETL gap.
        assert shoppers.scan_sum(3) == 75
        assert shoppers.scan_sum(2) == 1

    def test_bid_contention_one_winner(self, db):
        ads = db.create_table("slots", num_columns=3,
                              column_names=("slot", "winner", "bid"))
        ads.insert([1, 0, 0])
        first = db.begin_transaction()
        second = db.begin_transaction()
        first.update(ads, 1, {1: 100, 2: 50})
        with pytest.raises(TransactionAborted):
            second.update(ads, 1, {1: 200, 2: 60})
        assert first.commit()
        query = db.query("slots")
        assert query.select(1, 0, None)[0].columns == (1, 100, 50)


class TestFraudScenario:
    """Analytics inside the approving transaction."""

    def test_limit_never_exceeded(self, db):
        cards = db.create_table("cards", num_columns=2,
                                column_names=("card", "spend"))
        cards.insert([7, 0])
        limit = 100

        def authorize(amount: int) -> bool:
            txn = db.begin_transaction(
                isolation=IsolationLevel.REPEATABLE_READ)
            try:
                spend = txn.select(cards, 7, (1,))[1]
                if spend + amount > limit:
                    txn.abort()
                    return False
                txn.update(cards, 7, {1: spend + amount})
                return txn.commit()
            except TransactionAborted:
                return False

        results = [authorize(30) for _ in range(5)]
        assert results == [True, True, True, False, False]
        assert db.query("cards").select(7, 0, None)[0][1] == 90

    def test_declines_recorded_for_analytics(self, db):
        cards = db.create_table("cards", num_columns=3,
                                column_names=("card", "spend", "flags"))
        for card in range(16):
            cards.insert([card, 0, 0])
        for card in (3, 3, 9):
            flags = db.query("cards").select(card, 0, None)[0][2]
            db.query("cards").update_columns(card, {2: flags + 1})
        assert db.query("cards").scan_sum(2) == 3
        flagged = [record.key for record in db.query("cards").scan()
                   if record[2] > 0]
        assert flagged == [3, 9]


class TestInventoryScenario:
    """Classic stock management: oversell prevention + restock audit."""

    def test_no_oversell_under_interleaving(self, db):
        stock = db.create_table("stock", num_columns=2,
                                column_names=("sku", "units"))
        stock.insert([1, 3])

        def sell() -> bool:
            txn = db.begin_transaction(
                isolation=IsolationLevel.REPEATABLE_READ)
            try:
                units = txn.select(stock, 1, (1,))[1]
                if units <= 0:
                    txn.abort()
                    return False
                txn.update(stock, 1, {1: units - 1})
                return txn.commit()
            except TransactionAborted:
                return False

        sales = sum(1 for _ in range(6) if sell())
        assert sales == 3
        assert db.query("stock").select(1, 0, None)[0][1] == 0

    def test_restock_audit_trail(self, db):
        stock = db.create_table("stock", num_columns=2,
                                column_names=("sku", "units"))
        stock.insert([1, 0])
        query = db.query("stock")
        for delivery in (10, 25, 5):
            query.increment(1, 1, delta=delivery)
        # The full audit trail is one select_version sweep.
        history = [query.select_version(1, 0, None, -back)[0][1]
                   for back in range(4)]
        assert history == [40, 35, 10, 0]
        db.run_merges()
        history_after_merge = [
            query.select_version(1, 0, None, -back)[0][1]
            for back in range(4)]
        assert history_after_merge == history
