"""Concurrency invariants under real threads.

These tests drive many worker threads against one table and check
global invariants the paper's protocol guarantees: no lost updates on
conflicting increments, constant-total money transfers, scan
consistency while merges run in the background.
"""

import threading
import time

import pytest

from repro import Database, EngineConfig, IsolationLevel, TransactionWorker
from repro.errors import TransactionAborted
from repro.txn.transaction import Transaction


@pytest.fixture
def db():
    database = Database(EngineConfig(
        records_per_page=32, records_per_tail_page=32,
        update_range_size=64, merge_threshold=32, insert_range_size=64,
        background_merge=True))
    yield database
    database.close()


class TestNoLostUpdates:
    def test_concurrent_increments_all_counted(self, db):
        table = db.create_table("counters", num_columns=2)
        table.insert([0, 0])
        workers = []
        for i in range(4):
            worker = TransactionWorker(
                db.txn_manager, max_retries=1000,
                isolation=IsolationLevel.REPEATABLE_READ,
                name="inc-%d" % i)
            for _ in range(50):
                worker.add(lambda txn: txn.increment(table, 0, 1))
            worker.start()
            workers.append(worker)
        committed = 0
        for worker in workers:
            committed += worker.join(timeout=60.0).committed
        # increment = read-modify-write under the latch-bit protocol:
        # every committed increment must be reflected exactly once.
        assert db.query("counters").select(0, 0, None)[0][1] == committed
        assert committed > 0

    def test_transfers_preserve_total(self, db):
        table = db.create_table("accounts", num_columns=2)
        accounts = 8
        for key in range(accounts):
            table.insert([key, 100])

        def transfer(txn, source, target):
            balance = txn.select(table, source, (1,))
            if balance is None or balance[1] <= 0:
                return
            txn.update(table, source, {1: balance[1] - 1})
            other = txn.select(table, target, (1,))
            txn.update(table, target, {1: other[1] + 1})

        workers = []
        for i in range(4):
            worker = TransactionWorker(
                db.txn_manager, max_retries=200,
                isolation=IsolationLevel.REPEATABLE_READ,
                name="xfer-%d" % i)
            for j in range(40):
                source = (i + j) % accounts
                target = (i + j + 3) % accounts
                worker.add(lambda txn, s=source, t=target:
                           transfer(txn, s, t))
            worker.start()
            workers.append(worker)
        for worker in workers:
            worker.join(timeout=60.0)
        assert db.query("accounts").sum(0, accounts - 1, 1) \
            == accounts * 100


class TestScanConsistencyUnderWrites:
    def test_constant_total_under_transfers(self, db):
        # A scan running concurrently with balance transfers must never
        # observe money created or destroyed once writers quiesce.
        table = db.create_table("bank", num_columns=2)
        accounts = 32
        for key in range(accounts):
            table.insert([key, 1000])
        stop = threading.Event()
        errors = []

        def writer(seed):
            worker = TransactionWorker(
                db.txn_manager, max_retries=500,
                isolation=IsolationLevel.REPEATABLE_READ)
            i = 0
            while not stop.is_set():
                source = (seed + i) % accounts
                target = (seed + i + 7) % accounts
                if source == target:
                    i += 1
                    continue

                def body(txn, s=source, t=target):
                    a = txn.select(table, s, (1,))
                    b = txn.select(table, t, (1,))
                    txn.update(table, s, {1: a[1] - 5})
                    txn.update(table, t, {1: b[1] + 5})

                worker.run_one(body)
                i += 1

        threads = [threading.Thread(target=writer, args=(i,), daemon=True)
                   for i in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
        # After writers drain, latest-committed totals are exact.
        assert table.scan_sum(1) == accounts * 1000
        db.run_merges()
        assert table.scan_sum(1) == accounts * 1000

    def test_snapshot_totals_exact_during_transfers(self):
        # Stronger than quiesced totals: a snapshot SUM taken at ANY
        # instant must conserve money even while transfers are mid
        # flight — the version-horizon plane plus pre-commit settling
        # and the Last-Updated Lemma-3 check make the snapshot atomic.
        # Background merges run throughout, so chain swaps race the
        # readers (the config that reproduced both historic tears).
        db = Database(EngineConfig(
            records_per_page=32, records_per_tail_page=32,
            update_range_size=64, insert_range_size=64,
            merge_threshold=32, background_merge=True))
        try:
            self._run_snapshot_conservation(db)
        finally:
            db.close()

    def _run_snapshot_conservation(self, db):
        table = db.create_table("bank", num_columns=2)
        accounts = 32
        for key in range(accounts):
            table.insert([key, 1000])
        db.run_merges()
        stop = threading.Event()
        torn = []

        def writer(seed):
            worker = TransactionWorker(
                db.txn_manager, max_retries=500,
                isolation=IsolationLevel.REPEATABLE_READ)
            i = 0
            while not stop.is_set():
                source = (seed + i) % accounts
                target = (seed + i + 7) % accounts
                if source == target:
                    i += 1
                    continue

                def body(txn, s=source, t=target):
                    a = txn.select(table, s, (1,))
                    b = txn.select(table, t, (1,))
                    txn.update(table, s, {1: a[1] - 5})
                    txn.update(table, t, {1: b[1] + 5})

                worker.run_one(body)
                i += 1

        def reader():
            try:
                while not stop.is_set():
                    txn = Transaction(
                        db.txn_manager,
                        isolation=IsolationLevel.REPEATABLE_READ)
                    first = txn.scan_sum(table, 1)
                    second = txn.scan_sum(table, 1)  # repeatable
                    txn.commit()
                    if first != accounts * 1000 or second != first:
                        torn.append((first, second))
            except BaseException as exc:  # surface thread failures
                torn.append(repr(exc))
                raise

        threads = [threading.Thread(target=writer, args=(i,), daemon=True)
                   for i in range(3)]
        threads.append(threading.Thread(target=reader, daemon=True))
        for thread in threads:
            thread.start()
        time.sleep(0.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not torn, torn[:5]
        assert table.scan_sum(1) == accounts * 1000


class TestMergeDoesNotBlockWriters:
    def test_writers_progress_during_merges(self, db):
        table = db.create_table("hot", num_columns=2)
        for key in range(64):
            table.insert([key, 0])
        db.run_merges()
        stop = threading.Event()
        progress = {"count": 0}

        def writer():
            worker = TransactionWorker(db.txn_manager, max_retries=100)
            i = 0
            while not stop.is_set():
                worker.run_one(lambda txn, k=i % 64:
                               txn.update(table, k, {1: 1}))
                progress["count"] += 1
                i += 1

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        # Force many synchronous merges while the writer runs.
        deadline = time.time() + 0.5
        merges = 0
        from repro.core.merge import merge_update_range
        while time.time() < deadline:
            for update_range in table.sorted_ranges():
                if update_range.merged \
                        and merge_update_range(table,
                                               update_range).performed:
                    merges += 1
        stop.set()
        thread.join(timeout=30.0)
        assert progress["count"] > 0
        # Both sides made progress concurrently: contention-free merge.
        assert merges > 0


class TestConcurrentInsertsDisjoint:
    def test_parallel_inserts_unique_rids(self, db):
        table = db.create_table("ins", num_columns=2)
        rids = []
        lock = threading.Lock()
        errors = []

        def worker(base):
            try:
                for i in range(100):
                    rid = table.insert([base * 1000 + i, 0])
                    with lock:
                        rids.append(rid)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(set(rids)) == 400
        assert db.query("ins").count() == 400
