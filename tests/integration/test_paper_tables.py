"""Golden reproductions of the paper's worked examples (Tables 2–6).

Each test re-creates the exact record/tail-page state the paper's
conceptual tables show, using string values named after the paper's
cells (``a21``, ``c31``, …). These are the strongest fidelity checks in
the suite: they pin the update, insert, merge, lineage and compression
semantics record by record.
"""

import pytest

from repro import Database, EngineConfig
from repro.core.encoding import SchemaEncoding
from repro.core.merge import merge_update_range
from repro.core.schema import (BASE_RID_COLUMN, INDIRECTION_COLUMN,
                               LAST_UPDATED_COLUMN, SCHEMA_ENCODING_COLUMN,
                               START_TIME_COLUMN)
from repro.core.table import DELETED
from repro.core.types import NULL_RID, is_null

#: Data columns: Key, A, B, C — matching Table 2's four-bit encodings.
KEY, A, B, C = range(4)


@pytest.fixture
def db():
    # merge_threshold is high so the scripted merges below are the only
    # ones that run (the scheduler would otherwise consume t1..t8 early).
    database = Database(EngineConfig(
        records_per_page=8, records_per_tail_page=8,
        update_range_size=8, merge_threshold=64, insert_range_size=8,
        compress_merged_pages=False, background_merge=False))
    yield database
    database.close()


@pytest.fixture
def table(db):
    # Table 2 deletes without a prior snapshot (t8 is just the all-∅
    # record), so the optional delete-snapshot is off.
    table = db.create_table("paper", num_columns=4, key_index=0,
                            column_names=("key", "A", "B", "C"))
    table.snapshot_on_delete = False
    return table


def _run_table2_script(table):
    """Inserts + the update/delete sequence behind the paper's Table 2."""
    rids = {}
    for key, a, b, c in (("k1", "a1", "b1", "c1"),
                         ("k2", "a2", "b2", "c2"),
                         ("k3", "a3", "b3", "c3"),
                         ("k4", "a4", "b4", "c4"),
                         ("k5", "a5", "b5", "c5"),
                         ("k6", "a6", "b6", "c6")):
        rids[key] = table.insert([key, a, b, c])
    table.update(rids["k2"], {A: "a21"})   # -> t1 (snapshot a2), t2
    table.update(rids["k2"], {A: "a22"})   # -> t3
    table.update(rids["k2"], {C: "c21"})   # -> t4 (snapshot c2), t5
    table.update(rids["k3"], {C: "c31"})   # -> t6 (snapshot c3), t7
    table.delete(rids["k1"])               # -> t8
    return rids


def _tail_row(table, rids, offset):
    """(encoding string, backpointer, [key, A, B, C]) of tail record."""
    update_range, _ = table.locate(rids["k1"])
    tail = update_range.tail
    encoding = SchemaEncoding.from_int(
        4, tail.record_cell(offset, SCHEMA_ENCODING_COLUMN))
    back = tail.record_cell(offset, INDIRECTION_COLUMN)
    values = [tail.record_cell(offset, table.schema.physical_index(column))
              for column in range(4)]
    return str(encoding), back, values


class TestPaperTable2:
    """Update and delete procedures (paper Table 2)."""

    def test_tail_records_match_paper(self, table):
        rids = _run_table2_script(table)
        update_range, _ = table.locate(rids["k1"])
        tail = update_range.tail
        t = [tail.rid_at(i) for i in range(8)]
        null = (is_null,)

        expected = [
            # (encoding, backpointer, key, A, B, C)   # paper row
            ("0100*", rids["k2"], None, "a2", None, None),   # t1
            ("0100", t[0], None, "a21", None, None),         # t2
            ("0100", t[1], None, "a22", None, None),         # t3
            ("0001*", t[2], None, None, None, "c2"),         # t4
            ("0101", t[3], None, "a22", None, "c21"),        # t5
            ("0001*", rids["k3"], None, None, None, "c3"),   # t6
            ("0001", t[5], None, None, None, "c31"),         # t7
            ("0000", rids["k1"], None, None, None, None),    # t8
        ]
        for offset, (enc, back, key, a, b, c) in enumerate(expected):
            actual_enc, actual_back, values = _tail_row(table, rids, offset)
            assert actual_enc == enc, "t%d encoding" % (offset + 1)
            assert actual_back == back, "t%d backpointer" % (offset + 1)
            for column, expected_value in enumerate((key, a, b, c)):
                if expected_value is None:
                    assert is_null(values[column]), \
                        "t%d col %d should be ∅" % (offset + 1, column)
                else:
                    assert values[column] == expected_value

    def test_indirection_forward_pointers(self, table):
        rids = _run_table2_script(table)
        update_range, _ = table.locate(rids["k1"])
        tail = update_range.tail
        t = [tail.rid_at(i) for i in range(8)]
        for key, expected in (("k1", t[7]), ("k2", t[4]), ("k3", t[6])):
            _, offset = table.locate(rids[key])
            assert update_range.indirection.read(offset) == expected
        for key in ("k4", "k5", "k6"):
            ur, offset = table.locate(rids[key])
            assert ur.indirection.read(offset) == NULL_RID  # ⊥

    def test_snapshot_start_times_inherit_base(self, table):
        # Paper: t1 and t4 carry b2's start time 13:04; t6 carries b3's.
        rids = _run_table2_script(table)
        update_range, _ = table.locate(rids["k1"])
        tail = update_range.tail

        def base_start(key):
            ur, offset = table.locate(rids[key])
            segment = ur.insert_range.segment
            return segment.record_cell(ur.insert_offset(offset),
                                       START_TIME_COLUMN)

        assert tail.record_cell(0, START_TIME_COLUMN) == base_start("k2")
        assert tail.record_cell(3, START_TIME_COLUMN) == base_start("k2")
        assert tail.record_cell(5, START_TIME_COLUMN) == base_start("k3")

    def test_reads_after_script(self, table):
        rids = _run_table2_script(table)
        assert table.read_latest(rids["k2"]) \
            == {KEY: "k2", A: "a22", B: "b2", C: "c21"}
        assert table.read_latest(rids["k3"]) \
            == {KEY: "k3", A: "a3", B: "b3", C: "c31"}
        assert table.read_latest(rids["k1"]) is DELETED
        assert table.read_latest(rids["k4"]) \
            == {KEY: "k4", A: "a4", B: "b4", C: "c4"}


class TestPaperTable3:
    """Append-only inserts with concurrent updates (paper Table 3)."""

    def test_insert_range_state(self, db, table):
        rids = {}
        for key, a, b, c in (("k7", "a7", "b7", "c7"),
                             ("k8", "a8", "b8", "c8"),
                             ("k9", "a9", "b9", "c9")):
            rids[key] = table.insert([key, a, b, c])
        update_range, _ = table.locate(rids["k7"])
        segment = update_range.insert_range.segment

        # tt records hold the full rows, aligned with the base RIDs.
        for i, key in enumerate(("k7", "k8", "k9")):
            assert segment.record_cell(i, BASE_RID_COLUMN) == rids[key]
            assert segment.record_cell(
                i, table.schema.physical_index(KEY)) == key
        # b7..b9 start with ⊥ indirection.
        for key in rids:
            ur, offset = table.locate(rids[key])
            assert ur.indirection.read(offset) == NULL_RID

        # Update C of k8 (t13 snapshot + t14) and A of k9 (t15 + t16).
        table.update(rids["k8"], {C: "c81"})
        table.update(rids["k9"], {A: "a91"})
        tail = update_range.tail
        t13, t14, t15, t16 = (tail.rid_at(i) for i in range(4))

        enc13 = SchemaEncoding.from_int(
            4, tail.record_cell(0, SCHEMA_ENCODING_COLUMN))
        assert str(enc13) == "0001*"
        assert tail.record_cell(0, table.schema.physical_index(C)) == "c8"
        assert tail.record_cell(0, INDIRECTION_COLUMN) == rids["k8"]
        assert tail.record_cell(1, table.schema.physical_index(C)) == "c81"
        enc15 = SchemaEncoding.from_int(
            4, tail.record_cell(2, SCHEMA_ENCODING_COLUMN))
        assert str(enc15) == "0100*"
        assert tail.record_cell(3, table.schema.physical_index(A)) == "a91"

        ur8, offset8 = table.locate(rids["k8"])
        assert ur8.indirection.read(offset8) == t14
        ur9, offset9 = table.locate(rids["k9"])
        assert ur9.indirection.read(offset9) == t16

        # Snapshot start times equal the original tt insertion times.
        tt_time_k8 = segment.record_cell(1, START_TIME_COLUMN)
        assert tail.record_cell(0, START_TIME_COLUMN) == tt_time_k8


class TestPaperTable4:
    """The relaxed, almost-up-to-date merge (paper Table 4)."""

    def _merged_state(self, db, table):
        rids = _run_table2_script(table)
        # Fill the insert range so the insert merge can materialise the
        # base pages ("base records must fall outside the insert range").
        for key in ("k7", "k8"):
            rids[key] = table.insert([key, "x", "x", "x"])
        db.run_merges()
        update_range, _ = table.locate(rids["k1"])
        assert update_range.merged
        # Merge exactly the first seven tail records (t1..t7): the
        # delete t8 stays outside the batch, as in the paper's Table 4.
        result = merge_update_range(table, update_range, max_records=7)
        assert result.performed
        return rids, update_range

    def test_merged_records(self, db, table):
        rids, update_range = self._merged_state(db, table)

        def base_row(key):
            ur, offset = table.locate(rids[key])
            return [table._read_base_cell(ur, offset,
                                          table.schema.physical_index(col))
                    for col in range(4)]

        assert base_row("k1") == ["k1", "a1", "b1", "c1"]  # t8 unmerged
        assert base_row("k2") == ["k2", "a22", "b2", "c21"]
        assert base_row("k3") == ["k3", "a3", "b3", "c31"]

    def test_tps_is_t7(self, db, table):
        rids, update_range = self._merged_state(db, table)
        tail = update_range.tail
        assert update_range.tps_rid == tail.rid_at(6)  # t7
        assert update_range.merged_upto == 7

    def test_last_updated_time_populated(self, db, table):
        rids, update_range = self._merged_state(db, table)
        ur2, offset2 = table.locate(rids["k2"])
        last = table._read_base_cell(ur2, offset2, LAST_UPDATED_COLUMN)
        tail = update_range.tail
        # = start time of t5, the newest applied record for b2.
        assert last == tail.record_cell(4, START_TIME_COLUMN)

    def test_indirection_unaffected_by_merge(self, db, table):
        rids, update_range = self._merged_state(db, table)
        tail = update_range.tail
        ur2, offset2 = table.locate(rids["k2"])
        assert ur2.indirection.read(offset2) == tail.rid_at(4)  # still t5

    def test_delete_still_visible_through_indirection(self, db, table):
        rids, _ = self._merged_state(db, table)
        assert table.read_latest(rids["k1"]) is DELETED


class TestPaperTable5:
    """Indirection interpretation and cumulation reset (paper Table 5)."""

    def _post_merge_updates(self, db, table):
        rids = _run_table2_script(table)
        for key in ("k7", "k8"):
            rids[key] = table.insert([key, "x", "x", "x"])
        db.run_merges()
        update_range, _ = table.locate(rids["k1"])
        merge_update_range(table, update_range, max_records=7)
        # Post-merge updates t9..t12 of the paper's Table 5.
        table.update(rids["k2"], {B: "b21"})   # t9 (snapshot b2), t10
        table.update(rids["k3"], {C: "c32"})   # t11
        table.update(rids["k2"], {A: "a23"})   # t12
        return rids, update_range

    def test_t12_cumulation_was_reset(self, db, table):
        rids, update_range = self._post_merge_updates(db, table)
        tail = update_range.tail
        # t12 is the last appended record (offset 11).
        encoding = SchemaEncoding.from_int(
            4, tail.record_cell(11, SCHEMA_ENCODING_COLUMN))
        # Paper: t12 is "0110" — it carries B from t10 and the new A,
        # but NOT C: the pre-merge updates were reset away.
        assert str(encoding) == "0110"
        assert tail.record_cell(11, table.schema.physical_index(A)) \
            == "a23"
        assert tail.record_cell(11, table.schema.physical_index(B)) \
            == "b21"
        assert is_null(tail.record_cell(11,
                                        table.schema.physical_index(C)))

    def test_t11_not_cumulative_across_merge(self, db, table):
        rids, update_range = self._post_merge_updates(db, table)
        tail = update_range.tail
        encoding = SchemaEncoding.from_int(
            4, tail.record_cell(10, SCHEMA_ENCODING_COLUMN))
        assert str(encoding) == "0001"  # only C

    def test_read_combines_merged_base_and_reset_tail(self, db, table):
        # Reading k2 with merged pages (TPS=t7) needs only t12 on top.
        rids, update_range = self._post_merge_updates(db, table)
        assert table.read_latest(rids["k2"]) \
            == {KEY: "k2", A: "a23", B: "b21", C: "c21"}
        assert table.read_latest_fast(rids["k2"]) \
            == {KEY: "k2", A: "a23", B: "b21", C: "c21"}
        assert table.read_latest(rids["k3"]) \
            == {KEY: "k3", A: "a3", B: "b3", C: "c32"}

    def test_historic_versions_still_reachable(self, db, table):
        rids, update_range = self._post_merge_updates(db, table)
        # Walking back from t12: versions of A are a23, a22, a22, a21, a2.
        assert table.read_relative_version(rids["k2"], (A,), -1) \
            == {A: "a22"}

    def test_tps_interpretation(self, db, table):
        # "If the indirection value is not larger than the TPS counter
        # ... the base record holds the latest version" — reversed for
        # descending tail RIDs.
        from repro.core.table import tps_applied
        rids, update_range = self._post_merge_updates(db, table)
        tail = update_range.tail
        t5, t7, t12 = tail.rid_at(4), tail.rid_at(6), tail.rid_at(11)
        assert tps_applied(update_range.tps_rid, t5)       # merged
        assert tps_applied(update_range.tps_rid, t7)       # the TPS
        assert not tps_applied(update_range.tps_rid, t12)  # newer


class TestPaperTable6:
    """Historic tail compression (paper Table 6).

    The paper collapses the two 13:04 snapshot slots into the version
    lists; this implementation keeps one slot per tail record (including
    snapshots) but reproduces every structural property Table 6
    demonstrates: base-RID ordering, temporally-ordered inlined
    versions, per-column value lists, and one surviving back pointer per
    record chain.
    """

    def _compressed(self, db, table):
        from repro.core.compression import compress_historic_tails
        rids = _run_table2_script(table)
        for key in ("k7", "k8"):
            rids[key] = table.insert([key, "x", "x", "x"])
        db.run_merges()
        update_range, _ = table.locate(rids["k1"])
        merge_update_range(table, update_range)  # consume t1..t8
        count = compress_historic_tails(table, update_range)
        assert count == 8
        return rids, update_range

    def test_groups_ordered_by_base_rid(self, db, table):
        rids, update_range = self._compressed(db, table)
        part = update_range.tail.compressed_parts[0]
        base_rids = [group.base_rid for group in part.groups()]
        assert base_rids == sorted(base_rids)
        assert base_rids == [rids["k1"], rids["k2"], rids["k3"]]

    def test_versions_inlined_temporally(self, db, table):
        # Snapshot records carry the *original* start time (13:04 in
        # the paper), so temporal ordering holds over the regular
        # (non-snapshot) version slots — the ones Table 6 inlines.
        rids, update_range = self._compressed(db, table)
        part = update_range.tail.compressed_parts[0]
        for group in part.groups():
            times = group.start_times()
            regular = [
                time for member, time in enumerate(times)
                if not SchemaEncoding.from_int(
                    4, group.encodings[member]).is_snapshot
            ]
            assert regular == sorted(regular)
            # And members are stored in append (offset) order.
            assert group.offsets == sorted(group.offsets)

    def test_column_values_inlined(self, db, table):
        rids, update_range = self._compressed(db, table)
        part = update_range.tail.compressed_parts[0]
        k2_group = next(group for group in part.groups()
                        if group.base_rid == rids["k2"])
        # A's versions across k2's chain: a2 (snapshot), a21, a22, a22.
        a_values = [k2_group.column_value(m, A)
                    for m in range(len(k2_group.offsets))]
        assert [v for v in a_values if not is_null(v)] \
            == ["a2", "a21", "a22", "a22"]

    def test_reads_unchanged_after_compression(self, db, table):
        rids, update_range = self._compressed(db, table)
        db.epoch_manager.reclaim()
        assert table.read_latest(rids["k2"]) \
            == {KEY: "k2", A: "a22", B: "b2", C: "c21"}
        assert table.read_relative_version(rids["k2"], (A,), -1) \
            == {A: "a22"}
        assert table.read_relative_version(rids["k2"], (A,), -2) \
            == {A: "a21"}
        assert table.read_latest(rids["k1"]) is DELETED
