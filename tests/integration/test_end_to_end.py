"""End-to-end lifecycle: load → update → merge → compress → time-travel."""

import pytest

from repro import Database, EngineConfig
from repro.core.merge import merge_update_range


@pytest.fixture
def db():
    database = Database(EngineConfig(
        records_per_page=16, records_per_tail_page=16,
        update_range_size=32, merge_threshold=16, insert_range_size=32,
        background_merge=False))
    yield database
    database.close()


class TestFullLifecycle:
    def test_oltp_olap_cycle(self, db):
        table = db.create_table("orders", num_columns=4,
                                column_names=("id", "qty", "price",
                                              "status"))
        query = db.query("orders")
        # OLTP: load and mutate.
        for key in range(96):
            query.insert(key, 1, key % 7, 0)
        db.run_merges()
        checkpoint = db.clock.now()
        for key in range(0, 96, 3):
            query.update_columns(key, {1: 2, 3: 1})
        for key in range(90, 96):
            query.delete(key)
        # OLAP on the same data, no ETL.
        expected_qty = sum(2 if key % 3 == 0 else 1 for key in range(90))
        assert query.scan_sum(1) == expected_qty
        # Merge everything and re-check.
        for update_range in table.sorted_ranges():
            merge_update_range(table, update_range)
        assert query.scan_sum(1) == expected_qty
        # Historic query at the checkpoint: every row still qty=1.
        assert query.scan_sum(1, as_of=checkpoint) == 96
        # Compress history and re-run both.
        db.compress_history()
        db.epoch_manager.reclaim()
        assert query.scan_sum(1) == expected_qty
        assert query.scan_sum(1, as_of=checkpoint) == 96

    def test_repeated_merge_rounds(self, db):
        table = db.create_table("t", num_columns=2)
        query = db.query("t")
        for key in range(32):
            query.insert(key, 0)
        db.run_merges()
        # Ten rounds of update-everything + merge; reads always exact.
        for round_number in range(1, 11):
            for key in range(32):
                query.update(key, None, round_number)
            for update_range in table.sorted_ranges():
                merge_update_range(table, update_range)
            assert query.scan_sum(1) == 32 * round_number
            assert query.select(5, 0, None)[0][1] == round_number
        # Version history survived all ten merges.
        assert query.select_version(5, 0, None, -3)[0][1] == 7

    def test_mixed_transactions_and_maintenance(self, db):
        table = db.create_table("t", num_columns=3)
        for key in range(64):
            table.insert([key, 100, 0])
        db.run_merges()
        for i in range(20):
            txn = db.begin_transaction()
            txn.update(table, i, {1: 200})
            txn.insert(table, [1000 + i, 50, 0])
            if i % 3 == 0:
                txn.abort()
            else:
                assert txn.commit()
            if i % 5 == 0:
                db.run_merges()
        committed = [i for i in range(20) if i % 3 != 0]
        query = db.query("t")
        expected = 64 * 100 + len(committed) * 100 + len(committed) * 50
        assert query.scan_sum(1) == expected
        # Aborted inserts are invisible.
        assert query.select(1000, 0, None) == []
        assert query.select(1001, 0, None)[0][1] == 50

    def test_epoch_reclaims_after_queries_finish(self, db):
        table = db.create_table("t", num_columns=2)
        for key in range(32):
            table.insert([key, 1])
        db.run_merges()
        handle = db.epoch_manager.enter_query(db.clock.now())
        for key in range(32):
            table.update(table.index.primary.get(key), {1: 2})
        for update_range in table.sorted_ranges():
            merge_update_range(table, update_range)
        pending_before = db.epoch_manager.pending_pages
        assert pending_before > 0  # the old query pins outdated pages
        db.epoch_manager.exit_query(handle)
        assert db.epoch_manager.pending_pages == 0

    def test_update_heavy_page_growth_bounded(self, db):
        # Tail blocks extend as updates accumulate; directory and RID
        # spaces stay coherent across many blocks.
        table = db.create_table("t", num_columns=2)
        table.insert([0, 0])
        rid = table.index.primary.get(0)
        for i in range(200):  # >> update_range_size tail records
            table.update(rid, {1: i})
        assert table.read_latest(rid, (1,))[1] == 199
        update_range, _ = table.locate(rid)
        assert update_range.tail.num_allocated() >= 200
        # Several tail blocks were chained; all remain addressable.
        assert len(update_range.tail._blocks) > 1
