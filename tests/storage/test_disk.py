"""Page files: persistence, re-pointing, compaction."""

import os

import pytest

from repro.core.page import Page
from repro.core.types import PageKind
from repro.errors import StorageError
from repro.storage.disk import PageFile


def _page(page_id: int, values) -> Page:
    page = Page(page_id, PageKind.TAIL, max(len(values), 1))
    for slot, value in enumerate(values):
        page.write_slot(slot, value)
    return page


@pytest.fixture
def page_file(tmp_path):
    pf = PageFile(str(tmp_path / "table.pages"))
    yield pf
    pf.close()


class TestReadWrite:
    def test_round_trip(self, page_file):
        page_file.write_page(_page(1, [1, 2, 3]))
        restored = page_file.read_page(1)
        assert [restored.read_slot(i) for i in range(3)] == [1, 2, 3]

    def test_missing_page(self, page_file):
        with pytest.raises(StorageError):
            page_file.read_page(42)

    def test_contains_len(self, page_file):
        page_file.write_page(_page(1, [1]))
        page_file.write_page(_page(2, [2]))
        assert 1 in page_file and 2 in page_file
        assert len(page_file) == 2
        assert sorted(page_file.page_ids()) == [1, 2]

    def test_rewrite_repoints(self, page_file):
        page_file.write_page(_page(1, [1]))
        page_file.write_page(_page(1, [9, 9]))
        restored = page_file.read_page(1)
        assert restored.read_slot(0) == 9

    def test_delete(self, page_file):
        page_file.write_page(_page(1, [1]))
        page_file.delete_page(1)
        assert 1 not in page_file


class TestDurability:
    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "t.pages")
        pf = PageFile(path)
        pf.write_page(_page(1, [5, 6]))
        pf.close()
        pf2 = PageFile(path)
        assert pf2.read_page(1).read_slot(1) == 6
        pf2.close()

    def test_compact_reclaims_space(self, tmp_path):
        path = str(tmp_path / "t.pages")
        pf = PageFile(path)
        for round_number in range(5):
            pf.write_page(_page(1, [round_number] * 8))
        before = os.path.getsize(path)
        saved = pf.compact()
        assert saved > 0
        assert os.path.getsize(path) < before
        assert pf.read_page(1).read_slot(0) == 4  # latest version kept
        pf.close()

    def test_compact_then_reopen(self, tmp_path):
        path = str(tmp_path / "t.pages")
        pf = PageFile(path)
        pf.write_page(_page(1, [1]))
        pf.write_page(_page(2, [2]))
        pf.write_page(_page(1, [3]))
        pf.compact()
        pf.close()
        pf2 = PageFile(path)
        assert pf2.read_page(1).read_slot(0) == 3
        assert pf2.read_page(2).read_slot(0) == 2
        pf2.close()
