"""Buffer pool: pinning, LRU eviction, steal policy."""

import pytest

from repro.core.page import Page
from repro.core.types import PageKind
from repro.errors import BufferPoolFullError, StorageError
from repro.storage.bufferpool import BufferPool
from repro.storage.disk import PageFile


def _page(page_id: int, value: int = 0) -> Page:
    page = Page(page_id, PageKind.TAIL, 4)
    page.write_slot(0, value)
    return page


@pytest.fixture
def pool(tmp_path):
    page_file = PageFile(str(tmp_path / "t.pages"))
    pool = BufferPool(page_file, capacity=3)
    yield pool
    page_file.close()


class TestFetchPin:
    def test_put_fetch(self, pool):
        pool.put(_page(1, 42))
        page = pool.fetch(1)
        assert page.read_slot(0) == 42
        assert pool.stat_hits == 1
        pool.unpin(1)

    def test_miss_loads_from_disk(self, pool):
        pool._file.write_page(_page(7, 9))
        page = pool.fetch(7)
        assert page.read_slot(0) == 9
        assert pool.stat_misses == 1
        pool.unpin(7)

    def test_unknown_page(self, pool):
        with pytest.raises(StorageError):
            pool.fetch(99)

    def test_duplicate_put(self, pool):
        pool.put(_page(1))
        with pytest.raises(StorageError):
            pool.put(_page(1))

    def test_unpin_without_pin(self, pool):
        pool.put(_page(1))
        with pytest.raises(StorageError):
            pool.unpin(1)

    def test_pinned_context(self, pool):
        pool.put(_page(1, 5))
        with pool.pinned(1) as page:
            assert page.read_slot(0) == 5
        pool.unpin(1) if False else None
        # fully unpinned: eviction is possible again
        pool.put(_page(2))
        pool.put(_page(3))
        pool.put(_page(4))  # would raise if page 1 were still pinned


class TestEviction:
    def test_lru_eviction_writes_dirty(self, pool):
        for page_id in (1, 2, 3):
            pool.put(_page(page_id, page_id))
        pool.put(_page(4, 4))  # evicts page 1 (LRU), steal-writes it
        assert pool.stat_evictions == 1
        assert pool.stat_steals == 1
        assert not pool.is_resident(1)
        # The stolen page is readable back from disk.
        page = pool.fetch(1)
        assert page.read_slot(0) == 1
        pool.unpin(1)

    def test_pinned_pages_not_evicted(self, pool):
        pool.put(_page(1))
        pool.fetch(1)  # pin
        pool.put(_page(2))
        pool.put(_page(3))
        pool.put(_page(4))  # must evict 2 or 3, never 1
        assert pool.is_resident(1)
        pool.unpin(1)

    def test_all_pinned_raises(self, pool):
        for page_id in (1, 2, 3):
            pool.put(_page(page_id))
            pool.fetch(page_id)
        with pytest.raises(BufferPoolFullError):
            pool.put(_page(4))

    def test_recently_used_survives(self, pool):
        for page_id in (1, 2, 3):
            pool.put(_page(page_id))
        pool.fetch(1)
        pool.unpin(1)  # 1 is now most recently used
        pool.put(_page(4))  # evicts 2 (the oldest unpinned)
        assert pool.is_resident(1)
        assert not pool.is_resident(2)


class TestNoSteal:
    def test_dirty_pages_not_stolen(self, tmp_path):
        page_file = PageFile(str(tmp_path / "ns.pages"))
        pool = BufferPool(page_file, capacity=2, allow_steal=False)
        pool.put(_page(1), dirty=True)
        pool.put(_page(2), dirty=False)
        pool.put(_page(3))  # can only evict the clean page 2
        assert pool.is_resident(1)
        assert not pool.is_resident(2)
        page_file.close()

    def test_all_dirty_raises(self, tmp_path):
        page_file = PageFile(str(tmp_path / "ns.pages"))
        pool = BufferPool(page_file, capacity=2, allow_steal=False)
        pool.put(_page(1), dirty=True)
        pool.put(_page(2), dirty=True)
        with pytest.raises(BufferPoolFullError):
            pool.put(_page(3))
        page_file.close()


class TestFlush:
    def test_flush_all(self, pool):
        pool.put(_page(1, 11), dirty=True)
        pool.put(_page(2, 22), dirty=True)
        assert pool.flush_all() == 2
        assert pool.flush_all() == 0  # now clean
        assert pool._file.read_page(1).read_slot(0) == 11

    def test_mark_dirty(self, pool):
        pool.put(_page(1), dirty=False)
        pool.mark_dirty(1)
        assert pool.flush_all() == 1

    def test_capacity_validation(self, tmp_path):
        page_file = PageFile(str(tmp_path / "x.pages"))
        with pytest.raises(ValueError):
            BufferPool(page_file, capacity=0)
        page_file.close()
