"""Page serialization round trips."""

import struct

import pytest

from repro.core.page import BytesPage, Page, RowPage
from repro.core.types import NULL, PageKind, is_null
from repro.errors import SerializationError
from repro.storage.serialization import (_ENVELOPE, _HEADER,
                                         deserialize_page, serialize_page)


class TestColumnPages:
    def test_int_round_trip(self):
        page = Page(7, PageKind.BASE, 8, column=3)
        page.fill([1, 2, 3, 4])
        page.set_lineage(99, 2)
        restored = deserialize_page(serialize_page(page))
        assert restored.page_id == 7
        assert restored.kind is PageKind.BASE
        assert restored.capacity == 8
        assert restored.column == 3
        assert restored.tps_rid == 99
        assert restored.merge_count == 2
        assert [restored.read_slot(i) for i in range(4)] == [1, 2, 3, 4]
        assert restored.frozen  # base pages come back read-only

    def test_null_round_trip(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(0, NULL)
        page.write_slot(1, 5)
        restored = deserialize_page(serialize_page(page))
        assert is_null(restored.read_slot(0))
        assert restored.read_slot(1) == 5
        assert not restored.frozen  # tail pages stay appendable

    def test_large_ints_fall_back_to_pickle(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(0, 1 << 70)
        restored = deserialize_page(serialize_page(page))
        assert restored.read_slot(0) == 1 << 70

    def test_arbitrary_values(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(0, "text")
        page.write_slot(1, (1, 2))
        restored = deserialize_page(serialize_page(page))
        assert restored.read_slot(0) == "text"
        assert restored.read_slot(1) == (1, 2)

    def test_no_column(self):
        page = Page(1, PageKind.TAIL, 4, column=None)
        page.write_slot(0, 1)
        assert deserialize_page(serialize_page(page)).column is None


class TestBytesPages:
    def test_round_trip(self):
        page = BytesPage(11, PageKind.BASE, 8, column=2)
        page.fill([10, NULL, 30, 40])
        page.set_lineage(77, 3)
        restored = deserialize_page(serialize_page(page))
        assert isinstance(restored, BytesPage)
        assert restored.page_id == 11
        assert restored.column == 2
        assert restored.tps_rid == 77
        assert restored.merge_count == 3
        assert restored.read_slot(0) == 10
        assert is_null(restored.read_slot(1))
        assert [restored.read_slot(i) for i in (2, 3)] == [30, 40]
        assert restored.frozen

    def test_disk_image_is_buffer_byte_for_byte(self):
        """The BYTES payload prefix IS the in-memory buffer, verbatim."""
        page = BytesPage(5, PageKind.BASE, 8, column=1)
        page.fill([3, 1, 4, 1, 5, 9])
        body = serialize_page(page)[_ENVELOPE.size:]
        fmt = body[4]
        assert fmt == 5  # _FORMAT_BYTES
        n = page.num_records
        payload = body[_HEADER.size:]
        assert payload[:8 * n] == bytes(page.buffer[:8 * n])
        assert payload[:8 * n] == struct.pack("<6q", 3, 1, 4, 1, 5, 9)

    def test_sidecar_round_trip(self):
        page = BytesPage(6, PageKind.TAIL, 8)
        page.write_slot(0, 1 << 70)
        page.write_slot(1, "text")
        page.write_slot(2, 42)
        restored = deserialize_page(serialize_page(page))
        assert isinstance(restored, BytesPage)
        assert restored.read_slot(0) == 1 << 70
        assert restored.read_slot(1) == "text"
        assert restored.read_slot(2) == 42
        assert not restored.frozen  # tail pages stay appendable

    def test_sparse_bytes_page_falls_back(self):
        """Non-dense written sets use the (slot, value) sparse format."""
        page = BytesPage(8, PageKind.TAIL, 8)
        page.write_slot(0, 1)
        page.write_slot(5, 2)  # hole at 1..4
        restored = deserialize_page(serialize_page(page))
        assert restored.read_slot(0) == 1
        assert restored.read_slot(5) == 2
        assert not restored.is_written(3)


class TestRowPages:
    def test_round_trip(self):
        page = RowPage(3, PageKind.MERGED, 4, width=3)
        page.write_row(0, (1, 2, 3))
        page.write_row(2, (4, NULL, 6))
        page.set_lineage(5, 1)
        restored = deserialize_page(serialize_page(page))
        assert isinstance(restored, RowPage)
        assert restored.read_row(0) == (1, 2, 3)
        assert is_null(restored.read_row(2)[1])
        assert not restored.is_written(1)
        assert restored.tps_rid == 5


class TestErrors:
    def test_truncated(self):
        with pytest.raises(SerializationError):
            deserialize_page(b"xx")

    def test_bad_magic(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(0, 1)
        data = bytearray(serialize_page(page))
        data[0:4] = b"NOPE"
        with pytest.raises(SerializationError):
            deserialize_page(bytes(data))
