"""Page serialization round trips."""

import pytest

from repro.core.page import Page, RowPage
from repro.core.types import NULL, PageKind, is_null
from repro.errors import SerializationError
from repro.storage.serialization import deserialize_page, serialize_page


class TestColumnPages:
    def test_int_round_trip(self):
        page = Page(7, PageKind.BASE, 8, column=3)
        page.fill([1, 2, 3, 4])
        page.set_lineage(99, 2)
        restored = deserialize_page(serialize_page(page))
        assert restored.page_id == 7
        assert restored.kind is PageKind.BASE
        assert restored.capacity == 8
        assert restored.column == 3
        assert restored.tps_rid == 99
        assert restored.merge_count == 2
        assert [restored.read_slot(i) for i in range(4)] == [1, 2, 3, 4]
        assert restored.frozen  # base pages come back read-only

    def test_null_round_trip(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(0, NULL)
        page.write_slot(1, 5)
        restored = deserialize_page(serialize_page(page))
        assert is_null(restored.read_slot(0))
        assert restored.read_slot(1) == 5
        assert not restored.frozen  # tail pages stay appendable

    def test_large_ints_fall_back_to_pickle(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(0, 1 << 70)
        restored = deserialize_page(serialize_page(page))
        assert restored.read_slot(0) == 1 << 70

    def test_arbitrary_values(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(0, "text")
        page.write_slot(1, (1, 2))
        restored = deserialize_page(serialize_page(page))
        assert restored.read_slot(0) == "text"
        assert restored.read_slot(1) == (1, 2)

    def test_no_column(self):
        page = Page(1, PageKind.TAIL, 4, column=None)
        page.write_slot(0, 1)
        assert deserialize_page(serialize_page(page)).column is None


class TestRowPages:
    def test_round_trip(self):
        page = RowPage(3, PageKind.MERGED, 4, width=3)
        page.write_row(0, (1, 2, 3))
        page.write_row(2, (4, NULL, 6))
        page.set_lineage(5, 1)
        restored = deserialize_page(serialize_page(page))
        assert isinstance(restored, RowPage)
        assert restored.read_row(0) == (1, 2, 3)
        assert is_null(restored.read_row(2)[1])
        assert not restored.is_written(1)
        assert restored.tps_rid == 5


class TestErrors:
    def test_truncated(self):
        with pytest.raises(SerializationError):
            deserialize_page(b"xx")

    def test_bad_magic(self):
        page = Page(1, PageKind.TAIL, 4)
        page.write_slot(0, 1)
        data = bytearray(serialize_page(page))
        data[0:4] = b"NOPE"
        with pytest.raises(SerializationError):
            deserialize_page(bytes(data))
