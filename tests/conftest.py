"""Shared fixtures: small deterministic engine configurations."""

from __future__ import annotations

import pytest

from repro import Database, EngineConfig
from repro.analysis import locks as lock_check
from repro.core.query import Query


@pytest.fixture(autouse=lock_check.ENABLED)
def _assert_lock_discipline():
    """With REPRO_LOCK_CHECK=1, fail any test that witnessed a
    lock-order/rank inversion or a callback fired under a hot lock."""
    lock_check.reset()
    yield
    lock_check.assert_clean()


@pytest.fixture
def config() -> EngineConfig:
    """Small page/range geometry: exercises boundaries quickly."""
    return EngineConfig(
        records_per_page=8,
        records_per_tail_page=8,
        update_range_size=16,
        merge_threshold=8,
        insert_range_size=16,
        background_merge=False,
    )


@pytest.fixture
def db(config: EngineConfig):
    """A database with the small test configuration."""
    database = Database(config)
    yield database
    database.close()


@pytest.fixture
def table(db: Database):
    """A 5-column table: key + 4 payload columns."""
    return db.create_table("test", num_columns=5, key_index=0)


@pytest.fixture
def query(table) -> Query:
    """Auto-commit query handle over the test table."""
    return Query(table)


@pytest.fixture
def loaded(db, table, query):
    """Table pre-loaded with 40 rows: key k -> (k, k*10, k*100, k*3, 7)."""
    for key in range(40):
        query.insert(key, key * 10, key * 100, key * 3, 7)
    return query
