"""Snapshot-isolation sums with own writes: the batch overlay.

``Transaction.sum`` / ``Transaction.scan_sum`` under snapshot-style
isolation route through the version-horizon plane at the transaction's
begin time even once the transaction has writes of its own; the own
written/inserted RIDs overlay per record. These tests pin the overlay
against the per-record own-or-snapshot predicate oracle.
"""

import pytest

from repro.core.config import TEST_CONFIG
from repro.core.db import Database
from repro.core.table import DELETED
from repro.core.types import IsolationLevel, is_null
from repro.txn.transaction import Transaction


@pytest.fixture
def db():
    database = Database(TEST_CONFIG)
    yield database
    database.close()


def _load(db, rows=40):
    table = db.create_table("t", 3)
    for key in range(rows):
        table.insert([key, key * 10, 7])
    db.run_merges()
    return table


def _oracle_sum(table, txn, rids, data_column):
    predicate = txn.ctx.read_predicate()
    total = 0
    for rid in rids:
        values = table.read_latest(rid, (data_column,), predicate)
        if values is None or values is DELETED:
            continue
        if not is_null(values[data_column]):
            total += values[data_column]
    return total


class TestKeyedSumOverlay:
    def test_own_update_visible_in_snapshot_sum(self, db):
        table = _load(db)
        txn = Transaction(db.txn_manager, isolation=IsolationLevel.SNAPSHOT)
        before = txn.sum(table, 0, 9, 1)
        assert before == sum(key * 10 for key in range(10))
        txn.update(table, 3, {1: 1000})
        assert txn.sum(table, 0, 9, 1) == before - 30 + 1000
        txn.abort()

    def test_concurrent_commit_stays_invisible(self, db):
        """Own writes overlay; *other* post-begin commits do not leak."""
        table = _load(db)
        txn = Transaction(db.txn_manager, isolation=IsolationLevel.SNAPSHOT)
        before = txn.sum(table, 0, 9, 1)
        txn.update(table, 3, {1: 1000})  # own write activates overlay
        other = Transaction(db.txn_manager)
        other.update(table, 5, {1: 99999})
        assert other.commit()
        assert txn.sum(table, 0, 9, 1) == before - 30 + 1000
        txn.abort()

    def test_own_delete_and_insert(self, db):
        table = _load(db)
        txn = Transaction(db.txn_manager, isolation=IsolationLevel.SNAPSHOT)
        before = txn.sum(table, 0, 49, 1)
        txn.delete(table, 4)            # remove 40
        txn.insert(table, [45, 333, 0])  # new key inside the range
        expected = before - 40 + 333
        assert txn.sum(table, 0, 49, 1) == expected
        rids = [rid for _, rid in table.index.primary.range_items(0, 49)]
        assert txn.sum(table, 0, 49, 1) == _oracle_sum(table, txn, rids, 1)
        txn.abort()

    def test_matches_oracle_under_mixed_history(self, db):
        """Random-ish mix: pre-begin commits, own writes, post-begin
        commits by others — overlay equals the per-record oracle."""
        table = _load(db)
        setup = Transaction(db.txn_manager)
        setup.update(table, 7, {1: 777})
        assert setup.commit()
        txn = Transaction(db.txn_manager,
                          isolation=IsolationLevel.REPEATABLE_READ)
        txn.update(table, 2, {1: 222})
        txn.update(table, 2, {2: 9})     # second write, same record
        txn.update(table, 11, {1: 111})
        late = Transaction(db.txn_manager)
        late.update(table, 13, {1: 131313})
        assert late.commit()
        rids = [rid for _, rid in table.index.primary.range_items(0, 19)]
        assert txn.sum(table, 0, 19, 1) == _oracle_sum(table, txn, rids, 1)
        txn.abort()


class TestScanSumOverlay:
    def test_full_table_scan_sum_with_own_writes(self, db):
        table = _load(db)
        txn = Transaction(db.txn_manager, isolation=IsolationLevel.SNAPSHOT)
        base = txn.scan_sum(table, 1)
        assert base == sum(key * 10 for key in range(40))
        txn.update(table, 0, {1: 5})
        txn.delete(table, 1)
        txn.insert(table, [100, 2000, 0])
        expected = base - 0 - 10 + 5 + 2000
        assert txn.scan_sum(table, 1) == expected
        txn.abort()

    def test_scan_sum_repeatable_while_others_commit(self, db):
        table = _load(db)
        txn = Transaction(db.txn_manager, isolation=IsolationLevel.SNAPSHOT)
        txn.update(table, 6, {1: 606})
        first = txn.scan_sum(table, 1)
        other = Transaction(db.txn_manager)
        other.update(table, 8, {1: 88888})
        assert other.commit()
        assert txn.scan_sum(table, 1) == first
        txn.abort()

    def test_scan_sum_matches_oracle_after_merge(self, db):
        """Own writes + a merge consuming concurrent commits."""
        table = _load(db)
        filler = Transaction(db.txn_manager)
        for key in range(0, 40, 3):
            filler.update(table, key, {1: key})
        assert filler.commit()
        txn = Transaction(db.txn_manager,
                          isolation=IsolationLevel.SNAPSHOT)
        txn.update(table, 9, {1: 909})
        post = Transaction(db.txn_manager)
        for key in range(0, 40, 5):
            post.update(table, key, {1: 40000 + key})
        assert post.commit()
        db.run_merges()
        rids = [rid for _, rid in table.index.primary.range_items(0, 39)]
        assert txn.scan_sum(table, 1) == _oracle_sum(table, txn, rids, 1)
        txn.abort()
