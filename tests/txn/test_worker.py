"""Transaction workers: retries, threading, stats."""

import pytest

from repro.errors import TransactionAborted, WriteWriteConflict
from repro.txn.worker import TransactionWorker, WorkerStats


class TestRunOne:
    def test_commits(self, db, table):
        worker = TransactionWorker(db.txn_manager)
        assert worker.run_one(lambda txn: txn.insert(table,
                                                     [1, 0, 0, 0, 0]))
        assert worker.stats.committed == 1
        assert db.query("test").select(1, 0, None)

    def test_retries_on_conflict(self, db, loaded, table):
        attempts = []
        blocker = db.begin_transaction()
        blocker.update(table, 5, {1: 1})

        def body(txn):
            attempts.append(1)
            if len(attempts) == 1:
                # First attempt conflicts with the open blocker.
                txn.update(table, 5, {1: 2})
            else:
                blocker.commit()
                txn.update(table, 5, {1: 3})

        worker = TransactionWorker(db.txn_manager)
        assert worker.run_one(body)
        assert worker.stats.retries == 1
        assert worker.stats.committed == 1

    def test_gives_up_after_max_retries(self, db, loaded, table):
        blocker = db.begin_transaction()
        blocker.update(table, 5, {1: 1})
        worker = TransactionWorker(db.txn_manager, max_retries=2)
        assert not worker.run_one(lambda txn: txn.update(table, 5, {1: 2}))
        assert worker.stats.gave_up == 1
        assert worker.stats.aborted == 3  # initial try + 2 retries
        blocker.abort()


class TestBatchRun:
    def test_run_all(self, db, table):
        worker = TransactionWorker(db.txn_manager)
        for key in range(5):
            worker.add(
                lambda txn, key=key: txn.insert(table, [key, 0, 0, 0, 0]))
        stats = worker.run()
        assert stats.committed == 5
        assert db.query("test").count() == 5

    def test_threaded_run(self, db, table):
        for key in range(10):
            table.insert([key, 0, 0, 0, 0])
        workers = []
        for i in range(3):
            worker = TransactionWorker(db.txn_manager, name="w%d" % i)
            for key in range(10):
                worker.add(lambda txn, key=key:
                           txn.increment(table, key, 1))
            worker.start()
            workers.append(worker)
        total = WorkerStats()
        for worker in workers:
            total.merge(worker.join(timeout=30.0))
        assert total.committed + total.gave_up == 30
        # Every committed increment is reflected exactly once.
        assert db.query("test").sum(0, 9, 1) == total.committed

    def test_start_twice_rejected(self, db):
        worker = TransactionWorker(db.txn_manager)
        worker.start()
        with pytest.raises(RuntimeError):
            worker.start()
        worker.join()

    def test_stop_event(self, db, table):
        worker = TransactionWorker(db.txn_manager)
        worker.stop_event.set()
        worker.add(lambda txn: txn.insert(table, [1, 0, 0, 0, 0]))
        stats = worker.run()
        assert stats.committed == 0
