"""Multi-statement Transaction API."""

import pytest

from repro.core.types import IsolationLevel, TransactionState
from repro.errors import (IllegalTransactionState, KeyNotFoundError,
                          TransactionAborted, WriteWriteConflict)
from repro.txn.transaction import Transaction


class TestLifecycle:
    def test_commit(self, db, table):
        txn = Transaction(db.txn_manager)
        txn.insert(table, [1, 10, 0, 0, 0])
        assert txn.commit()
        assert txn.state is TransactionState.COMMITTED
        assert txn.commit_time is not None

    def test_abort(self, db, table):
        txn = Transaction(db.txn_manager)
        txn.insert(table, [1, 10, 0, 0, 0])
        txn.abort()
        assert txn.state is TransactionState.ABORTED
        assert table.index.primary.get(1) is None

    def test_no_statements_after_finish(self, db, table):
        txn = Transaction(db.txn_manager)
        txn.commit()
        with pytest.raises(IllegalTransactionState):
            txn.insert(table, [1, 0, 0, 0, 0])

    def test_abort_idempotent(self, db, table):
        txn = Transaction(db.txn_manager)
        txn.abort()
        txn.abort()

    def test_context_manager_commits(self, db, table):
        with Transaction(db.txn_manager) as txn:
            txn.insert(table, [1, 10, 0, 0, 0])
        assert db.query("test").select(1, 0, None)[0][1] == 10

    def test_context_manager_aborts_on_error(self, db, table):
        with pytest.raises(RuntimeError):
            with Transaction(db.txn_manager) as txn:
                txn.insert(table, [1, 10, 0, 0, 0])
                raise RuntimeError("boom")
        assert db.query("test").select(1, 0, None) == []


class TestStatements:
    def test_select_by_key(self, db, loaded, table):
        txn = Transaction(db.txn_manager)
        assert txn.select(table, 3, (1,))[1] == 30
        txn.commit()

    def test_select_missing_key(self, db, table):
        txn = Transaction(db.txn_manager)
        assert txn.select(table, 99) is None
        txn.commit()

    def test_update_by_key(self, db, loaded, table):
        txn = Transaction(db.txn_manager)
        txn.update(table, 3, {1: 999})
        txn.commit()
        assert loaded.select(3, 0, None)[0][1] == 999

    def test_update_missing_key_aborts(self, db, table):
        txn = Transaction(db.txn_manager)
        with pytest.raises(KeyNotFoundError):
            txn.update(table, 99, {1: 1})
        assert txn.state is TransactionState.ABORTED

    def test_delete_by_key(self, db, loaded, table):
        txn = Transaction(db.txn_manager)
        txn.delete(table, 3)
        txn.commit()
        assert loaded.select(3, 0, None) == []

    def test_increment(self, db, loaded, table):
        txn = Transaction(db.txn_manager)
        txn.increment(table, 3, 1, delta=7)
        txn.commit()
        assert loaded.select(3, 0, None)[0][1] == 37

    def test_sum(self, db, loaded, table):
        txn = Transaction(db.txn_manager)
        assert txn.sum(table, 0, 9, 1) == sum(k * 10 for k in range(10))
        txn.commit()

    def test_sum_sees_own_writes(self, db, loaded, table):
        txn = Transaction(db.txn_manager)
        txn.update(table, 0, {1: 1000})
        assert txn.sum(table, 0, 9, 1) \
            == sum(k * 10 for k in range(1, 10)) + 1000
        txn.abort()

    def test_select_rid(self, db, loaded, table):
        rid = table.index.primary.get(5)
        txn = Transaction(db.txn_manager)
        assert txn.select_rid(table, rid, (1,))[1] == 50
        txn.commit()


class TestConflictAbort:
    def test_conflicting_update_aborts_whole_txn(self, db, loaded, table):
        blocker = Transaction(db.txn_manager)
        blocker.update(table, 5, {1: 1})
        victim = Transaction(db.txn_manager)
        victim.update(table, 6, {1: 2})  # fine
        with pytest.raises(WriteWriteConflict):
            victim.update(table, 5, {1: 3})  # conflict → abort
        assert victim.state is TransactionState.ABORTED
        blocker.commit()
        # The victim's earlier write was rolled back too.
        assert loaded.select(6, 0, None)[0][1] == 60

    def test_validation_failure_returns_false(self, db, loaded, table):
        txn = Transaction(db.txn_manager,
                          isolation=IsolationLevel.REPEATABLE_READ)
        txn.select(table, 5, (1,))
        loaded.update(5, None, 999, None, None, None)
        assert txn.commit() is False
        assert txn.state is TransactionState.ABORTED


class TestIsolationLevels:
    def test_read_committed_sees_fresh_commits(self, db, loaded, table):
        txn = Transaction(db.txn_manager)
        first = txn.select(table, 5, (1,))[1]
        loaded.update(5, None, 999, None, None, None)
        second = txn.select(table, 5, (1,))[1]
        assert (first, second) == (50, 999)
        txn.commit()

    def test_snapshot_stays_frozen(self, db, loaded, table):
        txn = Transaction(db.txn_manager,
                          isolation=IsolationLevel.SNAPSHOT)
        first = txn.select(table, 5, (1,))[1]
        loaded.update(5, None, 999, None, None, None)
        second = txn.select(table, 5, (1,))[1]
        assert (first, second) == (50, 50)
        txn.commit()

    def test_snapshot_insert_invisible(self, db, loaded, table):
        txn = Transaction(db.txn_manager,
                          isolation=IsolationLevel.SNAPSHOT)
        loaded.insert(100, 1, 2, 3, 4)
        assert txn.select(table, 100) is None
        txn.commit()

    def test_snapshot_sum_repeatable_under_churn(self, db, loaded, table):
        """Snapshot sums ride the version-horizon plane and stay put."""
        db.run_merges()  # merged bases: the horizon plane applies
        expected = sum(key * 10 for key in range(40))
        txn = Transaction(db.txn_manager,
                          isolation=IsolationLevel.REPEATABLE_READ)
        first = txn.sum(table, 0, 39, 1)
        full_first = txn.scan_sum(table, 1)
        for key in range(0, 40, 2):  # churn after the snapshot
            loaded.update(key, None, 7777, None, None, None)
        loaded.insert(200, 5, 0, 0, 0)
        loaded.delete(3)
        assert txn.sum(table, 0, 39, 1) == first == expected
        assert txn.scan_sum(table, 1) == full_first == expected
        txn.commit()
        # A fresh reader sees the churned state.
        assert Transaction(db.txn_manager).scan_sum(table, 1) \
            == db.query("test").scan_sum(1)

    def test_snapshot_scan_settles_precommit_commit(self, db, loaded,
                                                    table):
        """A snapshot reader waits out an undecided pre-commit txn.

        The writer already owns a commit time below the reader's
        snapshot; calling its versions invisible would tear the
        snapshot once a later record resolves it committed. The reader
        must block until the outcome settles, then see both updates.
        """
        import threading
        import time as time_module
        writer = Transaction(db.txn_manager)
        writer.update(table, 0, {1: 111})
        writer.update(table, 1, {1: 222})
        commit_time = db.txn_manager.enter_precommit(writer.txn_id)
        as_of = table.clock.now()
        assert commit_time <= as_of
        result = {}

        def scan():
            result["total"] = table.scan_sum(1, as_of=as_of)

        thread = threading.Thread(target=scan)
        thread.start()
        time_module.sleep(0.1)
        assert thread.is_alive()  # blocked on the undecided writer
        db.txn_manager.commit(writer.txn_id)
        thread.join(10.0)
        assert not thread.is_alive()
        base = sum(key * 10 for key in range(40))
        assert result["total"] == base - 0 - 10 + 111 + 222

    def test_snapshot_scan_settles_precommit_abort(self, db, loaded,
                                                   table):
        import threading
        import time as time_module
        writer = Transaction(db.txn_manager)
        writer.update(table, 0, {1: 111})
        commit_time = db.txn_manager.enter_precommit(writer.txn_id)
        as_of = table.clock.now()
        assert commit_time <= as_of
        result = {}

        def scan():
            result["total"] = table.scan_sum(1, as_of=as_of)

        thread = threading.Thread(target=scan)
        thread.start()
        time_module.sleep(0.05)
        assert thread.is_alive()
        db.txn_manager.abort(writer.txn_id)
        thread.join(10.0)
        assert not thread.is_alive()
        assert result["total"] == sum(key * 10 for key in range(40))

    def test_snapshot_sum_sees_own_writes(self, db, loaded, table):
        txn = Transaction(db.txn_manager,
                          isolation=IsolationLevel.SNAPSHOT)
        txn.update(table, 5, {1: 1000})
        expected = sum(key * 10 for key in range(40)) - 50 + 1000
        assert txn.sum(table, 0, 39, 1) == expected
        assert txn.scan_sum(table, 1) == expected
        txn.abort()
