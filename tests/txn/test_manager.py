"""Transaction manager: the four-state lifecycle hashtable."""

import pytest

from repro.core.types import TransactionState
from repro.errors import IllegalTransactionState
from repro.txn.clock import SynchronizedClock
from repro.txn.manager import TransactionManager


class TestLifecycle:
    def test_begin(self):
        manager = TransactionManager()
        entry = manager.begin()
        assert entry.state is TransactionState.ACTIVE
        assert entry.txn_id == entry.begin_time
        assert manager.active_count == 1

    def test_ids_monotone(self):
        manager = TransactionManager()
        a = manager.begin()
        b = manager.begin()
        assert b.txn_id > a.txn_id
        assert b.begin_time > a.begin_time

    def test_precommit_assigns_commit_time(self):
        manager = TransactionManager()
        entry = manager.begin()
        commit_time = manager.enter_precommit(entry.txn_id)
        assert commit_time > entry.begin_time
        assert manager.state_of(entry.txn_id) is TransactionState.PRE_COMMIT

    def test_commit(self):
        manager = TransactionManager()
        entry = manager.begin()
        commit_time = manager.enter_precommit(entry.txn_id)
        assert manager.commit(entry.txn_id) == commit_time
        assert manager.state_of(entry.txn_id) is TransactionState.COMMITTED
        assert manager.active_count == 0
        assert manager.stat_committed == 1

    def test_abort_from_active(self):
        manager = TransactionManager()
        entry = manager.begin()
        manager.abort(entry.txn_id)
        assert manager.state_of(entry.txn_id) is TransactionState.ABORTED

    def test_abort_from_precommit(self):
        manager = TransactionManager()
        entry = manager.begin()
        manager.enter_precommit(entry.txn_id)
        manager.abort(entry.txn_id)
        assert manager.state_of(entry.txn_id) is TransactionState.ABORTED

    def test_invalid_transitions(self):
        manager = TransactionManager()
        entry = manager.begin()
        with pytest.raises(IllegalTransactionState):
            manager.commit(entry.txn_id)  # not in pre-commit
        manager.enter_precommit(entry.txn_id)
        manager.commit(entry.txn_id)
        with pytest.raises(IllegalTransactionState):
            manager.abort(entry.txn_id)  # already committed
        with pytest.raises(IllegalTransactionState):
            manager.enter_precommit(entry.txn_id)

    def test_unknown_txn(self):
        manager = TransactionManager()
        with pytest.raises(IllegalTransactionState):
            manager.commit(999)


class TestLookup:
    def test_lookup_states(self):
        manager = TransactionManager()
        entry = manager.begin()
        assert manager.lookup(entry.txn_id) \
            == (TransactionState.ACTIVE, None)
        commit_time = manager.enter_precommit(entry.txn_id)
        assert manager.lookup(entry.txn_id) \
            == (TransactionState.PRE_COMMIT, commit_time)
        manager.commit(entry.txn_id)
        assert manager.lookup(entry.txn_id) \
            == (TransactionState.COMMITTED, commit_time)

    def test_unknown_id_treated_as_aborted(self):
        # Pre-crash markers with no surviving entry resolve as aborted.
        manager = TransactionManager()
        assert manager.lookup(424242) == (TransactionState.ABORTED, None)


class TestSinks:
    def test_commit_sink_called(self):
        manager = TransactionManager()
        events = []
        manager.commit_sink = lambda txn_id, ct: events.append((txn_id, ct))
        entry = manager.begin()
        commit_time = manager.enter_precommit(entry.txn_id)
        manager.commit(entry.txn_id)
        assert events == [(entry.txn_id, commit_time)]

    def test_abort_sink_called(self):
        manager = TransactionManager()
        events = []
        manager.abort_sink = events.append
        entry = manager.begin()
        manager.abort(entry.txn_id)
        assert events == [entry.txn_id]


class TestGC:
    def test_gc_drops_old_committed(self):
        manager = TransactionManager()
        entry = manager.begin()
        manager.enter_precommit(entry.txn_id)
        manager.commit(entry.txn_id)
        live = manager.begin()
        dropped = manager.gc(before=manager.clock.now() + 1)
        assert dropped == 1
        # Live transactions survive GC.
        assert manager.state_of(live.txn_id) is TransactionState.ACTIVE

    def test_shared_clock(self):
        clock = SynchronizedClock()
        manager = TransactionManager(clock)
        entry = manager.begin()
        assert clock.now() == entry.begin_time
