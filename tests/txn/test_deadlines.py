"""Per-transaction deadlines: statements and commit stop on time."""

import time

import pytest

from repro.errors import DeadlineExceeded, IllegalTransactionState


class TestTransactionDeadline:
    def test_no_deadline_by_default(self, db, table):
        txn = db.begin_transaction()
        assert txn._deadline is None
        txn.insert(table, [1, 0, 0, 0, 0])
        assert txn.commit()

    def test_generous_deadline_commits(self, db, table):
        txn = db.begin_transaction(deadline_seconds=60.0)
        txn.insert(table, [1, 0, 0, 0, 0])
        assert txn.commit()
        assert db.query("test").select(1, 0, None)

    def test_expired_deadline_aborts_statement(self, db, loaded, table):
        txn = db.begin_transaction(deadline_seconds=0.0)
        time.sleep(0.001)
        with pytest.raises(DeadlineExceeded) as excinfo:
            txn.select(table, 5)
        assert not excinfo.value.retryable
        # The deadline abort finished the transaction.
        with pytest.raises(IllegalTransactionState):
            txn.select(table, 5)
        assert db.metrics()["txn"]["deadline_aborts"] == 1

    def test_expired_deadline_aborts_commit(self, db, loaded, table):
        txn = db.begin_transaction(deadline_seconds=0.05)
        txn.update(table, 5, {1: 42})
        time.sleep(0.06)
        with pytest.raises(DeadlineExceeded):
            txn.commit()
        # The pending update rolled back with the abort.
        assert db.query("test").select(5, 0, None)[0].columns[1] == 50

    def test_deadline_abort_releases_writes(self, db, loaded, table):
        txn = db.begin_transaction(deadline_seconds=0.02)
        txn.update(table, 5, {1: 42})
        time.sleep(0.03)
        with pytest.raises(DeadlineExceeded):
            txn.update(table, 5, {1: 43})
        # The write intent is gone: another transaction takes key 5.
        other = db.begin_transaction()
        other.update(table, 5, {1: 99})
        assert other.commit()
        assert db.query("test").select(5, 0, None)[0].columns[1] == 99

    def test_deadline_validated_by_config(self, db):
        txn = db.begin_transaction(deadline_seconds=10.0)
        assert txn._deadline is not None
        txn.abort()
