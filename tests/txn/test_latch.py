"""Low-level synchronisation: CAS cells, indirection latch, SX latch."""

import threading
import time

import pytest

from repro.core.types import LATCH_BIT, NULL_RID
from repro.txn.latch import (AtomicCell, AtomicCounter, IndirectionVector,
                             SharedExclusiveLatch)


class TestAtomicCell:
    def test_get_set(self):
        cell = AtomicCell(1)
        assert cell.get() == 1
        cell.set(2)
        assert cell.get() == 2

    def test_cas_success_failure(self):
        cell = AtomicCell(1)
        assert cell.compare_and_swap(1, 2)
        assert not cell.compare_and_swap(1, 3)
        assert cell.get() == 2

    def test_update(self):
        cell = AtomicCell(10)
        assert cell.update(lambda value: value + 5) == 15

    def test_single_cas_winner(self):
        cell = AtomicCell(0)
        winners = []
        lock = threading.Lock()

        def worker(i):
            if cell.compare_and_swap(0, i):
                with lock:
                    winners.append(i)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(1, 9)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(winners) == 1


class TestAtomicCounter:
    def test_increment(self):
        counter = AtomicCounter()
        assert counter.increment() == 1
        assert counter.increment(5) == 6

    def test_max_update(self):
        counter = AtomicCounter(10)
        assert counter.max_update(15)
        assert not counter.max_update(12)
        assert counter.get() == 15


class TestIndirectionVector:
    def test_initial_null(self):
        vector = IndirectionVector(4)
        assert len(vector) == 4
        assert vector.read(0) == NULL_RID
        assert not vector.is_latched(0)

    def test_latch_protocol(self):
        vector = IndirectionVector(4)
        assert vector.try_latch(1)
        assert vector.is_latched(1)
        # Second latch attempt = write-write conflict indicator.
        assert not vector.try_latch(1)
        vector.set_and_unlatch(1, 12345)
        assert not vector.is_latched(1)
        assert vector.read(1) == 12345

    def test_read_masks_latch_bit(self):
        vector = IndirectionVector(2)
        vector.set(0, 777)
        vector.try_latch(0)
        assert vector.read(0) == 777  # latch bit invisible to readers

    def test_unlatch(self):
        vector = IndirectionVector(2)
        vector.try_latch(0)
        vector.unlatch(0)
        assert vector.try_latch(0)

    def test_set_preserves_latch(self):
        vector = IndirectionVector(2)
        vector.try_latch(0)
        vector.set(0, 5)
        assert vector.is_latched(0)
        assert vector.read(0) == 5

    def test_rid_with_latch_bit_rejected(self):
        vector = IndirectionVector(2)
        with pytest.raises(ValueError):
            vector.set(0, LATCH_BIT | 1)

    def test_raw_cas(self):
        vector = IndirectionVector(2)
        assert vector.compare_and_swap(0, NULL_RID, 9)
        assert not vector.compare_and_swap(0, NULL_RID, 10)

    def test_snapshot(self):
        vector = IndirectionVector(3)
        vector.set(1, 5)
        vector.try_latch(2)
        assert vector.snapshot() == [0, 5, 0]

    def test_one_latch_winner_per_slot(self):
        vector = IndirectionVector(1)
        winners = []
        lock = threading.Lock()

        def worker():
            if vector.try_latch(0):
                with lock:
                    winners.append(threading.get_ident())

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(winners) == 1


class TestSharedExclusiveLatch:
    def test_multiple_shared(self):
        latch = SharedExclusiveLatch()
        assert latch.acquire_shared()
        assert latch.acquire_shared()
        latch.release_shared()
        latch.release_shared()

    def test_exclusive_excludes_shared(self):
        latch = SharedExclusiveLatch()
        latch.acquire_exclusive()
        assert not latch.acquire_shared(timeout=0.02)
        latch.release_exclusive()
        assert latch.acquire_shared(timeout=0.5)

    def test_shared_blocks_exclusive(self):
        latch = SharedExclusiveLatch()
        latch.acquire_shared()
        assert not latch.acquire_exclusive(timeout=0.02)
        latch.release_shared()
        assert latch.acquire_exclusive(timeout=0.5)

    def test_writer_preference(self):
        latch = SharedExclusiveLatch()
        latch.acquire_shared()
        acquired = []

        def writer():
            latch.acquire_exclusive()
            acquired.append("writer")
            latch.release_exclusive()

        thread = threading.Thread(target=writer)
        thread.start()
        time.sleep(0.02)
        # A waiting writer blocks new readers.
        assert not latch.acquire_shared(timeout=0.02)
        latch.release_shared()
        thread.join(timeout=2.0)
        assert acquired == ["writer"]

    def test_promotion(self):
        latch = SharedExclusiveLatch()
        latch.acquire_shared()
        assert latch.promote()
        latch.release_exclusive()

    def test_promotion_waits_for_other_readers(self):
        latch = SharedExclusiveLatch()
        latch.acquire_shared()
        latch.acquire_shared()

        done = []

        def promoter():
            if latch.promote(timeout=2.0):
                done.append(True)
                latch.release_exclusive()

        thread = threading.Thread(target=promoter)
        thread.start()
        time.sleep(0.02)
        latch.release_shared()  # the other reader leaves
        thread.join(timeout=2.0)
        assert done == [True]

    def test_promote_requires_shared(self):
        latch = SharedExclusiveLatch()
        with pytest.raises(RuntimeError):
            latch.promote()

    def test_demote(self):
        latch = SharedExclusiveLatch()
        latch.acquire_exclusive()
        latch.demote()
        latch.release_shared()
        assert latch.acquire_exclusive(timeout=0.5)

    def test_release_without_hold(self):
        latch = SharedExclusiveLatch()
        with pytest.raises(RuntimeError):
            latch.release_shared()
        with pytest.raises(RuntimeError):
            latch.release_exclusive()

    def test_context_managers(self):
        latch = SharedExclusiveLatch()
        with latch.shared():
            pass
        with latch.exclusive():
            pass
