"""Worker retry behavior under hot-key contention (ISSUE 10 sat. d).

The old ``run_one`` hot-spun on conflict: under a Zipfian hot key the
re-collision rate made retry storms, and a worker facing a *held* write
intent burned CPU until ``max_retries``. These tests pin the civilized
replacement: jittered exponential backoff bounds the attempt rate in
wall time, deadlines turn unbounded retrying into an accounted
give-up, and the engine-wide counters (``txn.retries``,
``txn.giveups``, ``txn.retry_backoff_seconds``) reconcile exactly with
the per-worker stats.
"""

import random
import time

from repro.txn.worker import TransactionWorker, WorkerStats


def hold_blocker(db, table, key):
    """Open a transaction holding a write intent on *key*."""
    blocker = db.begin_transaction()
    blocker.update(table, key, {1: 1})
    return blocker


class TestDeadlineGiveUp:
    def test_deadline_bounds_attempts_in_time(self, db, loaded, table):
        blocker = hold_blocker(db, table, 5)
        worker = TransactionWorker(
            db.txn_manager, max_retries=10 ** 9,
            retry_backoff_seconds=0.002, retry_backoff_cap=0.02,
            deadline_seconds=0.08, seed=7)
        started = time.perf_counter()
        assert not worker.run_one(lambda txn: txn.update(table, 5, {1: 2}))
        elapsed = time.perf_counter() - started
        blocker.abort()
        assert worker.stats.gave_up == 1
        assert worker.stats.committed == 0
        # The deadline, not max_retries, ended the run — promptly.
        assert elapsed < 2.0
        # Backoff keeps the attempt count small: a hot spin would burn
        # thousands of aborts in 80 ms, backoff allows only a handful.
        assert 1 <= worker.stats.aborted < 50
        assert worker.stats.backoff_seconds > 0.0
        metrics = db.metrics()["txn"]
        assert metrics["giveups"] == 1
        assert metrics["retries"] == worker.stats.retries
        assert metrics["retry_backoff_seconds"]["count"] \
            == worker.stats.retries

    def test_zero_backoff_keeps_the_deterministic_hot_spin(
            self, db, loaded, table):
        blocker = hold_blocker(db, table, 5)
        worker = TransactionWorker(db.txn_manager, max_retries=3,
                                   retry_backoff_seconds=0.0)
        assert not worker.run_one(lambda txn: txn.update(table, 5, {1: 2}))
        blocker.abort()
        assert worker.stats.aborted == 4  # initial try + 3 retries
        assert worker.stats.backoff_seconds == 0.0

    def test_stop_event_cuts_a_backoff_nap_short(self, db, loaded, table):
        blocker = hold_blocker(db, table, 5)
        worker = TransactionWorker(db.txn_manager, max_retries=10,
                                   retry_backoff_seconds=10.0,
                                   retry_backoff_cap=30.0)
        worker.add(lambda txn: txn.update(table, 5, {1: 2}))
        worker.start()
        time.sleep(0.05)  # let it conflict and enter the long nap
        worker.stop_event.set()
        started = time.perf_counter()
        stats = worker.join(timeout=10.0)
        assert time.perf_counter() - started < 5.0
        blocker.abort()
        assert stats.committed == 0


class TestZipfianContention:
    def test_hot_key_storm_reconciles_counters(self, db, table):
        keys = list(range(20))
        for key in keys:
            table.insert([key, 0, 0, 0, 0])
        # Zipf-ish popularity: rank-weighted draws concentrate ~half
        # of all increments on the two hottest keys.
        weights = [1.0 / (rank + 1) for rank in range(len(keys))]

        workers = []
        for index in range(4):
            rng = random.Random(1000 + index)
            worker = TransactionWorker(
                db.txn_manager, max_retries=64, name="zipf-%d" % index,
                retry_backoff_seconds=0.0002, retry_backoff_cap=0.005,
                seed=index)
            for _ in range(40):
                key = rng.choices(keys, weights=weights)[0]
                worker.add(lambda txn, key=key:
                           txn.increment(table, key, 1))
            worker.start()
            workers.append(worker)

        total = WorkerStats()
        for worker in workers:
            total.merge(worker.join(timeout=60.0))

        assert total.committed + total.gave_up == 160
        # Every committed increment is reflected exactly once.
        assert db.query("test").sum(0, 19, 1) == total.committed
        metrics = db.metrics()["txn"]
        assert metrics["giveups"] == total.gave_up
        assert metrics["retries"] == total.retries
        if total.retries:
            histogram = metrics["retry_backoff_seconds"]
            assert histogram["count"] <= total.retries
            assert histogram["sum"] <= total.backoff_seconds + 1e-6

    def test_workers_with_deadlines_survive_the_storm(self, db, table):
        for key in range(4):
            table.insert([key, 0, 0, 0, 0])
        workers = []
        for index in range(4):
            worker = TransactionWorker(
                db.txn_manager, max_retries=10 ** 9, name="dl-%d" % index,
                retry_backoff_seconds=0.0002, retry_backoff_cap=0.002,
                deadline_seconds=5.0, seed=index)
            for _ in range(25):
                worker.add(lambda txn, key=index % 2:
                           txn.increment(table, key, 1))
            worker.start()
            workers.append(worker)
        total = WorkerStats()
        for worker in workers:
            total.merge(worker.join(timeout=120.0))
        assert total.committed + total.gave_up == 100
        assert db.query("test").sum(0, 3, 1) == total.committed
