"""Synchronized clock: advance-before-return semantics."""

import threading

from repro.txn.clock import SynchronizedClock, TransactionIdSource


class TestClock:
    def test_advance_monotone(self):
        clock = SynchronizedClock()
        values = [clock.advance() for _ in range(5)]
        assert values == sorted(values)
        assert len(set(values)) == 5

    def test_advance_before_return(self):
        clock = SynchronizedClock()
        now = clock.now()
        assert clock.advance() > now

    def test_now_does_not_advance(self):
        clock = SynchronizedClock()
        clock.advance()
        assert clock.now() == clock.now()

    def test_advance_to(self):
        clock = SynchronizedClock()
        clock.advance_to(100)
        assert clock.now() == 100
        clock.advance_to(50)  # never regresses
        assert clock.now() == 100

    def test_start_value(self):
        clock = SynchronizedClock(start=1000)
        assert clock.advance() == 1001

    def test_concurrent_unique(self):
        clock = SynchronizedClock()
        seen = []
        lock = threading.Lock()

        def worker():
            for _ in range(500):
                value = clock.advance()
                with lock:
                    seen.append(value)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(seen)) == 2000


class TestTransactionIdSource:
    def test_ids_share_clock_order(self):
        clock = SynchronizedClock()
        source = TransactionIdSource(clock)
        first = source.next_id()
        timestamp = clock.advance()
        second = source.next_id()
        assert first < timestamp < second
