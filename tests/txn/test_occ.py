"""The OCC protocol operations (Section 5.1.1) in isolation."""

import pytest

from repro.core.types import IsolationLevel, TransactionState
from repro.errors import (RecordDeletedError, ValidationFailure,
                          WriteWriteConflict)
from repro.txn.occ import (TxnContext, occ_insert, occ_read, occ_rollback,
                           occ_validate, occ_write)
from repro.txn.transaction import Transaction


def _ctx(db, isolation=IsolationLevel.READ_COMMITTED) -> TxnContext:
    entry = db.txn_manager.begin()
    return TxnContext(txn_id=entry.txn_id, begin_time=entry.begin_time,
                      isolation=isolation)


def _finish(db, ctx, *, abort=False):
    if abort:
        db.txn_manager.abort(ctx.txn_id)
        occ_rollback(ctx)
    else:
        db.txn_manager.enter_precommit(ctx.txn_id)
        db.txn_manager.commit(ctx.txn_id)


class TestRead:
    def test_read_committed_sees_latest(self, db, table):
        rid = table.insert([1, 10, 0, 0, 0])
        ctx = _ctx(db)
        assert occ_read(ctx, table, rid, (1,)) == {1: 10}

    def test_own_writes_visible(self, db, table):
        rid = table.insert([1, 10, 0, 0, 0])
        ctx = _ctx(db)
        occ_write(ctx, table, rid, {1: 99})
        assert occ_read(ctx, table, rid, (1,)) == {1: 99}
        _finish(db, ctx)

    def test_other_uncommitted_invisible(self, db, table):
        rid = table.insert([1, 10, 0, 0, 0])
        writer = _ctx(db)
        occ_write(writer, table, rid, {1: 99})
        reader = _ctx(db)
        assert occ_read(reader, table, rid, (1,)) == {1: 10}
        _finish(db, writer)
        assert occ_read(reader, table, rid, (1,)) == {1: 99}

    def test_snapshot_isolation_frozen_view(self, db, table):
        rid = table.insert([1, 10, 0, 0, 0])
        reader = _ctx(db, IsolationLevel.SNAPSHOT)
        writer = _ctx(db)
        occ_write(writer, table, rid, {1: 99})
        _finish(db, writer)
        # Snapshot reader began before the writer committed.
        assert occ_read(reader, table, rid, (1,)) == {1: 10}

    def test_speculative_read_sees_precommit(self, db, table):
        rid = table.insert([1, 10, 0, 0, 0])
        writer = _ctx(db)
        occ_write(writer, table, rid, {1: 99})
        db.txn_manager.enter_precommit(writer.txn_id)
        reader = _ctx(db)
        assert occ_read(reader, table, rid, (1,)) == {1: 10}
        assert occ_read(reader, table, rid, (1,),
                        speculative=True) == {1: 99}
        db.txn_manager.commit(writer.txn_id)

    def test_readset_tracked_for_repeatable_read(self, db, table):
        rid = table.insert([1, 10, 0, 0, 0])
        ctx = _ctx(db, IsolationLevel.REPEATABLE_READ)
        occ_read(ctx, table, rid, (1,))
        assert len(ctx.readset) == 1
        assert ctx.readset[0].observed_version == rid

    def test_readset_not_tracked_for_read_committed(self, db, table):
        rid = table.insert([1, 10, 0, 0, 0])
        ctx = _ctx(db)
        occ_read(ctx, table, rid, (1,))
        assert ctx.readset == []


class TestWrite:
    def test_write_installs_indirection(self, db, table):
        rid = table.insert([1, 10, 0, 0, 0])
        ctx = _ctx(db)
        tail_rid = occ_write(ctx, table, rid, {1: 99})
        update_range, offset = table.locate(rid)
        assert update_range.indirection.read(offset) == tail_rid
        assert not update_range.indirection.is_latched(offset)

    def test_write_write_conflict_aborts_second(self, db, table):
        rid = table.insert([1, 10, 0, 0, 0])
        first = _ctx(db)
        second = _ctx(db)
        occ_write(first, table, rid, {1: 1})
        with pytest.raises(WriteWriteConflict):
            occ_write(second, table, rid, {1: 2})
        _finish(db, first)

    def test_latch_released_after_conflict(self, db, table):
        rid = table.insert([1, 10, 0, 0, 0])
        first = _ctx(db)
        occ_write(first, table, rid, {1: 1})
        second = _ctx(db)
        with pytest.raises(WriteWriteConflict):
            occ_write(second, table, rid, {1: 2})
        _finish(db, first)
        # The failed attempt must not leave the latch set.
        third = _ctx(db)
        occ_write(third, table, rid, {1: 3})
        _finish(db, third)

    def test_write_after_abort_succeeds(self, db, table):
        rid = table.insert([1, 10, 0, 0, 0])
        first = _ctx(db)
        occ_write(first, table, rid, {1: 1})
        _finish(db, first, abort=True)
        # Aborted writer is not competing (tombstoned record).
        second = _ctx(db)
        occ_write(second, table, rid, {1: 2})
        _finish(db, second)
        assert table.read_latest(rid)[1] == 2

    def test_same_txn_multiple_writes(self, db, table):
        rid = table.insert([1, 10, 0, 0, 0])
        ctx = _ctx(db)
        occ_write(ctx, table, rid, {1: 1})
        occ_write(ctx, table, rid, {1: 2})
        _finish(db, ctx)
        # Only the final update is visible (Section 3.1).
        assert table.read_latest(rid)[1] == 2

    def test_write_deleted_rejected(self, db, table):
        rid = table.insert([1, 10, 0, 0, 0])
        table.delete(rid)
        ctx = _ctx(db)
        with pytest.raises(RecordDeletedError):
            occ_write(ctx, table, rid, {1: 5})


class TestRollback:
    def test_rollback_tombstones_updates(self, db, table):
        rid = table.insert([1, 10, 0, 0, 0])
        ctx = _ctx(db)
        occ_write(ctx, table, rid, {1: 99})
        _finish(db, ctx, abort=True)
        assert table.read_latest(rid)[1] == 10
        assert table.stat_aborted_tails == 1

    def test_rollback_inserts(self, db, table):
        ctx = _ctx(db)
        rid = occ_insert(ctx, table, [7, 1, 2, 3, 4])
        _finish(db, ctx, abort=True)
        assert table.index.primary.get(7) is None

    def test_indirection_may_point_at_tombstone(self, db, table):
        # Section 5.1.3: "it is acceptable for the Indirection column to
        # continue pointing to tombstones".
        rid = table.insert([1, 10, 0, 0, 0])
        ctx = _ctx(db)
        tail_rid = occ_write(ctx, table, rid, {1: 99})
        _finish(db, ctx, abort=True)
        update_range, offset = table.locate(rid)
        assert update_range.indirection.read(offset) == tail_rid
        assert table.read_latest(rid)[1] == 10


class TestValidation:
    def test_validation_passes_when_unchanged(self, db, table):
        rid = table.insert([1, 10, 0, 0, 0])
        ctx = _ctx(db, IsolationLevel.REPEATABLE_READ)
        occ_read(ctx, table, rid, (1,))
        commit_time = db.txn_manager.enter_precommit(ctx.txn_id)
        occ_validate(ctx, commit_time)  # no exception
        db.txn_manager.commit(ctx.txn_id)

    def test_validation_fails_on_concurrent_change(self, db, table):
        rid = table.insert([1, 10, 0, 0, 0])
        ctx = _ctx(db, IsolationLevel.REPEATABLE_READ)
        occ_read(ctx, table, rid, (1,))
        table.update(rid, {1: 55})  # concurrent committed change
        commit_time = db.txn_manager.enter_precommit(ctx.txn_id)
        with pytest.raises(ValidationFailure):
            occ_validate(ctx, commit_time)

    def test_read_committed_skips_validation(self, db, table):
        rid = table.insert([1, 10, 0, 0, 0])
        ctx = _ctx(db)
        occ_read(ctx, table, rid, (1,))
        table.update(rid, {1: 55})
        commit_time = db.txn_manager.enter_precommit(ctx.txn_id)
        occ_validate(ctx, commit_time)  # no exception: nothing tracked
