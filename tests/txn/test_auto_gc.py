"""Automatic transaction-entry GC wired to the epoch watermark."""

import pytest

from repro import Database, EngineConfig, IsolationLevel
from repro.core.types import Layout, TransactionState


def _config(**overrides):
    base = dict(records_per_page=8, records_per_tail_page=8,
                update_range_size=16, merge_threshold=8,
                insert_range_size=16, background_merge=False,
                txn_gc_threshold=32)
    base.update(overrides)
    return EngineConfig(**base)


class TestAutoGC:
    def test_entry_table_stays_bounded(self):
        db = Database(_config())
        try:
            table = db.create_table("t", num_columns=2)
            for key in range(8):
                table.insert([key, 0])
            db.run_merges()
            manager = db.txn_manager
            for i in range(400):
                with db.begin_transaction() as txn:
                    txn.update(table, i % 8, {1: i})
            # Without GC this loop leaves ~400 entries; the auto sweep
            # must keep the table near the threshold.
            assert len(manager._entries) < 3 * 32
            assert manager.stat_auto_gc_dropped > 0
        finally:
            db.close()

    def test_values_survive_gc(self):
        """Sweep-stamped markers keep old committed writes readable."""
        db = Database(_config())
        try:
            table = db.create_table("t", num_columns=2)
            for key in range(8):
                table.insert([key, 0])
            expected = {}
            for i in range(300):
                key = i % 8
                with db.begin_transaction() as txn:
                    txn.update(table, key, {1: i})
                expected[key] = i
            assert db.txn_manager.stat_auto_gc_dropped > 0
            for key, value in expected.items():
                rid = table.index.primary.get(key)
                assert table.read_latest(rid, (1,)) == {1: value}
            assert table.scan_sum(1) == sum(expected.values())
        finally:
            db.close()

    def test_row_layout_no_longer_pins_watermark(self):
        """RowPage in-place Start Time refinement unblocks the GC.

        Before the refinement the row layout reported every committed
        marker as a permanent blocker, so the entry table grew without
        bound; stamping now swaps markers for commit times in place
        and the sweep drops entries like the columnar layout.
        """
        db = Database(_config(layout=Layout.ROW))
        try:
            table = db.create_table("t", num_columns=2)
            for key in range(8):
                table.insert([key, 0])
            db.run_merges()
            manager = db.txn_manager
            expected = {}
            for i in range(400):
                key = i % 8
                with db.begin_transaction() as txn:
                    txn.update(table, key, {1: i})
                expected[key] = i
            assert manager.stat_auto_gc_dropped > 0
            assert len(manager._entries) < 3 * 32
            # Stamped rows still read their committed values.
            for key, value in expected.items():
                rid = table.index.primary.get(key)
                assert table.read_latest(rid, (1,)) == {1: value}
            assert table.scan_sum(1) == sum(expected.values())
        finally:
            db.close()

    def test_active_transaction_caps_horizon(self):
        db = Database(_config())
        try:
            table = db.create_table("t", num_columns=2)
            table.insert([0, 0])
            long_txn = db.begin_transaction()
            long_entry_id = long_txn.txn_id
            for i in range(200):
                with db.begin_transaction() as txn:
                    txn.update(table, 0, {1: i})
            # The long-running transaction's own entry must survive.
            assert db.txn_manager.state_of(long_entry_id) \
                is TransactionState.ACTIVE
            long_txn.abort()
        finally:
            db.close()

    def test_registered_query_defers_drop(self):
        """Phase 2 waits for readers active since before the sweep."""
        db = Database(_config(txn_gc_threshold=16))
        try:
            table = db.create_table("t", num_columns=2)
            table.insert([0, 0])
            epoch = db.epoch_manager.enter_query(db.clock.now())
            before = None
            for i in range(120):
                with db.begin_transaction() as txn:
                    txn.update(table, 0, {1: i})
                if i == 60:
                    before = len(db.txn_manager._entries)
            # The old registered query gates every drop.
            assert db.txn_manager.stat_auto_gc_dropped == 0
            assert len(db.txn_manager._entries) >= before
            db.epoch_manager.exit_query(epoch)
            for i in range(80):
                with db.begin_transaction() as txn:
                    txn.update(table, 0, {1: i})
            assert db.txn_manager.stat_auto_gc_dropped > 0
        finally:
            db.close()

    def test_disabled_by_zero_threshold(self):
        db = Database(_config(txn_gc_threshold=0))
        try:
            table = db.create_table("t", num_columns=2)
            table.insert([0, 0])
            for i in range(100):
                with db.begin_transaction() as txn:
                    txn.update(table, 0, {1: i})
            assert len(db.txn_manager._entries) >= 100
        finally:
            db.close()

    def test_manual_gc_keeps_aborted_unless_asked(self):
        db = Database(_config(txn_gc_threshold=0))
        try:
            table = db.create_table("t", num_columns=2)
            table.insert([0, 0])
            txn = db.begin_transaction()
            txn.update(table, 0, {1: 1})
            txn.abort()
            manager = db.txn_manager
            horizon = db.clock.now() + 1
            manager.gc(horizon)
            assert manager.state_of(txn.txn_id) is TransactionState.ABORTED
            manager.gc(horizon, include_aborted=True)
            with pytest.raises(Exception):
                manager.state_of(txn.txn_id)
            # Below the GC floor, unknown ids resolve committed-at-begin
            # (stale marker copies must not hide committed versions) —
            # the aborted write stays invisible via its tombstone.
            state, commit_time = manager.lookup(txn.txn_id)
            assert state is TransactionState.COMMITTED
            assert commit_time == txn.txn_id
            rid = table.index.primary.get(0)
            assert table.read_latest(rid, (1,)) == {1: 0}
        finally:
            db.close()

    def test_unknown_above_floor_still_aborted(self):
        db = Database(_config(txn_gc_threshold=0))
        try:
            manager = db.txn_manager
            future_id = db.clock.now() + 100
            assert manager.lookup(future_id)[0] is TransactionState.ABORTED
        finally:
            db.close()

    def test_drop_table_unregisters_stamp_source(self):
        db = Database(_config())
        try:
            table = db.create_table("t", num_columns=2)
            source_count = len(db.txn_manager._stamp_sources)
            db.drop_table("t")
            assert len(db.txn_manager._stamp_sources) == source_count - 1
            assert table.stamp_tail_markers not in \
                db.txn_manager._stamp_sources
        finally:
            db.close()


class TestEpochLowWaterMark:
    def test_monotone_and_tracks_oldest(self):
        from repro.core.epoch import EpochManager
        epoch = EpochManager()
        assert epoch.low_water_mark(10) == 10
        handle = epoch.enter_query(5)
        # Registered reader caps the mark; monotone (never regresses).
        assert epoch.low_water_mark(50) == 10
        epoch.exit_query(handle)
        assert epoch.low_water_mark(50) == 50
        assert epoch.low_water_mark(40) == 50
