"""The python -m repro.bench experiment runner."""

import json

import pytest

from repro.bench.__main__ import main


def _trajectory(rows_by_experiment):
    return {
        "tool": "repro.bench",
        "experiments": {
            name: {"headers": headers, "median_seconds": 1.0, "rows": rows}
            for name, (headers, rows) in rows_by_experiment.items()
        },
    }


@pytest.fixture
def trajectory_pair(tmp_path):
    baseline = _trajectory({
        "fig7": (["engine", "threads", "txn_per_sec", "aborted"],
                 [["L-Store", 1, 1000.0, 3], ["L-Store", 2, 2000.0, 5]]),
        "sums": (["index", "range_size", "queries_per_sec"],
                 [["ordered+batched", 16, 500.0]]),
        "table7": (["engine", "scan_seconds"], [["L-Store", 0.10]]),
        "only_old": (["engine", "txn_per_sec"], [["L-Store", 1.0]]),
    })
    current = _trajectory({
        "fig7": (["engine", "threads", "txn_per_sec", "aborted"],
                 [["L-Store", 1, 600.0, 3],      # -40%: regression
                  ["L-Store", 2, 2100.0, 5]]),   # +5%: quiet
        "sums": (["index", "range_size", "queries_per_sec"],
                 [["ordered+batched", 16, 900.0]]),  # +80%: improved
        "table7": (["engine", "scan_seconds"],
                   [["L-Store", 0.20]]),         # 2x slower: regression
    })
    base_path = tmp_path / "base.json"
    current_path = tmp_path / "current.json"
    base_path.write_text(json.dumps(baseline))
    current_path.write_text(json.dumps(current))
    return str(base_path), str(current_path)


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig7", "fig8", "fig9", "fig10",
                     "table7", "table8", "table9"):
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_one_experiment(self, capsys):
        assert main(["table8", "--scale", "5000"]) == 0
        out = capsys.readouterr().out
        assert "Table 8" in out
        assert "L-Store (Column)" in out
        assert "L-Store (Row)" in out

    def test_contention_flag(self, capsys):
        assert main(["fig7", "--scale", "5000", "--duration", "0.05",
                     "--contention", "high"]) == 0
        assert "Figure 7(high)" in capsys.readouterr().out

    def test_analytics_experiment(self, capsys):
        assert main(["analytics", "--scale", "5000",
                     "--duration", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Analytics" in out
        assert "scans_per_sec" in out


class TestDiff:
    def test_diff_against_files(self, capsys, trajectory_pair):
        base_path, current_path = trajectory_pair
        assert main(["--diff", base_path, "--against", current_path]) == 0
        out = capsys.readouterr().out
        # The -40% txn/s row and the 2x-slower scan row regressed …
        assert "REGRESSION" in out
        assert "txn_per_sec" in out
        assert "scan_seconds" in out
        # … the +80% sums row improved, the +5% row stays quiet.
        assert "improved" in out
        assert "queries_per_sec" in out
        assert "900" in out
        assert "2100" not in out
        # Unmatched experiments are reported, not compared.
        assert "only_old" in out
        assert "diff summary" in out

    def test_diff_threshold(self, capsys, trajectory_pair):
        base_path, current_path = trajectory_pair
        assert main(["--diff", base_path, "--against", current_path,
                     "--diff-threshold", "1.5"]) == 0
        out = capsys.readouterr().out
        # At ±150% every move in the fixture stays below the bar.
        assert "REGRESSION" not in out
        assert "improved" not in out

    def test_diff_after_run(self, capsys, tmp_path, trajectory_pair):
        base_path, _ = trajectory_pair
        assert main(["table8", "--scale", "5000",
                     "--diff", base_path]) == 0
        out = capsys.readouterr().out
        assert "diff summary" in out

    def test_against_rejects_experiments(self, capsys, trajectory_pair):
        base_path, current_path = trajectory_pair
        assert main(["fig7", "--diff", base_path,
                     "--against", current_path]) == 2
        assert "--against" in capsys.readouterr().err

    def test_against_requires_diff(self, capsys, trajectory_pair):
        _, current_path = trajectory_pair
        assert main(["--against", current_path]) == 2
        assert "--diff" in capsys.readouterr().err
