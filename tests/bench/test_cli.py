"""The python -m repro.bench experiment runner."""

import json

import pytest

from repro.bench.__main__ import main


def _trajectory(rows_by_experiment):
    return {
        "tool": "repro.bench",
        "experiments": {
            name: {"headers": headers, "median_seconds": 1.0, "rows": rows}
            for name, (headers, rows) in rows_by_experiment.items()
        },
    }


@pytest.fixture
def trajectory_pair(tmp_path):
    baseline = _trajectory({
        "fig7": (["engine", "threads", "txn_per_sec", "aborted"],
                 [["L-Store", 1, 1000.0, 3], ["L-Store", 2, 2000.0, 5]]),
        "sums": (["index", "range_size", "queries_per_sec"],
                 [["ordered+batched", 16, 500.0]]),
        "table7": (["engine", "scan_seconds"], [["L-Store", 0.10]]),
        "only_old": (["engine", "txn_per_sec"], [["L-Store", 1.0]]),
    })
    current = _trajectory({
        "fig7": (["engine", "threads", "txn_per_sec", "aborted"],
                 [["L-Store", 1, 600.0, 3],      # -40%: regression
                  ["L-Store", 2, 2100.0, 5]]),   # +5%: quiet
        "sums": (["index", "range_size", "queries_per_sec"],
                 [["ordered+batched", 16, 900.0]]),  # +80%: improved
        "table7": (["engine", "scan_seconds"],
                   [["L-Store", 0.20]]),         # 2x slower: regression
    })
    base_path = tmp_path / "base.json"
    current_path = tmp_path / "current.json"
    base_path.write_text(json.dumps(baseline))
    current_path.write_text(json.dumps(current))
    return str(base_path), str(current_path)


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig7", "fig8", "fig9", "fig10",
                     "table7", "table8", "table9"):
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_one_experiment(self, capsys):
        assert main(["table8", "--scale", "5000"]) == 0
        out = capsys.readouterr().out
        assert "Table 8" in out
        assert "L-Store (Column)" in out
        assert "L-Store (Row)" in out

    def test_contention_flag(self, capsys):
        assert main(["fig7", "--scale", "5000", "--duration", "0.05",
                     "--contention", "high"]) == 0
        assert "Figure 7(high)" in capsys.readouterr().out

    def test_analytics_experiment(self, capsys):
        assert main(["analytics", "--scale", "5000",
                     "--duration", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Analytics" in out
        assert "scans_per_sec" in out


class TestDiff:
    def test_diff_against_files(self, capsys, trajectory_pair):
        base_path, current_path = trajectory_pair
        assert main(["--diff", base_path, "--against", current_path]) == 0
        out = capsys.readouterr().out
        # The -40% txn/s row and the 2x-slower scan row regressed …
        assert "REGRESSION" in out
        assert "txn_per_sec" in out
        assert "scan_seconds" in out
        # … the +80% sums row improved, the +5% row stays quiet.
        assert "improved" in out
        assert "queries_per_sec" in out
        assert "900" in out
        assert "2100" not in out
        # Unmatched experiments are reported, not compared.
        assert "only_old" in out
        assert "diff summary" in out

    def test_diff_threshold(self, capsys, trajectory_pair):
        base_path, current_path = trajectory_pair
        assert main(["--diff", base_path, "--against", current_path,
                     "--diff-threshold", "1.5"]) == 0
        out = capsys.readouterr().out
        # At ±150% every move in the fixture stays below the bar.
        assert "REGRESSION" not in out
        assert "improved" not in out

    def test_diff_after_run(self, capsys, tmp_path, trajectory_pair):
        base_path, _ = trajectory_pair
        assert main(["table8", "--scale", "5000",
                     "--diff", base_path]) == 0
        out = capsys.readouterr().out
        assert "diff summary" in out

    def test_against_rejects_experiments(self, capsys, trajectory_pair):
        base_path, current_path = trajectory_pair
        assert main(["fig7", "--diff", base_path,
                     "--against", current_path]) == 2
        assert "--against" in capsys.readouterr().err

    def test_against_requires_diff(self, capsys, trajectory_pair):
        _, current_path = trajectory_pair
        assert main(["--against", current_path]) == 2
        assert "--diff" in capsys.readouterr().err


class TestDiffSchemaAlignment:
    """Changed headers align on shared columns instead of skipping."""

    def _pair(self, tmp_path, base_rows, now_headers, now_rows):
        baseline = _trajectory({
            "analytics": (["parallelism", "scans_per_sec"], base_rows),
        })
        current = _trajectory({"analytics": (now_headers, now_rows)})
        base_path = tmp_path / "base.json"
        current_path = tmp_path / "current.json"
        base_path.write_text(json.dumps(baseline))
        current_path.write_text(json.dumps(current))
        return str(base_path), str(current_path)

    def test_aligned_rows_compare_on_shared_columns(self, capsys,
                                                    tmp_path):
        # The new `plane` column splits each parallelism level in two;
        # only one plane row per level keeps the comparison exact.
        base_path, current_path = self._pair(
            tmp_path, [[1, 10.0], [4, 40.0]],
            ["plane", "parallelism", "scans_per_sec"],
            [["vectorized", 1, 20.0], ["vectorized", 4, 10.0]])
        assert main(["--diff", base_path, "--against", current_path]) == 0
        out = capsys.readouterr().out
        assert "headers changed (plane)" in out
        assert "comparing on shared columns" in out
        assert "improved" in out      # 10 -> 20 scans/s
        assert "REGRESSION" in out    # 40 -> 10 scans/s

    def test_ambiguous_keys_flagged_not_compared(self, capsys, tmp_path):
        # Both planes survive projection with the same shared key: the
        # row is flagged explicitly instead of compared at random.
        base_path, current_path = self._pair(
            tmp_path, [[1, 10.0]],
            ["plane", "parallelism", "scans_per_sec"],
            [["vectorized", 1, 20.0], ["row", 1, 5.0]])
        assert main(["--diff", base_path, "--against", current_path]) == 0
        out = capsys.readouterr().out
        assert "ambiguous after schema alignment" in out
        assert "REGRESSION" not in out
        assert "improved" not in out

    def test_unmatched_rows_warned_per_row(self, capsys, tmp_path):
        # A baseline key with no current counterpart is called out.
        base_path, current_path = self._pair(
            tmp_path, [[2, 10.0]],
            ["plane", "parallelism", "scans_per_sec"],
            [["vectorized", 1, 20.0]])
        assert main(["--diff", base_path, "--against", current_path]) == 0
        out = capsys.readouterr().out
        assert "no matching current row after schema alignment" in out

    def test_no_shared_metrics_reported(self, capsys, tmp_path):
        base_path, current_path = self._pair(
            tmp_path, [[1, 10.0]],
            ["plane", "scan_latency_seconds"], [["vectorized", 0.5]])
        assert main(["--diff", base_path, "--against", current_path]) == 0
        assert "not comparable" in capsys.readouterr().out
