"""The python -m repro.bench experiment runner."""

import pytest

from repro.bench.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig7", "fig8", "fig9", "fig10",
                     "table7", "table8", "table9"):
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_one_experiment(self, capsys):
        assert main(["table8", "--scale", "5000"]) == 0
        out = capsys.readouterr().out
        assert "Table 8" in out
        assert "L-Store (Column)" in out
        assert "L-Store (Row)" in out

    def test_contention_flag(self, capsys):
        assert main(["fig7", "--scale", "5000", "--duration", "0.05",
                     "--contention", "high"]) == 0
        assert "Figure 7(high)" in capsys.readouterr().out
