"""Smoke-run every experiment driver at tiny scale (fast CI coverage).

The real measurements live under ``benchmarks/``; these tests verify
each driver produces a structurally complete result quickly, so a
broken experiment fails in the unit suite and not only in a long
benchmark run.
"""

import pytest

from repro.bench.experiments import (fig7_scalability, fig8_merge_scan,
                                     fig9_read_write_ratio,
                                     fig10_mixed_workload,
                                     table7_scan_performance,
                                     table8_row_vs_column,
                                     table9_point_queries)

TINY = dict(scale=10_000)  # 1000-row table


class TestDriversProduceCompleteResults:
    def test_fig7(self):
        result = fig7_scalability("high", thread_counts=(1, 2),
                                  duration=0.05, **TINY)
        assert len(result.rows) == 6  # 3 engines × 2 thread counts
        assert set(result.column("threads")) == {1, 2}

    def test_fig8(self):
        result = fig8_merge_scan(batch_sizes=(64, 256),
                                 update_thread_counts=(2,),
                                 scan_repeats=1, **TINY)
        assert len(result.rows) == 2
        assert all(row[2] > 0 for row in result.rows)

    def test_fig9(self):
        result = fig9_read_write_ratio("low", read_percentages=(0, 100),
                                       threads=2, duration=0.05, **TINY)
        assert len(result.rows) == 6

    def test_fig10(self):
        result = fig10_mixed_workload("low", total_threads=3,
                                      scan_thread_counts=(1,),
                                      duration=0.05, **TINY)
        assert len(result.rows) == 3
        assert all(row[2] == 2 for row in result.rows)  # update threads

    def test_table7(self):
        result = table7_scan_performance(update_threads=2,
                                         scan_repeats=1, **TINY)
        assert len(result.rows) == 3

    def test_table8(self):
        result = table8_row_vs_column(scan_repeats=1, **TINY)
        assert len(result.rows) == 4
        assert {row[1] for row in result.rows} == {"with", "without"}

    def test_table9(self):
        result = table9_point_queries(column_fractions=(0.1, 1.0),
                                      transactions=30, **TINY)
        assert len(result.rows) == 4

    def test_bad_contention(self):
        with pytest.raises(ValueError):
            fig7_scalability("extreme")
