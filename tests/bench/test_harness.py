"""Harness: transaction execution, timed runs, engine factory."""

import pytest

from repro.bench.experiments import make_engine
from repro.bench.harness import (execute_transaction, load_engine,
                                 measure_scan_seconds,
                                 run_fixed_transactions, run_mixed_workload)
from repro.bench.reporting import ExperimentResult
from repro.bench.workload import WorkloadSpec


@pytest.fixture
def spec():
    return WorkloadSpec(table_size=256, active_set=64)


@pytest.fixture(params=["lstore", "iuh", "dbm", "lstore-row"])
def engine(request, spec):
    instance = make_engine(request.param, spec.num_columns)
    load_engine(instance, spec)
    yield instance
    instance.close()


class TestExecution:
    def test_execute_transaction(self, engine, spec):
        from repro.bench.workload import TransactionGenerator
        generator = TransactionGenerator(spec, 0)
        assert execute_transaction(engine, generator.next_transaction())

    def test_run_fixed(self, engine, spec):
        result = run_fixed_transactions(engine, spec, transactions=20,
                                        threads=2)
        assert result.committed + result.aborted == 20
        assert result.duration > 0
        assert result.txn_per_sec > 0

    def test_scan_measurement(self, engine):
        seconds = measure_scan_seconds(engine, repeats=2)
        assert seconds > 0

    def test_timed_mixed_run(self, engine, spec):
        result = run_mixed_workload(engine, spec, update_threads=2,
                                    scan_threads=1, duration=0.15)
        assert result.committed > 0
        assert result.scans > 0
        assert result.scans_per_sec > 0
        assert result.scan_latency > 0


class TestReporting:
    def test_format_table(self):
        result = ExperimentResult("Fig X", "demo", ["a", "b"])
        result.add_row("one", 1.5)
        result.add_row("two", 2)
        text = result.format()
        assert "Fig X" in text and "one" in text and "1.5000" in text

    def test_column_and_series(self):
        result = ExperimentResult("T", "demo", ["engine", "value"])
        result.add_row("x", 1)
        result.add_row("y", 2)
        result.add_row("x", 3)
        assert result.column("value") == [1, 2, 3]
        assert result.series("engine", "value", "x") == [1, 3]


class TestEngineFactory:
    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            make_engine("nope", 10)

    def test_row_layout_engine(self):
        from repro.core.types import Layout
        engine = make_engine("lstore-row", 4)
        assert engine.table.layout is Layout.ROW
        engine.close()
