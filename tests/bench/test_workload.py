"""Micro-benchmark generators: contention levels, transaction shapes."""

import pytest

from repro.bench.workload import (TransactionGenerator, WorkloadSpec,
                                  high_contention, initial_rows,
                                  low_contention, medium_contention,
                                  point_query_transaction)


class TestSpecs:
    def test_contention_ordering(self):
        low = low_contention(1000)
        medium = medium_contention(1000)
        high = high_contention(1000)
        assert low.active_set > medium.active_set > high.active_set
        assert low.active_set == low.table_size  # paper: whole table

    def test_paper_defaults(self):
        spec = WorkloadSpec()
        assert spec.num_columns == 10
        assert spec.reads_per_txn == 8
        assert spec.writes_per_txn == 2
        # 40% of columns per write (4 of 10).
        assert spec.columns_per_write == 4
        assert spec.scan_fraction == pytest.approx(0.10)

    def test_active_set_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(table_size=10, active_set=20)

    def test_mix_override(self):
        spec = WorkloadSpec().with_read_write_mix(5, 5)
        assert spec.reads_per_txn == 5
        assert spec.writes_per_txn == 5


class TestGenerator:
    def test_transaction_shape(self):
        spec = WorkloadSpec(table_size=1000, active_set=100)
        generator = TransactionGenerator(spec, thread_id=0)
        operations = generator.next_transaction()
        reads = [op for op in operations if op[0] == "r"]
        writes = [op for op in operations if op[0] == "w"]
        assert len(reads) == 8
        assert len(writes) == 2
        for op in reads:
            assert 0 <= op[1] < 100
            assert len(op[2]) == 4
        for op in writes:
            assert len(op[2]) == 4
            assert 0 not in op[2]  # never the key column

    def test_deterministic_per_thread(self):
        spec = WorkloadSpec(table_size=1000, active_set=100)
        a = TransactionGenerator(spec, 1).next_transaction()
        b = TransactionGenerator(spec, 1).next_transaction()
        c = TransactionGenerator(spec, 2).next_transaction()
        assert a == b
        assert a != c

    def test_scan_column_never_key(self):
        spec = WorkloadSpec(table_size=1000, active_set=100)
        generator = TransactionGenerator(spec, 0)
        assert all(1 <= generator.scan_column() < 10 for _ in range(50))

    def test_initial_rows(self):
        spec = WorkloadSpec(table_size=20, active_set=20)
        rows = list(initial_rows(spec))
        assert len(rows) == 20
        assert all(len(row) == 10 for row in rows)
        assert [row[0] for row in rows] == list(range(20))

    def test_point_query_transaction(self):
        import random
        spec = WorkloadSpec(table_size=1000, active_set=100)
        ops = point_query_transaction(random.Random(0), spec, 0.4)
        assert len(ops) == 10
        assert all(op[0] == "r" and len(op[2]) == 4 for op in ops)
        full = point_query_transaction(random.Random(0), spec, 1.0)
        assert all(len(op[2]) == 10 for op in full)
