"""Crash-matrix torture workload (run as a subprocess).

Usage: ``python workload.py <data_dir> <acks_file> [max_transfers]``

Runs a bank-transfer workload against a durable database until either a
crash failpoint (armed via ``REPRO_FAILPOINTS`` in the environment)
kills the process with ``os._exit(137)`` or the transfer budget runs
out (clean ``exit 0``). Each transfer moves money between two accounts
and inserts a ledger row in the same transaction; after ``commit()``
returns True the transfer is **acked** by appending its sequence number
to the acks file and fsyncing it. The parent process recovers the log
and audits:

* conservation — account balances still sum to the initial total,
* acked ⊆ durable — every acked transfer's ledger row survived,
* agreement — scans and point reads see the same state.

Periodic merges and checkpoints run inline so crash points inside the
merge install and the checkpoint protocol actually get hit.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.core.config import EngineConfig  # noqa: E402
from repro.core.db import Database  # noqa: E402
from repro.errors import LStoreError  # noqa: E402
from repro.txn.transaction import Transaction  # noqa: E402

ACCOUNTS = 16
INITIAL_BALANCE = 100


def main() -> int:
    data_dir = sys.argv[1]
    acks_path = sys.argv[2]
    max_transfers = int(sys.argv[3]) if len(sys.argv) > 3 else 60

    config = EngineConfig(
        records_per_page=8, records_per_tail_page=8, update_range_size=16,
        insert_range_size=16, merge_threshold=8, background_merge=False,
        wal_enabled=True, data_dir=data_dir,
        wal_segment_bytes=2048)  # tiny: forces rotation under the workload
    db = Database(config)
    bank = db.create_table("bank", 3)
    ledger = db.create_table("ledger", 3)
    for account in range(ACCOUNTS):
        bank.insert([account, INITIAL_BALANCE, 0])
    db._wal.flush()

    acks = open(acks_path, "a")
    for seq in range(max_transfers):
        src = seq % ACCOUNTS
        dst = (seq * 7 + 3) % ACCOUNTS
        if src == dst:
            continue
        amount = 1 + seq % 5
        txn = Transaction(db.txn_manager)
        try:
            balances = {
                key: txn.select(bank, key, (1,))[1] for key in (src, dst)}
            txn.update(bank, src, {1: balances[src] - amount})
            txn.update(bank, dst, {1: balances[dst] + amount})
            txn.insert(ledger, [seq, src, dst])
            committed = txn.commit()
        except LStoreError:
            continue  # conflict/abort: retry loop moves on
        if committed:
            acks.write("%d\n" % seq)
            acks.flush()
            os.fsync(acks.fileno())
        if seq and seq % 10 == 0:
            db.run_merges()
        if seq and seq % 25 == 0:
            db.checkpoint()
    acks.close()
    db.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
