"""Fault injection: registry semantics, FaultyFile, fail-stop WAL.

The headline regression here is the ack-without-durability bug: a
failed fsync inside the group-commit leader used to clear the buffer
and let a later drain publish a synced LSN "covering" the lost frames.
The fail-stop log must never ack a commit whose frames did not reach
disk.
"""

import errno
import io
import os

import pytest

from repro.core.config import EngineConfig
from repro.core.db import Database
from repro.core.page import Page
from repro.core.types import PageKind
from repro.errors import CorruptPageError, WALError
from repro.fault import FAULTS, FaultError, wrap_file
from repro.storage.disk import PageFile
from repro.txn.transaction import Transaction
from repro.wal.log import LogManager
from repro.wal.records import TxnCommitRecord
from repro.wal.recovery import recover_database


@pytest.fixture(autouse=True)
def _clean_registry():
    FAULTS.clear()
    yield
    FAULTS.clear()


def _wal_config(data_dir, **overrides) -> EngineConfig:
    return EngineConfig(
        records_per_page=8, records_per_tail_page=8, update_range_size=16,
        insert_range_size=16, merge_threshold=8, background_merge=False,
        wal_enabled=True, data_dir=str(data_dir), **overrides)


def _plain_config() -> EngineConfig:
    return EngineConfig(
        records_per_page=8, records_per_tail_page=8, update_range_size=16,
        insert_range_size=16, merge_threshold=8, background_merge=False)


class TestRegistry:
    def test_inactive_registry_is_silent(self):
        assert not FAULTS.active
        FAULTS.hit("anything.at_all")  # no-op, no error

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            FAULTS.configure("nonsense-without-equals")
        with pytest.raises(ValueError):
            FAULTS.configure("x=explode")
        with pytest.raises(ValueError):
            FAULTS.configure("x=delay")  # delay needs a seconds arg

    def test_raise_fires_n_times(self):
        FAULTS.configure("p=raise:2")
        assert FAULTS.armed("p")
        for _ in range(2):
            with pytest.raises(FaultError):
                FAULTS.hit("p")
        FAULTS.hit("p")  # exhausted: silent

    def test_enospc_carries_errno(self):
        FAULTS.configure("p=enospc")
        with pytest.raises(OSError) as excinfo:
            FAULTS.hit("p")
        assert excinfo.value.errno == errno.ENOSPC

    def test_unarmed_names_never_fire(self):
        FAULTS.configure("p=raise")
        FAULTS.hit("q")  # a different name: silent
        with pytest.raises(FaultError):
            FAULTS.hit("p")

    def test_delay_action_sleeps_and_continues(self):
        FAULTS.configure("p=delay:0.001")
        FAULTS.hit("p")
        FAULTS.hit("p")  # unlimited by default


class TestFaultyFile:
    def test_wrap_file_is_identity_when_inactive(self):
        raw = io.BytesIO()
        assert wrap_file(raw, "wal") is raw

    def test_torn_write_writes_half_then_raises(self):
        FAULTS.configure("wal.torn_write=torn:1")
        raw = io.BytesIO()
        wrapped = wrap_file(raw, "wal")
        assert wrapped is not raw
        with pytest.raises(FaultError):
            wrapped.write(b"0123456789")
        assert raw.getvalue() == b"01234"  # torn in half
        assert wrapped.write(b"ok") == 2  # exhausted: passes through

    def test_enospc_write_writes_nothing(self):
        FAULTS.configure("pagefile.torn_write=enospc:1")
        raw = io.BytesIO()
        wrapped = wrap_file(raw, "pagefile")
        with pytest.raises(OSError) as excinfo:
            wrapped.write(b"0123456789")
        assert excinfo.value.errno == errno.ENOSPC
        assert raw.getvalue() == b""


class TestFailStopGroupCommit:
    def test_failed_fsync_never_acks_commit(self, tmp_path):
        """Regression for the lost-frames-then-covering-LSN bug."""
        log = LogManager(str(tmp_path / "log.bin"), sync_retries=0)
        log.append(TxnCommitRecord(txn_id=1, commit_time=5))
        FAULTS.configure("wal.before_fsync=raise")
        with pytest.raises(WALError):
            log.append(TxnCommitRecord(txn_id=2, commit_time=6))
        assert log.poisoned
        assert log.stat_sync_retries == 1
        # The lost frame is not on disk, and no LSN covering it was
        # ever published — the committer got an error, not a false ack.
        on_disk = [r.txn_id
                   for r in LogManager.read_records(str(tmp_path / "log.bin"))]
        assert on_disk == [1]
        assert log.synced_lsn == 1
        # Fail-stop: everything after the poisoning fails loudly too.
        FAULTS.clear()
        with pytest.raises(WALError):
            log.append(TxnCommitRecord(txn_id=3, commit_time=7))
        with pytest.raises(WALError):
            log.flush()
        log.close()  # close never raises: teardown must stay possible

    def test_transient_fsync_failure_retried(self, tmp_path):
        log = LogManager(str(tmp_path / "log.bin"), sync_retries=2,
                         retry_backoff=0.0)
        FAULTS.configure("wal.before_fsync=raise:1")
        log.append(TxnCommitRecord(txn_id=1, commit_time=5))
        assert not log.poisoned
        assert log.stat_sync_retries == 1
        on_disk = [r.txn_id for r in LogManager.read_records(log.path)]
        assert on_disk == [1]
        log.close()

    def test_torn_write_rewound_and_retried(self, tmp_path):
        # Arm a never-firing point first so the registry is active when
        # the log opens (FaultyFile wraps only at open time), then arm
        # the torn write after the segment header is written.
        FAULTS.configure("warmup.never=raise:0")
        log = LogManager(str(tmp_path / "log.bin"), sync_retries=2,
                         retry_backoff=0.0)
        FAULTS.configure("wal.torn_write=torn:1")
        log.append(TxnCommitRecord(txn_id=7, commit_time=5))
        assert log.stat_sync_retries == 1
        # The rewind dropped the torn half-frame: the retry produced one
        # clean frame, not a duplicate or a corrupt prefix.
        records = list(LogManager.read_records(log.path))
        assert [r.txn_id for r in records] == [7]
        log.close()

    def test_committer_gets_error_and_recovery_hides_txn(self, tmp_path):
        """End to end: fsync failure surfaces as WALError from commit()
        and the unacked transaction is invisible after recovery."""
        db = Database(_wal_config(tmp_path, wal_sync_retries=0))
        table = db.create_table("t", 3)
        table.insert([1, 10, 0])
        db._wal.flush()
        FAULTS.configure("wal.before_fsync=raise")
        txn = Transaction(db.txn_manager)
        txn.update(table, 1, {1: 99})
        with pytest.raises(WALError):
            txn.commit()
        FAULTS.clear()
        recovered = recover_database(
            os.path.join(str(tmp_path), "wal.log"), config=_plain_config())
        rtable = recovered.get_table("t")
        values = rtable.read_latest(rtable.index.primary.get(1), (1,))
        assert values == {1: 10}  # the never-acked update is invisible
        db.close()


class TestPageFileHardening:
    def _page(self, page_id=1):
        page = Page(page_id, PageKind.TAIL, 8, 0)
        for slot in range(4):
            page.write_slot(slot, 100 + slot)
        return page

    def test_flipped_byte_detected_with_context(self, tmp_path):
        page_file = PageFile(str(tmp_path / "pages.dat"))
        page_file.write_page(self._page())
        page_file.sync()
        offset, length = page_file._index[1]
        with open(page_file.path, "r+b") as handle:
            handle.seek(offset + length - 2)
            byte = handle.read(1)
            handle.seek(offset + length - 2)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(CorruptPageError) as excinfo:
            page_file.read_page(1)
        assert excinfo.value.page_id == 1
        assert excinfo.value.offset == offset
        page_file.close(sync=False)

    def test_truncated_image_detected(self, tmp_path):
        page_file = PageFile(str(tmp_path / "pages.dat"))
        page_file.write_page(self._page())
        page_file.sync()
        offset, length = page_file._index[1]
        with open(page_file.path, "r+b") as handle:
            handle.truncate(offset + length - 4)
        with pytest.raises(CorruptPageError) as excinfo:
            page_file.read_page(1)
        assert excinfo.value.page_id == 1
        page_file.close(sync=False)

    def test_enospc_on_page_write_surfaces(self, tmp_path):
        page_file = PageFile(str(tmp_path / "pages.dat"))
        FAULTS.configure("pagefile.before_write=enospc")
        with pytest.raises(OSError) as excinfo:
            page_file.write_page(self._page())
        assert excinfo.value.errno == errno.ENOSPC
        page_file.close(sync=False)

    def test_index_rewrite_is_atomic(self, tmp_path):
        """A crash between temp-write and rename leaves the old index
        intact — reopening serves the pages it names."""
        page_file = PageFile(str(tmp_path / "pages.dat"))
        page_file.write_page(self._page(1))
        page_file.sync()
        page_file.write_page(self._page(2))
        FAULTS.configure("pagefile.before_index_replace=raise")
        with pytest.raises(FaultError):
            page_file.sync()
        FAULTS.clear()
        # Simulate the crash: abandon the handle, reopen from disk.
        reopened = PageFile(str(tmp_path / "pages.dat"))
        assert 1 in reopened
        assert 2 not in reopened  # the interrupted rewrite published nothing
        assert reopened.read_page(1).read_slot(0) == 100
        reopened.close(sync=False)
        page_file.close(sync=False)
