"""Chaos harness: seeded fault schedules over a live workload.

The crash matrix kills the process at one point; this suite instead
keeps the engine *running* while a seeded :class:`ChaosSchedule` arms
one-shot faults underneath it — merge-install crashes (absorbed by the
supervisor's restart/quarantine machinery) and transient fsync
failures (absorbed by the WAL's bounded sync retries). The audit runs
**while** faults fire, not after a clean stop:

* conservation — bank balances always sum to the initial total,
* agreement — a ranged scan and per-key point reads see the same state,
* acked ⊆ durable — every acked transfer's ledger row survives into a
  recovered database.

Every run prints its seed (``REPRO_CHAOS_SEED`` overrides it), so a
failure replays exactly: the schedule (times, points, actions) is a
pure function of the seed.
"""

import os
import time

import pytest

from repro.core.config import EngineConfig
from repro.core.db import Database
from repro.errors import LStoreError
from repro.fault import FAULTS, ChaosSchedule
from repro.wal.recovery import recover_database

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1108"))

#: Failpoints chaos may arm, and the actions drawn per event. All are
#: *recoverable* by design: merge crashes restart under supervision,
#: one-shot fsync/write failures sit inside the WAL's retry budget.
PALETTE = [
    ("merge.before_install", ("raise",)),
    ("merge.after_install", ("raise",)),
    ("wal.before_fsync", ("raise",)),
    ("wal.before_write", ("raise",)),
]

ACCOUNTS = 16
INITIAL_BALANCE = 100


@pytest.fixture(autouse=True)
def _clean_registry():
    FAULTS.clear()
    yield
    FAULTS.clear()


class TestScheduleDeterminism:
    def test_same_seed_same_events(self):
        first = ChaosSchedule.generate(SEED, PALETTE, duration=0.5)
        second = ChaosSchedule.generate(SEED, PALETTE, duration=0.5)
        assert first.events == second.events
        assert first.events  # a 0.5 s window yields events

    def test_different_seeds_differ(self):
        first = ChaosSchedule.generate(1, PALETTE, duration=0.5)
        second = ChaosSchedule.generate(2, PALETTE, duration=0.5)
        assert first.events != second.events

    def test_specs_are_one_shot_palette_draws(self):
        schedule = ChaosSchedule.generate(SEED, PALETTE, duration=0.5)
        names = {name for name, _ in PALETTE}
        for event in schedule.events:
            name, spec = event.spec.split("=")
            assert name in names
            assert spec.endswith(":1")

    def test_generate_validation(self):
        with pytest.raises(ValueError):
            ChaosSchedule.generate(SEED, [], duration=0.5)
        with pytest.raises(ValueError):
            ChaosSchedule.generate(SEED, PALETTE, duration=0.0)
        with pytest.raises(ValueError):
            ChaosSchedule.generate(SEED, PALETTE, duration=0.5,
                                   mean_gap=0.0)

    def test_describe_names_the_seed(self):
        schedule = ChaosSchedule.generate(SEED, PALETTE, duration=0.1)
        text = schedule.describe()
        assert "seed=%d" % SEED in text
        assert len(text.splitlines()) == 1 + len(schedule.events)

    def test_stop_cuts_the_driver_short(self):
        schedule = ChaosSchedule(
            tuple(ChaosSchedule.generate(SEED, PALETTE,
                                         duration=60.0,
                                         mean_gap=10.0).events),
            SEED)
        schedule.start()
        schedule.stop(timeout=5.0)
        assert schedule.fired == []

    def test_start_twice_rejected(self):
        schedule = ChaosSchedule.generate(SEED, PALETTE, duration=0.1)
        schedule.start()
        with pytest.raises(RuntimeError):
            schedule.start()
        schedule.stop()


class TestChaosWorkload:
    """Bank transfers audited live while the schedule fires."""

    def make_db(self, tmp_path):
        config = EngineConfig(
            records_per_page=8, records_per_tail_page=8,
            update_range_size=16, insert_range_size=16, merge_threshold=4,
            background_merge=True, merge_poll_interval=0.002,
            merge_quarantine_after=3,
            supervisor_backoff_base=0.002, supervisor_backoff_cap=0.01,
            wal_enabled=True, data_dir=str(tmp_path),
            wal_segment_bytes=4096, wal_retry_backoff=0.0005)
        return Database(config)

    def audit(self, db, bank):
        """Conservation + scan-vs-point agreement, mid-flight."""
        query = db.query("bank")
        scan_total = query.sum(0, ACCOUNTS - 1, 1)
        point_total = sum(
            query.select(key, 0, [0, 1, 0])[0].columns[1]
            for key in range(ACCOUNTS))
        assert scan_total == point_total, "scan and point reads disagree"
        assert scan_total == ACCOUNTS * INITIAL_BALANCE, \
            "money was created or destroyed"

    def test_conservation_and_acks_survive_chaos(self, tmp_path):
        schedule = ChaosSchedule.generate(SEED, PALETTE, duration=0.8,
                                          mean_gap=0.02)
        print()
        print(schedule.describe())

        db = self.make_db(tmp_path)
        acked = []
        try:
            bank = db.create_table("bank", 3)
            ledger = db.create_table("ledger", 3)
            for account in range(ACCOUNTS):
                bank.insert([account, INITIAL_BALANCE, 0])
            db._wal.flush()

            schedule.start()
            seq = 0
            deadline = time.monotonic() + 8.0
            while (schedule._thread.is_alive()
                   and time.monotonic() < deadline):
                src = seq % ACCOUNTS
                dst = (seq * 7 + 3) % ACCOUNTS
                seq += 1
                if src == dst:
                    continue
                txn = db.begin_transaction()
                try:
                    src_bal = txn.select(bank, src, (1,))[1]
                    dst_bal = txn.select(bank, dst, (1,))[1]
                    txn.update(bank, src, {1: src_bal - 1})
                    txn.update(bank, dst, {1: dst_bal + 1})
                    txn.insert(ledger, [seq, src, dst])
                    committed = txn.commit()
                except LStoreError:
                    continue  # faulted/conflicted attempt: move on
                if committed:
                    acked.append(seq)
                if seq % 20 == 0:
                    self.audit(db, bank)  # audit WHILE faults fire
            schedule.stop()
            FAULTS.clear()

            assert schedule.fired, "schedule armed no events"
            assert len(acked) >= 20, \
                "chaos starved the workload: only %d acks" % len(acked)
            self.audit(db, bank)

            # The supervisor absorbed any merge crashes: the engine is
            # alive, and whatever crashed is accounted, not silent.
            snapshot = db.metrics()
            service = db.supervisor.service("merge")
            if service is not None and service.crash_count:
                assert snapshot["health"]["service_restarts"] \
                    + snapshot["merge"]["quarantined_ranges"] >= 1
            assert not db._wal.poisoned, \
                "one-shot fsync faults must sit inside the retry budget"
        finally:
            schedule.stop()
            FAULTS.clear()
            db.close()

        # Acked ⊆ durable: every acked transfer's ledger row recovers.
        recovered = recover_database(
            os.path.join(str(tmp_path), "wal.log"),
            config=EngineConfig(
                records_per_page=8, records_per_tail_page=8,
                update_range_size=16, insert_range_size=16,
                merge_threshold=4, background_merge=False))
        try:
            rledger = recovered.get_table("ledger")
            for seq in acked:
                rid = rledger.index.primary.get(seq)
                assert rid is not None, \
                    "acked transfer %d lost in recovery (seed=%d)" \
                    % (seq, SEED)
            rbank = recovered.get_table("bank")
            total = sum(
                rbank.read_latest(rbank.index.primary.get(key), (1,))[1]
                for key in range(ACCOUNTS))
            assert total == ACCOUNTS * INITIAL_BALANCE
        finally:
            recovered.close()
