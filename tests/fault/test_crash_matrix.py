"""Crash matrix: kill the workload at every failpoint, recover, audit.

For every registered crash point in the append → commit → rotate →
merge → checkpoint pipeline, a subprocess workload (``workload.py``) is
killed mid-flight by a ``crash`` failpoint (``os._exit(137)``, the
kill -9 analogue — nothing is flushed on the way down), the survivors
are recovered from the log chain, and the recovered state is audited
for the OLxPBench-style semantic invariants:

* **conservation** — account balances still sum to the initial total;
* **committed-survive** — every transfer the workload *acked* (its
  ``commit()`` returned) has its ledger row;
* **uncommitted-invisible** — implied by conservation: a half-applied
  transfer would break the total;
* **agreement** — the analytical sum and per-record point reads see the
  same state (rebuilt horizons and dirty sets agree), and a merge runs
  cleanly on the recovered tables.

The full matrix is expensive; by default each test run samples a seeded
subset (override with ``REPRO_CRASH_MATRIX=full``).
"""

import os
import subprocess
import sys

import pytest

from repro.core.config import EngineConfig
from repro.fault import CRASH_POINTS
from repro.fault.registry import CRASH_EXIT_STATUS
from repro.wal.recovery import recover_database

WORKLOAD = os.path.join(os.path.dirname(__file__), "workload.py")
ACCOUNTS = 16
INITIAL_BALANCE = 100


def _plain_config() -> EngineConfig:
    return EngineConfig(
        records_per_page=8, records_per_tail_page=8, update_range_size=16,
        insert_range_size=16, merge_threshold=8, background_merge=False)


def _selected_points() -> list[str]:
    mode = os.environ.get("REPRO_CRASH_MATRIX", "")
    if mode == "full":
        return list(CRASH_POINTS)
    # Seeded subset: deterministic, rotates nothing, still covers every
    # pipeline stage (wal, txn, merge, checkpoint).
    return [point for i, point in enumerate(CRASH_POINTS) if i % 3 == 0] + [
        "txn.after_commit_record", "checkpoint.before_marker"]


def _nth_hit_for(point: str) -> int:
    # Crash on a later hit so the workload does real mixed work first —
    # but merge/checkpoint points fire only a handful of times over the
    # 60-transfer budget, so they crash on an early hit instead.
    if point.startswith(("merge.", "checkpoint.")):
        return 2
    return 12


def _run_crashing_workload(tmp_path, point: str, nth_hit: int):
    data_dir = str(tmp_path / "data")
    acks_path = str(tmp_path / "acks.txt")
    os.makedirs(data_dir, exist_ok=True)
    env = dict(os.environ)
    env["REPRO_FAILPOINTS"] = "%s=crash:%d" % (point, nth_hit)
    env.pop("PYTHONHASHSEED", None)
    proc = subprocess.run(
        [sys.executable, WORKLOAD, data_dir, acks_path, "60"],
        env=env, capture_output=True, text=True, timeout=120)
    return proc, data_dir, acks_path


def _audit(data_dir: str, acks_path: str, point: str) -> None:
    log_path = os.path.join(data_dir, "wal.log")
    recovered = recover_database(log_path, config=_plain_config())
    try:
        bank = recovered.get_table("bank")
        query = recovered.query("bank")

        # Conservation: transfers move money, never create or destroy it.
        total = query.sum(0, ACCOUNTS - 1, 1)
        assert total == ACCOUNTS * INITIAL_BALANCE, (
            "%s: balance sum %d != %d"
            % (point, total, ACCOUNTS * INITIAL_BALANCE))

        # Committed-survive: every acked transfer left its ledger row.
        acked = []
        if os.path.exists(acks_path):
            with open(acks_path) as handle:
                acked = [int(line) for line in handle if line.strip()]
        ledger = recovered.query("ledger")
        for seq in acked:
            rows = ledger.select(seq, 0, None)
            assert rows, "%s: acked transfer %d lost its ledger row" \
                % (point, seq)

        # Agreement: the scan plane and the per-record walk see the
        # same balances (rebuilt horizons / dirty sets are consistent).
        point_reads = 0
        for key in range(ACCOUNTS):
            rid = bank.index.primary.get(key)
            point_reads += bank.read_latest(rid, (1,))[1]
        assert point_reads == total, (
            "%s: point reads %d != scan sum %d" % (point, point_reads, total))

        # Merges are idempotent and simply re-run after recovery.
        recovered.run_merges()
        assert query.sum(0, ACCOUNTS - 1, 1) == ACCOUNTS * INITIAL_BALANCE
    finally:
        recovered.close()


@pytest.mark.parametrize("point", _selected_points())
def test_crash_at_failpoint_recovers_clean(tmp_path, point):
    proc, data_dir, acks_path = _run_crashing_workload(
        tmp_path, point, nth_hit=_nth_hit_for(point))
    assert proc.returncode == CRASH_EXIT_STATUS, (
        point, proc.returncode, proc.stderr)
    _audit(data_dir, acks_path, point)


def test_kill_nine_equivalent_mid_commit(tmp_path):
    """The classic: die on the very first commit-record append."""
    proc, data_dir, acks_path = _run_crashing_workload(
        tmp_path, "txn.before_commit_record", nth_hit=1)
    assert proc.returncode == CRASH_EXIT_STATUS
    _audit(data_dir, acks_path, "txn.before_commit_record")


def test_clean_run_audits_green(tmp_path):
    """Baseline: no faults, full workload, same audit."""
    data_dir = str(tmp_path / "data")
    acks_path = str(tmp_path / "acks.txt")
    os.makedirs(data_dir, exist_ok=True)
    env = dict(os.environ)
    env.pop("REPRO_FAILPOINTS", None)
    proc = subprocess.run(
        [sys.executable, WORKLOAD, data_dir, acks_path, "60"],
        env=env, capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr
    _audit(data_dir, acks_path, "clean")
