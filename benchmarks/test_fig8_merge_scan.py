"""Figure 8 — scan time vs tail records processed per merge.

Paper shape: with a tiny merge batch the merge cannot keep up (and its
fixed cost is amortised over few records), so scans chase long tail
chains; very large batches delay consolidation slightly; the sweet spot
sits around 50% of the update-range size.
"""

import pytest

from repro.bench.experiments import BENCH_RANGE_SIZE, fig8_merge_scan

from conftest import SCALE, record_result

BATCHES = (BENCH_RANGE_SIZE // 8, BENCH_RANGE_SIZE // 4,
           BENCH_RANGE_SIZE // 2, BENCH_RANGE_SIZE)


def test_fig8(benchmark):
    result = benchmark.pedantic(
        fig8_merge_scan,
        kwargs=dict(batch_sizes=BATCHES, update_thread_counts=(4, 8),
                    scale=SCALE, scan_repeats=3),
        rounds=1, iterations=1)
    record_result(benchmark, result)
    for threads in (4, 8):
        series = result.series("update_threads", "scan_seconds", threads)
        assert len(series) == len(BATCHES)
        assert all(seconds > 0 for seconds in series)
