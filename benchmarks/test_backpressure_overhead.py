"""Backpressure / deadline overhead guards (ISSUE 10 acceptance bar).

The admission controller follows the ``obs_metrics=False`` zero-cost
discipline: without watermarks the Database keeps ``table.admission =
None`` and every write pays exactly one attribute load + is-None test;
per-transaction deadlines add one ``self._deadline is None`` test to
``_check_active``. Both ride the fig7-style single-writer update loop
measured here (every update crosses the admission gate and the
statement deadline check), so these bars pin the contract to numbers:

* **disabled**: ≥ 0.97× an identical disabled run. Both sides run the
  same None-checks, so this is a noise guard — it fails only if the
  disabled path grows real work (an unconditional backlog probe, an
  ungated clock read).
* **armed but idle**: ≥ 0.90× the disabled floor. Watermarks far above
  any reachable backlog make every ``admit()`` take the fast path —
  one backlog probe (a GIL-atomic ``len``) and one compare per write
  is allowed single-digit-percent cost, nothing more.

Best-of-N with interleaved rounds, retried on a noisy miss — the same
discipline as ``test_obs_overhead``.
"""

from repro.bench.experiments import _spec_for, make_engine
from repro.bench.harness import load_engine, run_write_workload

from conftest import DURATION, SCALE

_REPEATS = 3

#: Watermarks no workload here can reach: admission is wired (the
#: controller exists, tables carry it) but every admit() fast-paths.
_IDLE_ARMED = dict(merge_backlog_soft=10 ** 9, merge_backlog_hard=10 ** 9)


def _interleaved_best(*override_sets) -> list[float]:
    """Best-of-N update throughput per config, rounds interleaved."""
    spec = _spec_for("low", SCALE)
    engines = [make_engine("lstore", spec.num_columns, **overrides)
               for overrides in override_sets]
    try:
        for engine in engines:
            load_engine(engine, spec)
        best = [0.0] * len(engines)
        for _ in range(_REPEATS):
            for index, engine in enumerate(engines):
                run = run_write_workload(engine, spec, kind="update",
                                         update_threads=1,
                                         duration=DURATION)
                best[index] = max(best[index], run.txn_per_sec)
        return best
    finally:
        for engine in engines:
            engine.close()


def _guard(bar: float, *override_sets, attempts: int = 3) -> None:
    """Assert side 2 holds ``bar``× side 1, retrying on a noisy miss."""
    observed = []
    for _ in range(attempts):
        baseline, candidate = _interleaved_best(*override_sets)
        if candidate >= bar * baseline:
            return
        observed.append((candidate, baseline, candidate / baseline))
    raise AssertionError("below %.2fx in all %d attempts: %r"
                         % (bar, attempts, observed))


class TestBackpressureOverhead:
    def test_disabled_admission_is_free(self):
        """No watermarks vs no watermarks: the write path's admission
        cost is one is-None test per write, and the deadline check is
        one is-None test per statement — a pure noise guard."""
        _guard(0.97, dict(), dict())

    def test_armed_idle_admission_overhead_bounded(self):
        """Watermarks armed far above any reachable backlog must hold
        ≥0.90× the disabled floor: one lock-free backlog probe and one
        compare per write."""
        _guard(0.90, dict(), _IDLE_ARMED)
