"""Figure 7 — transaction throughput vs update threads per contention.

Paper shape: L-Store scales best; In-place Update + History loses
throughput to page-latch contention as threads grow; Delta + Blocking
Merge flattens because every merge drains all active transactions, and
drains become more frequent with more writers. Under the Python GIL the
absolute curves cannot rise with threads, so the reproduced shape is
*throughput retention*: L-Store keeps (close to) its single-thread
throughput while the baselines degrade — see EXPERIMENTS.md.
"""

import pytest

from repro.bench.experiments import fig7_scalability

from conftest import DURATION, SCALE, THREAD_COUNTS, record_result


@pytest.mark.parametrize("contention", ["low", "medium", "high"])
def test_fig7(benchmark, contention):
    result = benchmark.pedantic(
        fig7_scalability,
        kwargs=dict(contention=contention, thread_counts=THREAD_COUNTS,
                    duration=DURATION, scale=SCALE),
        rounds=1, iterations=1)
    record_result(benchmark, result)
    # Structural sanity: every engine produced a full series.
    for engine in ("L-Store", "In-place Update + History",
                   "Delta + Blocking Merge"):
        series = result.series("engine", "txn_per_sec", engine)
        assert len(series) == len(THREAD_COUNTS)
        assert all(value > 0 for value in series)
