"""Range SUMs — ordered primary index + batched reads vs hash walk.

Repo-specific regression guard (not a paper table): a k-key range SUM
must cost O(log N + k), so the ordered+batched configuration has to
beat the hash-walk configuration — which re-scans the entire primary
index per query — by a wide margin at small ranges.
"""

from repro.bench.experiments import sums_range_queries

from conftest import SCALE, record_result


def test_sums_range(benchmark):
    result = benchmark.pedantic(
        sums_range_queries,
        kwargs=dict(range_spans=(16, 256, 2048), queries=100, scale=SCALE),
        rounds=1, iterations=1)
    record_result(benchmark, result)
    ordered = result.series("index", "queries_per_sec", "ordered+batched")
    hash_walk = result.series("index", "queries_per_sec", "hash-walk")
    assert len(ordered) == len(hash_walk) == 3
    assert all(value > 0 for value in ordered + hash_walk)
    # The acceptance bar: >= 2x on the smallest range, where the O(N)
    # index walk dominates (measured gap is ~5-7x; 2x absorbs CI noise).
    assert ordered[0] > hash_walk[0] * 2
