"""Observability overhead guards (ISSUE 7 acceptance bar).

The obs registry's contract is *zero-cost when disabled, cheap when
on*: a disabled registry hands out shared null instruments whose
``add``/``observe`` are immediate returns, and every hot-path timer is
gated on ``instrument.enabled`` so ``perf_counter`` is never called
with metrics off. These guards pin that contract to numbers on the
fig7-style single-writer update loop (the hottest instrumented path —
every update crosses the table counters, the commit-latency gate, and
the manager counters):

* **obs off**: ≥ 0.97× the pre-obs floor. With ``obs_metrics=False``
  the write path runs the same null-instrument calls the floor run
  does, so this bar is a pure noise guard — it fails only if the
  disabled path grows real work (e.g. an ungated ``perf_counter``).
* **obs on (default)**: ≥ 0.90× the floor. Striped counters and the
  gated commit-latency histogram are allowed single-digit-percent
  cost, nothing more.

Best-of-N on both sides (same discipline as ``test_write_path``)
absorbs shared-CI scheduler noise.
"""

from repro.bench.experiments import _spec_for, make_engine
from repro.bench.harness import load_engine, run_write_workload

from conftest import DURATION, SCALE

_REPEATS = 3


def _interleaved_best(*override_sets) -> list[float]:
    """Best-of-N update throughput per config, rounds interleaved.

    One engine per config, loaded once; the timed rounds alternate
    between the engines so a background hiccup or thermal drift hits
    every side equally instead of biasing whichever ran last.
    """
    spec = _spec_for("low", SCALE)
    engines = [make_engine("lstore", spec.num_columns, **overrides)
               for overrides in override_sets]
    try:
        for engine in engines:
            load_engine(engine, spec)
        best = [0.0] * len(engines)
        for _ in range(_REPEATS):
            for index, engine in enumerate(engines):
                run = run_write_workload(engine, spec, kind="update",
                                         update_threads=1,
                                         duration=DURATION)
                best[index] = max(best[index], run.txn_per_sec)
        return best
    finally:
        for engine in engines:
            engine.close()


def _guard(bar: float, *override_sets, attempts: int = 3) -> None:
    """Assert side 2 holds ``bar``× side 1, retrying on a noisy miss.

    Single-attempt ratios between *identical* configs swing ±15% on a
    shared CI box even with interleaved rounds, so one miss is noise;
    a real regression misses every attempt. Pass on the first attempt
    that clears the bar, fail with the worst observation otherwise.
    """
    observed = []
    for _ in range(attempts):
        baseline, candidate = _interleaved_best(*override_sets)
        if candidate >= bar * baseline:
            return
        observed.append((candidate, baseline, candidate / baseline))
    raise AssertionError("below %.2fx in all %d attempts: %r"
                         % (bar, attempts, observed))


class TestObsOverhead:
    def test_disabled_obs_is_free(self):
        """obs off must hold ≥0.97× the pre-obs floor (noise guard).

        Both sides run the identical null-instrument path; a real
        disabled-path regression (ungated timer, live instrument
        handed out) would need to appear on one side only to fail
        this, so it is a measurement-stability bound for the bar
        below more than a functional guard.
        """
        _guard(0.97, dict(obs_metrics=False), dict(obs_metrics=False))

    def test_enabled_obs_overhead_bounded(self):
        """Default metrics-on must hold ≥0.90× the disabled floor."""
        _guard(0.90, dict(obs_metrics=False), dict())  # obs on default
