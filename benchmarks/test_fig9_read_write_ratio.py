"""Figure 9 — throughput vs percentage of reads in short transactions.

Paper shape: every engine speeds up as the workload becomes more
read-heavy ("contention is a function of writes"); the inter-engine
gaps are smallest at 100% reads, where IUH still pays its per-page
read latches.
"""

import pytest

from repro.bench.experiments import fig9_read_write_ratio

from conftest import DURATION, SCALE, record_result

RATIOS = (0, 20, 50, 80, 100)


@pytest.mark.parametrize("contention", ["low", "medium"])
def test_fig9(benchmark, contention):
    result = benchmark.pedantic(
        fig9_read_write_ratio,
        kwargs=dict(contention=contention, read_percentages=RATIOS,
                    threads=4, duration=DURATION, scale=SCALE),
        rounds=1, iterations=1)
    record_result(benchmark, result)
    for engine in ("L-Store", "In-place Update + History",
                   "Delta + Blocking Merge"):
        series = result.series("engine", "txn_per_sec", engine)
        assert len(series) == len(RATIOS)
        assert all(value > 0 for value in series)
    # The paper's trend — throughput rises with the read share — is
    # asserted for L-Store (the system under test); the baseline curves
    # are reported to EXPERIMENTS.md but not asserted, because short
    # timed windows on shared machines swing individual points.
    lstore = result.series("engine", "txn_per_sec", "L-Store")
    assert max(lstore[-2:]) > lstore[0] * 0.8
