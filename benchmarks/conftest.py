"""Shared scale parameters for the paper-experiment benchmarks.

Every benchmark regenerates one table/figure of the paper's Section 6
at a laptop/CI scale. ``SCALE`` divides the paper's table sizes
(10M rows / SCALE); ``DURATION`` bounds each timed throughput run.
Raise the scale via the environment for a longer, higher-fidelity run::

    LSTORE_BENCH_SCALE=200 LSTORE_BENCH_DURATION=2.0 \
        pytest benchmarks/ --benchmark-only
"""

import os
import sys

import pytest

#: Divide the paper's 10M-row table by this factor (default: 10K rows).
SCALE = int(os.environ.get("LSTORE_BENCH_SCALE", "1000"))
#: Seconds per timed throughput run.
DURATION = float(os.environ.get("LSTORE_BENCH_DURATION", "0.4"))
#: Update-thread counts swept by the scalability benchmarks.
THREAD_COUNTS = tuple(
    int(n) for n in os.environ.get("LSTORE_BENCH_THREADS",
                                   "1,2,4,8").split(","))

# Reduce GIL convoy effects so multi-threaded throughput numbers are
# less noisy (the default 5 ms switch interval starves short critical
# sections under contention).
sys.setswitchinterval(0.001)


@pytest.fixture(scope="session")
def bench_scale() -> int:
    """Scale divisor for the paper's table sizes."""
    return SCALE


@pytest.fixture(scope="session")
def bench_duration() -> float:
    """Seconds per timed run."""
    return DURATION


def record_result(benchmark, result) -> None:
    """Attach an ExperimentResult's rows to the benchmark report."""
    benchmark.extra_info["experiment"] = result.experiment_id
    benchmark.extra_info["rows"] = [
        dict(zip(result.headers, row)) for row in result.rows
    ]
    print()
    result.print()
