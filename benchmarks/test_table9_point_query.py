"""Table 9 — point-query throughput vs percentage of columns fetched.

Paper: the columnar layout degrades gracefully as more columns are
fetched (−33% at 100% of columns), while the row layout stays flat —
it always materialises the whole row anyway.
"""

import pytest

from repro.bench.experiments import table9_point_queries

from conftest import SCALE, record_result

FRACTIONS = (0.1, 0.2, 0.4, 0.8, 1.0)


def test_table9(benchmark):
    result = benchmark.pedantic(
        table9_point_queries,
        kwargs=dict(column_fractions=FRACTIONS, transactions=300,
                    scale=SCALE),
        rounds=1, iterations=1)
    record_result(benchmark, result)
    column_series = result.series("layout", "txn_per_sec",
                                  "L-Store (Column)")
    row_series = result.series("layout", "txn_per_sec", "L-Store (Row)")
    assert len(column_series) == len(FRACTIONS)
    assert all(value > 0 for value in column_series + row_series)
    # Paper shape: the columnar layout is slower when fetching all
    # columns than when fetching few (the paper measures a 33% drop).
    assert column_series[-1] < max(column_series)
