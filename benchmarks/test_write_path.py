"""OLTP write path — regression guards (not a paper table).

Three bars, all against this repo's own history:

* **Flat-cell append floor**: update throughput with the flat append
  path (``flat_appends=True``, the default — fused snapshot+update
  allocation, parallel column/value cell writes, int-only Schema
  Encoding math) must beat the dict-of-cells oracle path by a
  meaningful margin (measured ~1.5×+ single-threaded at bench scale;
  the 1.1× bar absorbs CI noise without letting the flat path decay
  back to parity).

* **No write-side serialisation collapse** (the PR-4 fig7 2→4 thread
  dip): 4 writer threads must not fall below the single-writer
  update-only figure. The PR-4 dip traced to global serialisation
  points on the write path — one ``Table._stat_lock`` taken by every
  insert/update/delete, plus two transaction-manager lock hops per
  commit; striped per-thread statistics counters and the fused
  single-hop ``commit_fast`` removed them. Under the GIL genuine
  scaling is impossible, so the bar is *retention*, not speedup
  (0.6× floor: a collapse-only guard — mild dips drown in shared-CI
  scheduler noise, which the committed BENCH trajectories track).

* **Group commit**: with the WAL enabled, concurrent committers must
  share fsyncs (``stat_flushes`` strictly below the commit count) —
  the leader/follower path, exercised here at bench scale on a real
  file.
"""

import threading

from repro.bench.experiments import _spec_for, make_engine
from repro.bench.harness import load_engine, run_write_workload
from repro.core.config import EngineConfig
from repro.core.db import Database
from repro.txn.transaction import Transaction

from conftest import DURATION, SCALE


def _update_throughput(flat: bool) -> float:
    spec = _spec_for("low", SCALE)
    engine = make_engine("lstore", spec.num_columns, flat_appends=flat)
    try:
        load_engine(engine, spec)
        best = 0.0
        for _ in range(3):
            run = run_write_workload(engine, spec, kind="update",
                                     update_threads=1, duration=DURATION)
            best = max(best, run.txn_per_sec)
        return best
    finally:
        engine.close()


class TestFlatAppendFloor:
    def test_flat_appends_beat_dict_oracle(self):
        # Paired interleaved trials: a flat path decayed to parity
        # cannot reach the floor in ANY pair, while a one-sided
        # scheduler spike on a shared box routinely sinks a single
        # paired draw. Early exit keeps the common case one pair.
        best = 0.0
        for _ in range(3):
            dict_path = _update_throughput(flat=False)
            flat_path = _update_throughput(flat=True)
            best = max(best, flat_path / dict_path)
            if best >= 1.1:
                break
        assert best >= 1.1, best


class TestWriteScalingRetention:
    def test_no_multi_writer_collapse(self):
        """4 writer threads must retain the 1-writer update throughput.

        The anti-convoy guard for the PR-4 fig7 2→4 thread dip: a
        global serialisation point on the write path (the old per-table
        stat mutex, double manager-lock commits) shows up as multi-
        writer throughput *below* the single-writer figure. Update-only
        transactions isolate the write path (no scan-thread GIL
        interplay); best-of-3 on each side and a 0.6 floor absorb the
        scheduler noise of shared CI machines (mild dips drown in that
        noise; the committed BENCH trajectories track those) — a
        reintroduced global serialisation point measures well below
        the floor.
        """
        spec = _spec_for("low", SCALE)
        engine = make_engine("lstore", spec.num_columns)
        try:
            load_engine(engine, spec)
            single = max(
                run_write_workload(engine, spec, kind="update",
                                   update_threads=1,
                                   duration=DURATION).txn_per_sec
                for _ in range(3))
            quad = max(
                run_write_workload(engine, spec, kind="update",
                                   update_threads=4,
                                   duration=DURATION).txn_per_sec
                for _ in range(3))
        finally:
            engine.close()
        assert quad >= 0.6 * single, (quad, single)


class TestGroupCommitAtScale:
    def test_concurrent_commits_share_fsyncs(self, tmp_path):
        config = EngineConfig(
            records_per_page=256, records_per_tail_page=256,
            update_range_size=512, insert_range_size=512,
            merge_threshold=256, background_merge=False,
            wal_enabled=True, data_dir=str(tmp_path))
        db = Database(config)
        table = db.create_table("bench", 4)
        for key in range(64):
            table.insert([key, 0, 0, 0])
        threads = 8
        barrier = threading.Barrier(threads)
        committed = [0] * threads

        def worker(thread_id: int) -> None:
            barrier.wait()
            for i in range(40):
                txn = Transaction(db.txn_manager)
                try:
                    txn.update(table, thread_id * 8, {1: i})
                except Exception:
                    continue
                if txn.commit():
                    committed[thread_id] += 1

        workers = [threading.Thread(target=worker, args=(i,))
                   for i in range(threads)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        total = sum(committed)
        assert total > 0
        assert db._wal.stat_flushes < total, \
            (db._wal.stat_flushes, total)
        db.close()
