"""Lockset-witness overhead guard (ISSUE 9 acceptance bar).

``make_lock``'s contract is *zero-cost when disabled*: with
``REPRO_LOCK_CHECK`` unset (the default, and how every benchmark and
production run executes) it returns a plain ``threading.Lock`` — not a
wrapper — so the engine's hot paths carry no witness overhead at all.
The instrumented ``CheckedLock`` proxy exists only in the dedicated
``REPRO_LOCK_CHECK=1`` CI leg, where its cost is accepted.

Two guards pin the contract:

* a structural one — the factory really does hand out the bare stdlib
  lock type when disabled (any wrapper, however thin, fails it);
* a throughput one on the fig7-style single-writer update loop —
  two *identical* default configs must stay within the same 0.97×
  noise band ``test_obs_overhead`` uses, which fails only if the
  disabled path grows real per-acquisition work.
"""

import threading

import pytest

from repro.analysis import locks
from repro.analysis.locks import CheckedLock, make_lock

from test_obs_overhead import _guard

_witness_on = pytest.mark.skipif(
    locks.ENABLED,
    reason="REPRO_LOCK_CHECK=1: instrumented locks are expected to cost")


class TestDisabledFactory:
    @_witness_on
    def test_factory_returns_bare_stdlib_lock(self):
        lock = make_lock("page")
        assert type(lock) is type(threading.Lock())

    def test_enabled_factory_returns_checked_proxy(self):
        if not locks.ENABLED:
            pytest.skip("witness disabled in this run")
        assert isinstance(make_lock("page"), CheckedLock)


class TestDisabledLockCheckOverhead:
    @_witness_on
    def test_disabled_lock_check_is_free(self):
        """Two identical default engines must match within noise: the
        default build contains no witness code on the write path."""
        _guard(0.97, dict(), dict())
