"""Vectorised scan pipeline — regression guards (not a paper table).

Two bars, both against this repo's own history:

* **Span-16 framing overhead** (the PR-2 known cost): a 16-key
  ``Query.sum`` through the executor must stay within ~5% of the PR-1
  direct loop (ordered index → ``read_latest_many`` → sum over dicts).
  The keyed dict-free fast path (``read_latest_values`` +
  ``fold_values``) closes the documented 20–30% gap — measured ~25%
  *faster* than the direct loop at merge time, so the 0.95 bar leaves
  CI-noise headroom without letting the framing overhead creep back.

* **Column-slice speedup**: on a clean merged table the vectorised
  plane must beat the per-record row plane by a wide margin on a
  full-column SUM (measured ~11×; 3× absorbs CI noise) and a filtered
  group-by (measured ~5.5×; 2× bar) — the Table 8 bandwidth advantage
  the scan path is supposed to realise.
"""

import random
import time

from repro.bench.experiments import _spec_for, make_engine
from repro.bench.harness import load_engine
from repro.core.query import Query
from repro.core.table import DELETED
from repro.core.types import is_null
from repro.exec.executor import execute_scan
from repro.exec.operators import ColumnSum, GroupBy, ge

from conftest import SCALE

SPAN = 16
QUERIES = 500


def _direct_sum(table, low, high, column):
    """The PR-1 loop ``Query.sum`` replaced: index + batched dict reads."""
    rids = [rid for _, rid in table.index.primary.range_items(low, high)]
    total = 0
    results = table.read_latest_many(rids, (column,))
    get = results.get
    for rid in rids:
        values = get(rid)
        if values is None or values is DELETED:
            continue
        value = values[column]
        if not is_null(value):
            total += value
    return total


def _best_of(repeats, fn, work):
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        for item in work:
            fn(item)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return len(work) / best


def test_span16_framing_overhead_closed(benchmark):
    spec = _spec_for("low", SCALE)
    engine = make_engine("lstore", spec.num_columns)
    try:
        load_engine(engine, spec)
        table = engine.table
        query = Query(table)
        rng = random.Random(spec.seed)
        lows = [rng.randrange(spec.table_size - SPAN + 1)
                for _ in range(QUERIES)]
        for low in lows[:50]:  # agreement before speed
            assert query.sum(low, low + SPAN - 1, 3) \
                == _direct_sum(table, low, low + SPAN - 1, 3)

        def measure():
            executor_qps = _best_of(
                3, lambda low: query.sum(low, low + SPAN - 1, 3), lows)
            direct_qps = _best_of(
                3, lambda low: _direct_sum(table, low, low + SPAN - 1, 3),
                lows)
            return executor_qps, direct_qps

        executor_qps, direct_qps = benchmark.pedantic(
            measure, rounds=1, iterations=1)
        benchmark.extra_info["executor_qps"] = round(executor_qps, 1)
        benchmark.extra_info["direct_qps"] = round(direct_qps, 1)
        print("\nspan-%d Query.sum: executor %.0f q/s vs direct %.0f q/s "
              "(%.2fx)" % (SPAN, executor_qps, direct_qps,
                           executor_qps / direct_qps))
        # The acceptance bar: within ~5% of the direct loop (the PR-2
        # framing overhead was 20-30%, so 0.95 cleanly separates
        # "closed" from "regressed" while absorbing CI noise).
        assert executor_qps >= direct_qps * 0.95
    finally:
        engine.close()


def test_column_slice_plane_speedup(benchmark):
    spec = _spec_for("low", SCALE)
    scans_per_sec = {}
    group_scans_per_sec = {}

    def measure():
        for vectorized in (True, False):
            engine = make_engine("lstore", spec.num_columns,
                                 vectorized_scans=vectorized)
            try:
                load_engine(engine, spec)
                table = engine.table
                assert table.scan_sum(3) == execute_scan(
                    table, ColumnSum(3),
                    executor=table.scan_executor)  # warm + agree
                scans_per_sec[vectorized] = _best_of(
                    5, lambda _: table.scan_sum(3), [None])
                group_scans_per_sec[vectorized] = _best_of(
                    5, lambda _: execute_scan(
                        table, GroupBy(1, lambda: ColumnSum(3)),
                        filters=(ge(2, 500),)), [None])
            finally:
                engine.close()

    benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["sum_scans_per_sec"] = {
        "vectorized": round(scans_per_sec[True], 1),
        "row": round(scans_per_sec[False], 1),
    }
    benchmark.extra_info["group_scans_per_sec"] = {
        "vectorized": round(group_scans_per_sec[True], 1),
        "row": round(group_scans_per_sec[False], 1),
    }
    print("\nfull-column SUM %.0f vs %.0f scans/s (%.1fx), "
          "filtered group-by %.0f vs %.0f scans/s (%.1fx)"
          % (scans_per_sec[True], scans_per_sec[False],
             scans_per_sec[True] / scans_per_sec[False],
             group_scans_per_sec[True], group_scans_per_sec[False],
             group_scans_per_sec[True] / group_scans_per_sec[False]))
    # Measured ~11x / ~5.5x at SCALE=1000; the bars absorb CI noise.
    assert scans_per_sec[True] > scans_per_sec[False] * 3
    assert group_scans_per_sec[True] > group_scans_per_sec[False] * 2
