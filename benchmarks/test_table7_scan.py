"""Table 7 — single-thread scan seconds under concurrent updaters.

Paper: L-Store 0.24 s < In-place Update + History 0.28 s < Delta +
Blocking Merge 0.38 s (16 update threads, low contention). The paper's
gaps are modest; the reproduced shape to check is that all engines stay
within a small factor and that the merge keeps L-Store's tail backlog
bounded (otherwise its scans would degrade unboundedly).
"""

import pytest

from repro.bench.experiments import table7_scan_performance

from conftest import SCALE, record_result


def test_table7(benchmark):
    result = benchmark.pedantic(
        table7_scan_performance,
        kwargs=dict(update_threads=4, scale=SCALE, scan_repeats=3),
        rounds=1, iterations=1)
    record_result(benchmark, result)
    seconds = dict(zip(result.column("engine"),
                       result.column("scan_seconds")))
    assert len(seconds) == 3
    assert all(value > 0 for value in seconds.values())
