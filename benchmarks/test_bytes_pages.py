"""Byte-buffer storage core — regression guards (not a paper table).

Three bars, all against this repo's own history:

* **Append-throughput floor**: the byte-buffer page layout
  (``bytes_pages=True``, the default — ``array('q')`` cells, byte-map
  write-once checks, explicit-lock slot stores) must not lose to the
  object-list oracle on the insert/append path. The bar is parity
  (1.0×): the buffer layout pays bitmap/byte-map bookkeeping a plain
  Python list never does, and this guard pins the hot-path work
  (inlined ``write_slot``, no read-modify-write, clean-page peeks)
  that claws that overhead back. Interleaved best-of-N absorbs the
  shared-CI noise that a single timed pair cannot.

* **Zero-copy analytics view**: ``as_numpy`` on a byte-buffer page
  must be a ``np.frombuffer`` view aliasing the live slot buffer —
  the scan planes read base pages without a marshalling copy. Guarded
  with ``np.shares_memory`` so a future "optimisation" that silently
  reintroduces a copy fails loudly.

* **Batched merge drain**: with ``merge_batch_ranges > 1`` the merge
  engine drains queued range tasks in batches that share one
  queue-lock and one processing-lock acquisition. On a deep backlog
  of already-merged ranges (pure dispatch, no consolidation work) the
  batched drain must beat the single-range drain by ≥ 1.2×
  (measured ~1.37× at batch 8). Notification happens outside the
  timed section — the guard times the drain, not the enqueue.
"""

from time import perf_counter

import numpy as np

from repro.core.config import EngineConfig
from repro.core.db import Database
from repro.core.page import BytesPage
from repro.core.types import PageKind

APPEND_ROWS = 4000
NUM_COLUMNS = 5
APPEND_MIN_TRIALS = 5
APPEND_MAX_TRIALS = 15


def _append_seconds(bytes_pages: bool) -> float:
    """Seconds to insert APPEND_ROWS rows into a fresh engine."""
    db = Database(EngineConfig(background_merge=False,
                               bytes_pages=bytes_pages))
    try:
        table = db.create_table("bench", NUM_COLUMNS)
        rows = [[key] + [key] * (NUM_COLUMNS - 1)
                for key in range(APPEND_ROWS)]
        start = perf_counter()
        for row in rows:
            table.insert(row)
        return perf_counter() - start
    finally:
        db.close()


class TestAppendThroughputFloor:
    def test_bytes_pages_at_least_match_object_path(self):
        # Interleave the two layouts and keep each side's best run:
        # min-of-N is stable against the one-sided scheduler spikes a
        # shared box injects, and both layouts get the same treatment.
        # The true margin is a few percent, so keep adding paired
        # trials (up to a cap) until the mins separate cleanly.
        bytes_best = object_best = float("inf")
        for trial in range(APPEND_MAX_TRIALS):
            bytes_best = min(bytes_best, _append_seconds(True))
            object_best = min(object_best, _append_seconds(False))
            if trial + 1 >= APPEND_MIN_TRIALS \
                    and bytes_best <= object_best:
                break
        assert bytes_best <= object_best, (bytes_best, object_best)


class TestZeroCopyAnalyticsView:
    def test_as_numpy_aliases_the_live_buffer(self):
        page = BytesPage(1, PageKind.BASE, 64, column=0)
        page.fill(list(range(64)))
        view = page.as_numpy()
        assert view is not None
        raw = np.frombuffer(page._buf, dtype=np.int64)
        assert np.shares_memory(view, raw)
        assert not view.flags.writeable  # view, not a private copy
        assert int(view.sum()) == sum(range(64))


MERGE_ROWS = 2048
MERGE_ROUNDS = 30
MERGE_TRIALS = 3


def _merge_drain_seconds(batch_ranges: int) -> float:
    """Total drain time over MERGE_ROUNDS re-notification rounds.

    The backlog is all of the table's update ranges, fully merged up
    front, so every task is pure dispatch — exactly the per-task
    overhead (queue lock, processing lock, span bookkeeping) that
    batching amortises.
    """
    db = Database(EngineConfig(
        records_per_page=8, records_per_tail_page=8,
        update_range_size=16, merge_threshold=8, insert_range_size=16,
        background_merge=False, merge_batch_ranges=batch_ranges))
    try:
        db.create_table("bench", 3)
        query = db.query("bench")
        for key in range(MERGE_ROWS):
            query.insert(key, 0, 0)
        for key in range(MERGE_ROWS):
            query.update(key, None, 1, None)
        db.run_merges()  # consolidate: later rounds are dispatch-only
        table = db.get_table("bench")
        engine = db.merge_engine
        ranges = table.sorted_ranges()
        total = 0.0
        for _ in range(MERGE_ROUNDS):
            for update_range in ranges:
                engine.notifier(table, update_range.range_id, "update")
            start = perf_counter()
            engine.run_pending()
            total += perf_counter() - start
        return total
    finally:
        db.close()


class TestBatchedMergeDrain:
    def test_batched_drain_beats_single_range(self):
        batched = single = float("inf")
        for _ in range(MERGE_TRIALS):
            batched = min(batched, _merge_drain_seconds(8))
            single = min(single, _merge_drain_seconds(1))
        assert batched * 1.2 <= single, (batched, single)
