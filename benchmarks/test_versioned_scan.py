"""Version-horizon snapshot scans — regression guards (not a paper table).

Two bars, both against this repo's own history:

* **Snapshot-scan fast path restored** (the PR-3 regression): a
  full-table ``as_of`` SUM on a merged, lightly-churned table must run
  within 3× of the latest-visibility vectorised SUM. Before the
  version-horizon plane this was a per-record ``assemble_version``
  walk — roughly an order of magnitude off the vectorised plane.

* **Churn-heavy degradation** (the dirty-fraction threshold): with a
  heavy unmerged backlog the planner must degrade vectorised
  partitions to the row plane instead of paying slice stitching *plus*
  a near-total per-record patch walk, so churn-heavy scans are no
  slower than the row plane (the PR-2 behaviour).
"""

import time

from repro.bench.experiments import _spec_for, make_engine
from repro.bench.harness import apply_fixed_update_backlog, load_engine
from repro.core.table import DELETED
from repro.core.types import is_null
from repro.core.version import visible_as_of
from repro.exec.executor import execute_scan
from repro.exec.operators import ColumnSum, GroupBy, ge

from conftest import SCALE


def _scans_per_sec(repeats, fn):
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return 1.0 / best


def _oracle_as_of(table, column, as_of):
    """Per-record assemble_version walk (the always-correct answer)."""
    predicate = visible_as_of(as_of)
    total = 0
    for update_range in table.sorted_ranges():
        for offset in range(update_range.size):
            if not table.base_record_exists(update_range, offset):
                continue
            values = table.assemble_version(
                update_range.start_rid + offset, (column,), predicate)
            if values is None or values is DELETED \
                    or is_null(values[column]):
                continue
            total += values[column]
    return total


def test_as_of_sum_within_3x_of_latest_vectorized(benchmark):
    spec = _spec_for("low", SCALE)
    engine = make_engine("lstore", spec.num_columns)
    try:
        load_engine(engine, spec)
        table = engine.table
        pre_churn = table.clock.now()
        # Light churn: ~2% of the table updated after the snapshot.
        apply_fixed_update_backlog(engine, spec,
                                   max(spec.table_size // 50, 10))
        post_churn = table.clock.now()
        for as_of in (pre_churn, post_churn):  # agreement before speed
            assert table.scan_sum(3, as_of=as_of) == \
                _oracle_as_of(table, 3, as_of)

        def measure():
            return (
                _scans_per_sec(5, lambda: table.scan_sum(3)),
                _scans_per_sec(5, lambda: table.scan_sum(
                    3, as_of=pre_churn)),
                _scans_per_sec(5, lambda: table.scan_sum(
                    3, as_of=post_churn)),
            )

        latest_qps, frozen_qps, settled_qps = benchmark.pedantic(
            measure, rounds=1, iterations=1)
        benchmark.extra_info["latest_qps"] = round(latest_qps, 1)
        benchmark.extra_info["as_of_pre_churn_qps"] = round(frozen_qps, 1)
        benchmark.extra_info["as_of_post_churn_qps"] = round(settled_qps, 1)
        print("\nfull-table SUM: latest %.0f scans/s, as_of(pre-churn) "
              "%.0f (%.1fx off), as_of(post-churn) %.0f (%.1fx off)"
              % (latest_qps, frozen_qps, latest_qps / frozen_qps,
                 settled_qps, latest_qps / settled_qps))
        # Acceptance bar: within 3× of the latest vectorised SUM (the
        # pre-horizon per-record walk was ~an order of magnitude off).
        assert frozen_qps * 3 > latest_qps
        assert settled_qps * 3 > latest_qps
    finally:
        engine.close()


def test_churn_heavy_scans_no_slower_than_row_plane(benchmark):
    spec = _spec_for("low", SCALE)
    sum_qps = {}
    group_qps = {}

    def measure():
        for vectorized in (True, False):
            engine = make_engine("lstore", spec.num_columns,
                                 vectorized_scans=vectorized)
            try:
                load_engine(engine, spec)
                # Near-total unmerged churn (~99% distinct offsets
                # dirty): above the dirty-fraction threshold in every
                # range (no merge runs) — the regime where slices +
                # patch walk measured ~2× slower than the row plane.
                apply_fixed_update_backlog(engine, spec,
                                           4 * spec.table_size)
                table = engine.table
                group_by = lambda: execute_scan(  # noqa: E731
                    table, GroupBy(1, lambda: ColumnSum(3)),
                    filters=(ge(2, 500),))
                group_by()  # warm caches
                sum_qps[vectorized] = _scans_per_sec(
                    5, lambda: table.scan_sum(3))
                group_qps[vectorized] = _scans_per_sec(5, group_by)
            finally:
                engine.close()

    benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["sum_scans_per_sec"] = {
        "vectorized": round(sum_qps[True], 1),
        "row": round(sum_qps[False], 1),
    }
    benchmark.extra_info["group_scans_per_sec"] = {
        "vectorized": round(group_qps[True], 1),
        "row": round(group_qps[False], 1),
    }
    print("\nchurn-heavy SUM %.0f vs %.0f scans/s (%.2fx), "
          "filtered group-by %.0f vs %.0f scans/s (%.2fx)"
          % (sum_qps[True], sum_qps[False],
             sum_qps[True] / sum_qps[False],
             group_qps[True], group_qps[False],
             group_qps[True] / group_qps[False]))
    # The threshold must keep churn-heavy scans at row-plane (PR-2)
    # speed; 0.7 absorbs CI noise without letting the pre-threshold
    # "slices + near-total walk" behaviour back in.
    assert sum_qps[True] > sum_qps[False] * 0.7
    assert group_qps[True] > group_qps[False] * 0.7
