"""Figure 10 — mixed OLTP + OLAP: thread split between updates and scans.

Paper shape: both workload classes make progress simultaneously;
L-Store's contention-free merge keeps scan throughput healthy without
stalling writers, whereas DBM's blocking merges hit both sides.
"""

import pytest

from repro.bench.experiments import fig10_mixed_workload

from conftest import DURATION, SCALE, record_result

TOTAL_THREADS = 5
SCAN_COUNTS = (1, 2, 4)


@pytest.mark.parametrize("contention", ["low", "medium"])
def test_fig10(benchmark, contention):
    result = benchmark.pedantic(
        fig10_mixed_workload,
        kwargs=dict(contention=contention, total_threads=TOTAL_THREADS,
                    scan_thread_counts=SCAN_COUNTS, duration=DURATION,
                    scale=SCALE),
        rounds=1, iterations=1)
    record_result(benchmark, result)
    for engine in ("L-Store", "In-place Update + History",
                   "Delta + Blocking Merge"):
        txn_series = result.series("engine", "txn_per_sec", engine)
        scan_series = result.series("engine", "scans_per_sec", engine)
        assert len(txn_series) == len(SCAN_COUNTS)
        # Both workload classes progressed at every split.
        assert all(value > 0 for value in txn_series)
        assert all(value > 0 for value in scan_series)
