"""Table 8 — L-Store (Column) vs L-Store (Row) scan performance.

Paper: the columnar layout wins 4.56× with no concurrent updates and
2.75× with 16 update threads (NumPy page views vs per-row Python reads
reproduce the bandwidth gap here).
"""

import pytest

from repro.bench.experiments import table8_row_vs_column

from conftest import SCALE, record_result


def test_table8(benchmark):
    result = benchmark.pedantic(
        table8_row_vs_column,
        kwargs=dict(update_threads=4, scale=SCALE, scan_repeats=3),
        rounds=1, iterations=1)
    record_result(benchmark, result)
    seconds = {(row[0], row[1]): row[2] for row in result.rows}
    # The paper's headline shape: columnar scans beat row scans, with
    # and without concurrent updates.
    assert seconds[("L-Store (Column)", "without")] \
        < seconds[("L-Store (Row)", "without")]
    assert seconds[("L-Store (Column)", "with")] \
        < seconds[("L-Store (Row)", "with")]
