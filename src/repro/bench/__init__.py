"""Micro-benchmark substrate for the Section 6 evaluation."""

from .experiments import ALL_EXPERIMENTS, make_engine
from .harness import (ThroughputResult, execute_transaction, load_engine,
                      measure_scan_seconds, run_fixed_transactions,
                      run_mixed_workload, run_scan_under_updates)
from .reporting import ExperimentResult
from .workload import (TransactionGenerator, WorkloadSpec, high_contention,
                       initial_rows, low_contention, medium_contention)

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "ThroughputResult",
    "TransactionGenerator",
    "WorkloadSpec",
    "execute_transaction",
    "high_contention",
    "initial_rows",
    "load_engine",
    "low_contention",
    "make_engine",
    "measure_scan_seconds",
    "medium_contention",
    "run_fixed_transactions",
    "run_mixed_workload",
    "run_scan_under_updates",
]
