"""Benchmark harness: thread orchestration and throughput measurement.

Mirrors the paper's measurement setup (Section 6.1): N update-worker
threads each running a stream of short transactions, optional long
read-only scan threads, and the engine's merge thread running in the
background. Runs are time-boxed; results report committed transactions
per second per workload class.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import KeyNotFoundError, TransactionAborted
from .workload import (Operation, TransactionGenerator, WorkloadSpec,
                       initial_rows)
from ..baselines.common import Engine


@dataclass
class ThroughputResult:
    """Outcome of one timed run."""

    engine: str
    update_threads: int
    scan_threads: int
    duration: float
    committed: int = 0
    aborted: int = 0
    scans: int = 0
    scan_seconds_total: float = 0.0

    @property
    def txn_per_sec(self) -> float:
        """Committed short transactions per second."""
        return self.committed / self.duration if self.duration else 0.0

    @property
    def scans_per_sec(self) -> float:
        """Completed read-only scans per second."""
        return self.scans / self.duration if self.duration else 0.0

    @property
    def scan_latency(self) -> float:
        """Mean seconds per scan."""
        return self.scan_seconds_total / self.scans if self.scans else 0.0


def execute_transaction(engine: Engine,
                        operations: Sequence[Operation]) -> bool:
    """Run one generated transaction; True when it committed."""
    txn = engine.begin()
    try:
        for op in operations:
            if op[0] == "r":
                txn.read(op[1], op[2])
            else:
                txn.update(op[1], op[2])
    except TransactionAborted:
        txn.abort()
        return False
    except KeyNotFoundError:
        txn.abort()
        return False
    return txn.commit()


def load_engine(engine: Engine, spec: WorkloadSpec) -> None:
    """Populate *engine* with the initial table (not timed)."""
    engine.load(initial_rows(spec))


def run_mixed_workload(engine: Engine, spec: WorkloadSpec, *,
                       update_threads: int, scan_threads: int = 0,
                       duration: float = 1.0,
                       background_merge: bool = True) -> ThroughputResult:
    """Time-boxed mixed OLTP + OLAP run against a pre-loaded engine."""
    stop = threading.Event()
    result = ThroughputResult(engine=engine.name,
                              update_threads=update_threads,
                              scan_threads=scan_threads, duration=duration)
    counters_lock = threading.Lock()

    def update_loop(thread_id: int) -> None:
        generator = TransactionGenerator(spec, thread_id)
        committed = aborted = 0
        while not stop.is_set():
            if execute_transaction(engine, generator.next_transaction()):
                committed += 1
            else:
                aborted += 1
        with counters_lock:
            result.committed += committed
            result.aborted += aborted

    def scan_loop(thread_id: int) -> None:
        generator = TransactionGenerator(spec, 10_000 + thread_id)
        scans = 0
        seconds = 0.0
        while not stop.is_set():
            column = generator.scan_column()
            started = time.perf_counter()
            engine.scan_sum(column)
            seconds += time.perf_counter() - started
            scans += 1
        with counters_lock:
            result.scans += scans
            result.scan_seconds_total += seconds

    if background_merge:
        engine.start_background()
    threads = [
        threading.Thread(target=update_loop, args=(i,), daemon=True)
        for i in range(update_threads)
    ] + [
        threading.Thread(target=scan_loop, args=(i,), daemon=True)
        for i in range(scan_threads)
    ]
    for thread in threads:
        thread.start()
    time.sleep(duration)
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)
    if background_merge:
        engine.stop_background()
    return result


def run_fixed_transactions(engine: Engine, spec: WorkloadSpec, *,
                           transactions: int,
                           threads: int = 1) -> ThroughputResult:
    """Run a fixed number of transactions (deterministic benches)."""
    per_thread = transactions // max(threads, 1)
    result = ThroughputResult(engine=engine.name, update_threads=threads,
                              scan_threads=0, duration=0.0)
    counters_lock = threading.Lock()

    def worker(thread_id: int) -> None:
        generator = TransactionGenerator(spec, thread_id)
        committed = aborted = 0
        for _ in range(per_thread):
            if execute_transaction(engine, generator.next_transaction()):
                committed += 1
            else:
                aborted += 1
        with counters_lock:
            result.committed += committed
            result.aborted += aborted

    started = time.perf_counter()
    workers = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(threads)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    result.duration = time.perf_counter() - started
    return result


def measure_scan_seconds(engine: Engine, column: int = 1, *,
                         repeats: int = 3) -> float:
    """Median wall-clock seconds of one full-column scan.

    The median resists the GIL-scheduling outliers that plague
    multi-threaded wall-clock measurements.
    """
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        engine.scan_sum(column)
        samples.append(time.perf_counter() - started)
    samples.sort()
    return samples[len(samples) // 2]


def apply_fixed_update_backlog(engine: Engine, spec: WorkloadSpec,
                               updates: int, *,
                               maintenance: bool = False) -> None:
    """Apply exactly *updates* committed update statements (single
    thread), optionally without any merge — a deterministic tail
    backlog for apples-to-apples scan comparisons (Table 8)."""
    generator = TransactionGenerator(spec, 0)
    applied = 0
    while applied < updates:
        operations = [op for op in generator.next_transaction()
                      if op[0] == "w"]
        if not operations:
            continue
        if execute_transaction(engine, operations):
            applied += len(operations)
    if maintenance:
        engine.maintenance()


def run_write_workload(engine: Engine, spec: WorkloadSpec, *,
                       kind: str, update_threads: int,
                       duration: float = 0.4) -> ThroughputResult:
    """Time-boxed write-path microbenchmark (the ``writes`` experiment).

    *kind* selects the statement mix:

    * ``"insert"`` — transactions of 2 inserts of fresh keys (each
      thread owns a disjoint key space above the loaded table);
    * ``"update"`` — transactions of 2 multi-column update statements
      (the write half of the paper's short transactions, no reads);
    * ``"delete"`` — transactions of 2 deletes over per-thread
      disjoint slices of the loaded keys (threads stop early when
      their slice is exhausted);
    * ``"mixed"`` — the full 8r+2w short transaction.

    Returns a :class:`ThroughputResult`; committed counts are whole
    transactions (statements per transaction: 2, 2, 2, 10).
    """
    import random

    if kind == "mixed":
        return run_mixed_workload(engine, spec,
                                  update_threads=update_threads,
                                  scan_threads=0, duration=duration)
    stop = threading.Event()
    result = ThroughputResult(engine=engine.name,
                              update_threads=update_threads,
                              scan_threads=0, duration=duration)
    counters_lock = threading.Lock()

    def run_txn(statements) -> bool:
        txn = engine.begin()
        try:
            for statement in statements:
                statement(txn)
        except (TransactionAborted, KeyNotFoundError):
            txn.abort()
            return False
        return txn.commit()

    def insert_loop(thread_id: int) -> None:
        rng = random.Random(spec.seed * 7_368_787 + thread_id)
        next_key = spec.table_size + 1 + thread_id * 50_000_000
        committed = aborted = 0
        num_payload = spec.num_columns - 1
        while not stop.is_set():
            rows = []
            for _ in range(2):
                rows.append([next_key] + [rng.randrange(1000)
                                          for _ in range(num_payload)])
                next_key += 1
            if run_txn([(lambda t, row=row: t.insert(row))
                        for row in rows]):
                committed += 1
            else:
                aborted += 1
        with counters_lock:
            result.committed += committed
            result.aborted += aborted

    def update_loop(thread_id: int) -> None:
        generator = TransactionGenerator(spec, thread_id)
        committed = aborted = 0
        while not stop.is_set():
            body = [op for op in generator.next_transaction()
                    if op[0] == "w"]
            if execute_transaction(engine, body):
                committed += 1
            else:
                aborted += 1
        with counters_lock:
            result.committed += committed
            result.aborted += aborted

    def delete_loop(thread_id: int) -> None:
        keys = iter(range(thread_id, spec.table_size, update_threads))
        committed = aborted = 0
        while not stop.is_set():
            pair = [key for _, key in zip(range(2), keys)]
            if not pair:
                break  # slice exhausted before the window closed
            if run_txn([(lambda t, key=key: t.delete(key))
                        for key in pair]):
                committed += 1
            else:
                aborted += 1
        with counters_lock:
            result.committed += committed
            result.aborted += aborted

    loops = {"insert": insert_loop, "update": update_loop,
             "delete": delete_loop}
    try:
        loop = loops[kind]
    except KeyError:
        raise ValueError("kind must be insert|update|delete|mixed") \
            from None
    engine.start_background()
    threads = [threading.Thread(target=loop, args=(i,), daemon=True)
               for i in range(update_threads)]
    for thread in threads:
        thread.start()
    time.sleep(duration)
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)
    engine.stop_background()
    return result


def run_analytics_scans(engine: Engine, spec: WorkloadSpec, *,
                        update_threads: int = 2, duration: float = 0.5,
                        group_column: int = 1, value_column: int = 3,
                        filter_column: int = 2, filter_threshold: int = 500,
                        ) -> tuple[float, int, float]:
    """Filtered group-by scans racing a concurrent update stream.

    The analytical query is a single-column GROUP BY over a filtered
    SUM (``SELECT g, SUM(v) WHERE f >= t GROUP BY g``), planned and run
    by the scan executor; short update transactions run underneath, as
    in the paper's mixed OLTP+OLAP setup. Returns
    ``(scans_per_sec, groups_in_last_scan, txn_per_sec)``.

    Requires an L-Store engine (the executor scans ``engine.table``).
    """
    from ..exec.executor import execute_scan
    from ..exec.operators import ColumnSum, GroupBy, ge

    table = engine.table  # type: ignore[attr-defined]
    stop = threading.Event()
    committed = [0]
    counters_lock = threading.Lock()

    def update_loop(thread_id: int) -> None:
        generator = TransactionGenerator(spec, thread_id)
        count = 0
        while not stop.is_set():
            if execute_transaction(engine, generator.next_transaction()):
                count += 1
        with counters_lock:
            committed[0] += count

    engine.start_background()
    threads = [threading.Thread(target=update_loop, args=(i,), daemon=True)
               for i in range(update_threads)]
    for thread in threads:
        thread.start()
    scans = 0
    groups = 0
    started = time.perf_counter()
    try:
        while time.perf_counter() - started < duration:
            result = execute_scan(
                table,
                GroupBy(group_column, lambda: ColumnSum(value_column)),
                filters=(ge(filter_column, filter_threshold),))
            scans += 1
            groups = len(result)
        elapsed = time.perf_counter() - started
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
        engine.stop_background()
    # The updaters commit during exactly the measured scan window
    # (they observe `stop` right after it closes), so the same elapsed
    # is the txn/s denominator — including join/drain time would
    # deflate txn/s by an amount that varies with scan parallelism.
    return (scans / elapsed if elapsed else 0.0, groups,
            committed[0] / elapsed if elapsed else 0.0)


def run_scan_under_updates(engine: Engine, spec: WorkloadSpec, *,
                           update_threads: int, scan_repeats: int = 3,
                           warmup: float = 0.1) -> float:
    """Scan time while update threads run (Table 7 / Table 8 setup)."""
    stop = threading.Event()

    def update_loop(thread_id: int) -> None:
        generator = TransactionGenerator(spec, thread_id)
        while not stop.is_set():
            execute_transaction(engine, generator.next_transaction())

    engine.start_background()
    threads = [threading.Thread(target=update_loop, args=(i,), daemon=True)
               for i in range(update_threads)]
    for thread in threads:
        thread.start()
    time.sleep(warmup)
    try:
        return measure_scan_seconds(engine, repeats=scan_repeats)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
        engine.stop_background()
