"""The micro-benchmark of [Larson et al. VLDB'11] / [Sadoghi et al.
VLDB'14] as used by the paper (Section 6.1).

Workload anatomy:

* a table with **10 columns** (key + 9 payload), integer-valued;
* three **contention levels** set by the active-set size the
  transactions touch — paper: 10M (low), 100K (medium), 10K (high);
  scaled here by a configurable factor because a laptop-scale pure
  Python run cannot hold 10M live Python objects comfortably;
* **short update transactions**: 8 reads + 2 writes by default
  (read-committed), each write updating ~40% of the columns;
* **long read-only transactions**: analytical scans touching ~10% of
  the table (snapshot isolation) — here full-column SUMs, the paper's
  scan primitive.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

#: Operation tuples produced by the generator: ("r", key, columns) or
#: ("w", key, {column: value}).
Operation = tuple


@dataclass(frozen=True)
class WorkloadSpec:
    """One micro-benchmark configuration."""

    #: Total rows loaded into the table.
    table_size: int = 20_000
    #: Keys the transactions touch (contention knob).
    active_set: int = 20_000
    #: Data columns (paper: 10).
    num_columns: int = 10
    #: Read statements per short transaction (paper default: 8).
    reads_per_txn: int = 8
    #: Write statements per short transaction (paper default: 2).
    writes_per_txn: int = 2
    #: Columns updated per write statement (paper: "on average 40% of
    #: all columns are updated" → 4 of 10).
    columns_per_write: int = 4
    #: Fraction of the table a long read-only transaction touches.
    scan_fraction: float = 0.10
    #: RNG seed (per-thread streams derive from it).
    seed: int = 7

    def __post_init__(self) -> None:
        if self.active_set > self.table_size:
            raise ValueError("active_set cannot exceed table_size")
        if self.columns_per_write >= self.num_columns:
            raise ValueError("writes must leave the key column alone")

    def with_read_write_mix(self, reads: int,
                            writes: int) -> "WorkloadSpec":
        """Derive a spec with a different read/write statement mix."""
        return replace(self, reads_per_txn=reads, writes_per_txn=writes)


def low_contention(scale: int = 1000, **overrides) -> WorkloadSpec:
    """Paper's low contention: active set = whole 10M table (scaled)."""
    size = max(10_000_000 // scale, 1000)
    return WorkloadSpec(table_size=size, active_set=size, **overrides)


def medium_contention(scale: int = 1000, **overrides) -> WorkloadSpec:
    """Paper's medium contention: 100K active set (scaled)."""
    size = max(10_000_000 // scale, 1000)
    active = max(100_000 // scale, 64)
    return WorkloadSpec(table_size=size, active_set=active, **overrides)


def high_contention(scale: int = 1000, **overrides) -> WorkloadSpec:
    """Paper's high contention: 10K active set (scaled)."""
    size = max(10_000_000 // scale, 1000)
    active = max(10_000 // scale, 16)
    return WorkloadSpec(table_size=size, active_set=active, **overrides)


def initial_rows(spec: WorkloadSpec) -> Iterator[list[int]]:
    """The initial table contents: key + deterministic payload."""
    for key in range(spec.table_size):
        yield [key] + [(key * 31 + column) % 1000
                       for column in range(1, spec.num_columns)]


class TransactionGenerator:
    """Per-thread stream of short update transactions."""

    def __init__(self, spec: WorkloadSpec, thread_id: int = 0) -> None:
        self.spec = spec
        self._rng = random.Random(spec.seed * 1_000_003 + thread_id)
        # Precomputed k-subsets of the payload columns: drawing one
        # uniformly is distribution-identical to an (unordered)
        # ``random.sample`` draw at a fraction of the cost — the
        # generator runs inside the timed window of every throughput
        # experiment, so its overhead dilutes every engine's txn/s
        # measurement equally but substantially (~25 µs/txn before).
        import itertools
        self._column_combos = tuple(itertools.combinations(
            range(1, spec.num_columns), spec.columns_per_write))

    def next_transaction(self) -> list[Operation]:
        """Generate one transaction's operations (reads + writes).

        Reads and writes are interleaved the way the paper describes
        the 8r+2w short transactions: reads first, writes at the end of
        the transaction (writes read their target via the read set).
        """
        spec = self.spec
        rng = self._rng
        randrange = rng.randrange
        combos = self._column_combos
        num_combos = len(combos)
        active_set = spec.active_set
        operations: list[Operation] = []
        for _ in range(spec.reads_per_txn):
            operations.append(("r", randrange(active_set),
                               combos[randrange(num_combos)]))
        for _ in range(spec.writes_per_txn):
            updates = {
                column: randrange(1000)
                for column in combos[randrange(num_combos)]
            }
            operations.append(("w", randrange(active_set), updates))
        return operations

    def scan_column(self) -> int:
        """Pick the column a long read-only transaction aggregates."""
        return self._rng.randrange(1, self.spec.num_columns)


def point_query_transaction(rng: random.Random, spec: WorkloadSpec,
                            columns_fraction: float) -> list[Operation]:
    """A Table-9 style transaction: 10 point reads fetching a column %.

    "each transaction now consists of 10 read statements, and each read
    statement may read 10% to 100% of all columns."
    """
    count = max(1, round(spec.num_columns * columns_fraction))
    operations: list[Operation] = []
    for _ in range(10):
        key = rng.randrange(spec.active_set)
        columns = tuple(rng.sample(range(spec.num_columns), count))
        operations.append(("r", key, columns))
    return operations
