"""Result containers and paper-style table formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class ExperimentResult:
    """One regenerated table/figure: id, axes, and the data series."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values: Any) -> None:
        """Append one row of the result table."""
        self.rows.append(list(values))

    def column(self, name: str) -> list[Any]:
        """Extract one column by header name."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def series(self, key_header: str, value_header: str,
               key: Any) -> list[Any]:
        """Values of *value_header* where *key_header* equals *key*."""
        key_index = self.headers.index(key_header)
        value_index = self.headers.index(value_header)
        return [row[value_index] for row in self.rows
                if row[key_index] == key]

    def format(self) -> str:
        """Render as a monospace table comparable to the paper's."""
        def text(value: Any) -> str:
            if isinstance(value, float):
                return "%.4f" % value
            return str(value)

        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for i, value in enumerate(row):
                widths[i] = max(widths[i], len(text(value)))
        lines = ["%s — %s" % (self.experiment_id, self.title)]
        lines.append("  ".join(header.ljust(widths[i])
                               for i, header in enumerate(self.headers)))
        lines.append("  ".join("-" * widths[i]
                               for i in range(len(self.headers))))
        for row in self.rows:
            lines.append("  ".join(text(value).ljust(widths[i])
                                   for i, value in enumerate(row)))
        if self.notes:
            lines.append("note: %s" % self.notes)
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - deliberate, mirrors notebooks
        """Print the formatted table."""
        print(self.format())
