"""Benchmark-trajectory diffing: compare two ``--json`` files.

The ROADMAP's measurement rule: fig7/fig9/fig10 *wall seconds* are
dominated by fixed timed-window sleeps (duration × engines × sweep
points), so trajectories are compared on the **result series** — the
per-row throughput (``*_per_sec``, higher is better) and scan-latency
(``*_seconds``, lower is better) metrics — never on an experiment's
wall-clock ``median_seconds``.

Rows are matched by their non-metric "key" columns (engine, threads,
range size, …); a row is flagged as a regression or improvement when a
metric moves beyond the threshold ratio.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

#: Metric header suffixes and their direction (+1 higher is better).
_METRIC_DIRECTIONS = (("_per_sec", +1), ("_seconds", -1))


def _metric_direction(header: str) -> int | None:
    for suffix, direction in _METRIC_DIRECTIONS:
        if header.endswith(suffix):
            return direction
    return None


@dataclass
class DiffReport:
    """Outcome of comparing two trajectories."""

    lines: list[str] = field(default_factory=list)
    compared: int = 0
    regressions: int = 0
    improvements: int = 0

    def format(self) -> str:
        return "\n".join(self.lines)


def load_trajectory(path: str) -> dict[str, Any]:
    """Load a ``python -m repro.bench --json`` trajectory file."""
    with open(path, "r", encoding="utf-8") as stream:
        return json.load(stream)


def _index_rows(headers: list[str], rows: list[list[Any]],
                key_indices: list[int],
                ) -> dict[tuple, list[Any]]:
    indexed: dict[tuple, list[Any]] = {}
    for row in rows:
        indexed[tuple(row[i] for i in key_indices)] = row
    return indexed


def diff_trajectories(baseline: dict[str, Any], current: dict[str, Any], *,
                      threshold: float = 0.25) -> DiffReport:
    """Compare *current* against *baseline*; flag metric moves beyond
    ``threshold`` (e.g. 0.25 = ±25%).

    Only experiments present in both trajectories are compared, and
    only rows whose key columns match; metric columns are recognised by
    their ``*_per_sec`` / ``*_seconds`` suffix.
    """
    report = DiffReport()
    base_experiments = baseline.get("experiments", {})
    current_experiments = current.get("experiments", {})
    shared = sorted(set(base_experiments) & set(current_experiments))
    skipped = sorted(set(base_experiments) ^ set(current_experiments))
    for name in shared:
        base = base_experiments[name]
        now = current_experiments[name]
        headers = base.get("headers", [])
        if headers != now.get("headers", []):
            report.lines.append(
                "%-10s headers changed — series not comparable" % name)
            continue
        metric_indices = [(i, _metric_direction(header), header)
                          for i, header in enumerate(headers)
                          if _metric_direction(header) is not None]
        key_indices = [i for i, header in enumerate(headers)
                       if _metric_direction(header) is None]
        base_rows = _index_rows(headers, base.get("rows", []), key_indices)
        now_rows = _index_rows(headers, now.get("rows", []), key_indices)
        for key in base_rows:
            if key not in now_rows:
                continue
            for index, direction, header in metric_indices:
                old = base_rows[key][index]
                new = now_rows[key][index]
                if not isinstance(old, (int, float)) \
                        or not isinstance(new, (int, float)) or old == 0:
                    continue
                report.compared += 1
                ratio = new / old
                gain = ratio - 1.0 if direction > 0 else 1.0 - ratio
                label = " ".join(str(part) for part in key)
                detail = "%-10s %-28s %-14s %10.4g -> %-10.4g (%+.0f%%)" % (
                    name, label, header, old, new, gain * 100)
                if gain <= -threshold:
                    report.regressions += 1
                    report.lines.append("REGRESSION  " + detail)
                elif gain >= threshold:
                    report.improvements += 1
                    report.lines.append("improved    " + detail)
    if skipped:
        report.lines.append(
            "(only in one trajectory, skipped: %s)" % ", ".join(skipped))
    report.lines.append(
        "diff summary: %d series compared, %d regression(s), "
        "%d improvement(s) at ±%.0f%% (wall seconds ignored — "
        "fig7/fig9/fig10 are sleep-dominated)"
        % (report.compared, report.regressions, report.improvements,
           threshold * 100))
    return report
