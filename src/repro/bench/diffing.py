"""Benchmark-trajectory diffing: compare two ``--json`` files.

The ROADMAP's measurement rule: fig7/fig9/fig10 *wall seconds* are
dominated by fixed timed-window sleeps (duration × engines × sweep
points), so trajectories are compared on the **result series** — the
per-row throughput (``*_per_sec``, higher is better) and scan-latency
(``*_seconds``, lower is better) metrics — never on an experiment's
wall-clock ``median_seconds``.

Rows are matched by their non-metric "key" columns (engine, threads,
range size, …); a row is flagged as a regression or improvement when a
metric moves beyond the threshold ratio.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

#: Metric header suffixes and their direction (+1 higher is better).
_METRIC_DIRECTIONS = (("_per_sec", +1), ("_seconds", -1))


def _metric_direction(header: str) -> int | None:
    for suffix, direction in _METRIC_DIRECTIONS:
        if header.endswith(suffix):
            return direction
    return None


@dataclass
class DiffReport:
    """Outcome of comparing two trajectories."""

    lines: list[str] = field(default_factory=list)
    compared: int = 0
    regressions: int = 0
    improvements: int = 0

    def format(self) -> str:
        return "\n".join(self.lines)


def load_trajectory(path: str) -> dict[str, Any]:
    """Load a ``python -m repro.bench --json`` trajectory file."""
    with open(path, "r", encoding="utf-8") as stream:
        return json.load(stream)


def _index_rows(headers: list[str], rows: list[list[Any]],
                key_indices: list[int],
                ) -> dict[tuple, list[Any]]:
    indexed: dict[tuple, list[Any]] = {}
    for row in rows:
        indexed[tuple(row[i] for i in key_indices)] = row
    return indexed


def _project_rows(headers: list[str], rows: list[list[Any]],
                  shared: list[str]) -> list[list[Any]]:
    """Re-shape *rows* onto the *shared* header order."""
    indices = [headers.index(header) for header in shared]
    return [[row[i] for i in indices] for row in rows]


def _compare_rows(report: "DiffReport", name: str, headers: list[str],
                  base_rows: list[list[Any]], now_rows: list[list[Any]],
                  threshold: float, *, flag_ambiguous: bool = False) -> None:
    """Diff two row sets sharing *headers*; append findings to *report*.

    With *flag_ambiguous* (the schema-aligned path) a key that maps to
    more than one row on either side is reported explicitly instead of
    being compared apples-to-oranges — e.g. a baseline ``analytics``
    row matching both the ``vectorized`` and ``row`` plane rows after
    the PR-3 ``plane`` column was projected away.
    """
    metric_indices = [(i, _metric_direction(header), header)
                      for i, header in enumerate(headers)
                      if _metric_direction(header) is not None]
    key_indices = [i for i, header in enumerate(headers)
                   if _metric_direction(header) is None]
    if flag_ambiguous:
        counts: dict[tuple, list[int]] = {}
        for side, rows in enumerate((base_rows, now_rows)):
            for row in rows:
                key = tuple(row[i] for i in key_indices)
                counts.setdefault(key, [0, 0])[side] += 1
        ambiguous = {key for key, (old, new) in counts.items()
                     if old > 1 or new > 1}
        for key in sorted(ambiguous, key=str):
            old, new = counts[key]
            report.lines.append(
                "%-10s %-28s ambiguous after schema alignment "
                "(%d baseline / %d current rows) — not compared"
                % (name, " ".join(str(part) for part in key), old, new))
    else:
        ambiguous = set()
    base_indexed = _index_rows(headers, base_rows, key_indices)
    now_indexed = _index_rows(headers, now_rows, key_indices)
    if flag_ambiguous:
        # The aligned path must never drop a baseline row silently: a
        # key with no counterpart (e.g. a measured column acting as a
        # key after projection) is called out row by row.
        for key in base_indexed:
            if key not in now_indexed and key not in ambiguous:
                report.lines.append(
                    "%-10s %-28s no matching current row after schema "
                    "alignment — not compared"
                    % (name, " ".join(str(part) for part in key)))
    for key in base_indexed:
        if key not in now_indexed or key in ambiguous:
            continue
        for index, direction, header in metric_indices:
            old = base_indexed[key][index]
            new = now_indexed[key][index]
            if not isinstance(old, (int, float)) \
                    or not isinstance(new, (int, float)) or old == 0:
                continue
            report.compared += 1
            ratio = new / old
            gain = ratio - 1.0 if direction > 0 else 1.0 - ratio
            label = " ".join(str(part) for part in key)
            detail = "%-10s %-28s %-14s %10.4g -> %-10.4g (%+.0f%%)" % (
                name, label, header, old, new, gain * 100)
            if gain <= -threshold:
                report.regressions += 1
                report.lines.append("REGRESSION  " + detail)
            elif gain >= threshold:
                report.improvements += 1
                report.lines.append("improved    " + detail)


def diff_trajectories(baseline: dict[str, Any], current: dict[str, Any], *,
                      threshold: float = 0.25) -> DiffReport:
    """Compare *current* against *baseline*; flag metric moves beyond
    ``threshold`` (e.g. 0.25 = ±25%).

    Only experiments present in both trajectories are compared; metric
    columns are recognised by their ``*_per_sec`` / ``*_seconds``
    suffix. When an experiment's headers changed between trajectories
    (a schema evolution, e.g. PR 3 adding the ``plane`` column to
    ``analytics``), the old rows are aligned onto the shared columns
    and compared there — with an explicit note naming the divergent
    columns, and an explicit per-row warning for keys the alignment
    leaves ambiguous — never skipped silently.
    """
    report = DiffReport()
    base_experiments = baseline.get("experiments", {})
    current_experiments = current.get("experiments", {})
    shared = sorted(set(base_experiments) & set(current_experiments))
    skipped = sorted(set(base_experiments) ^ set(current_experiments))
    for name in shared:
        base = base_experiments[name]
        now = current_experiments[name]
        base_headers = base.get("headers", [])
        now_headers = now.get("headers", [])
        if base_headers == now_headers:
            _compare_rows(report, name, base_headers, base.get("rows", []),
                          now.get("rows", []), threshold)
            continue
        shared_headers = [header for header in now_headers
                          if header in base_headers]
        divergent = [header for header in base_headers + now_headers
                     if header not in shared_headers]
        if not shared_headers or not any(
                _metric_direction(header) is not None
                for header in shared_headers):
            report.lines.append(
                "%-10s headers changed (%s) — no shared metric "
                "columns, series not comparable"
                % (name, ", ".join(divergent) or "reordered"))
            continue
        report.lines.append(
            "%-10s headers changed (%s) — comparing on shared "
            "columns [%s]"
            % (name, ", ".join(divergent), ", ".join(shared_headers)))
        _compare_rows(
            report, name, shared_headers,
            _project_rows(base_headers, base.get("rows", []),
                          shared_headers),
            _project_rows(now_headers, now.get("rows", []),
                          shared_headers),
            threshold, flag_ambiguous=True)
    if skipped:
        report.lines.append(
            "(only in one trajectory, skipped: %s)" % ", ".join(skipped))
    report.lines.append(
        "diff summary: %d series compared, %d regression(s), "
        "%d improvement(s) at ±%.0f%% (wall seconds ignored — "
        "fig7/fig9/fig10 are sleep-dominated)"
        % (report.compared, report.regressions, report.improvements,
           threshold * 100))
    return report
