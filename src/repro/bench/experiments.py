"""One driver per table/figure of the paper's evaluation (Section 6).

Each ``figN_*`` / ``tableN_*`` function regenerates the corresponding
result at a configurable scale and returns an
:class:`~repro.bench.reporting.ExperimentResult` whose rows mirror the
series the paper plots. Absolute numbers differ from the paper's Java
prototype on a 24-thread Xeon; the *shapes* are the reproduction target
(see EXPERIMENTS.md for the paper-vs-measured record).

Scaling knobs: ``scale`` divides the paper's table sizes (default 1000:
10M → 10K rows); ``duration`` bounds each timed run.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..baselines.common import Engine, LStoreEngine
from ..baselines.delta_merge import DeltaMergeEngine
from ..baselines.inplace_history import InPlaceHistoryEngine
from ..core.config import EngineConfig
from ..core.types import Layout
from .harness import (load_engine, measure_scan_seconds,
                      run_analytics_scans, run_fixed_transactions,
                      run_mixed_workload, run_scan_under_updates)
from .reporting import ExperimentResult
from .workload import (WorkloadSpec, high_contention, low_contention,
                       medium_contention, point_query_transaction)

#: Engine page/range geometry used across experiments (power-of-two
#: scaled versions of the paper's 32 KB pages / 4K-64K ranges).
BENCH_RANGE_SIZE = 512
BENCH_PAGE_SIZE = 256
BENCH_MERGE_THRESHOLD = 256


def _lstore_config(**overrides) -> EngineConfig:
    base = dict(
        records_per_page=BENCH_PAGE_SIZE,
        records_per_tail_page=BENCH_PAGE_SIZE,
        update_range_size=BENCH_RANGE_SIZE,
        merge_threshold=BENCH_MERGE_THRESHOLD,
        insert_range_size=BENCH_RANGE_SIZE,
        background_merge=False,  # harness starts it explicitly
    )
    base.update(overrides)
    return EngineConfig(**base)


def make_engine(name: str, num_columns: int, **config_overrides) -> Engine:
    """Factory for the three engines under test."""
    if name == "lstore":
        return LStoreEngine(num_columns,
                            config=_lstore_config(**config_overrides))
    if name == "lstore-row":
        return LStoreEngine(
            num_columns,
            config=_lstore_config(layout=Layout.ROW,
                                  compress_merged_pages=False,
                                  **config_overrides))
    if name == "iuh":
        return InPlaceHistoryEngine(num_columns,
                                    records_per_page=BENCH_PAGE_SIZE)
    if name == "dbm":
        return DeltaMergeEngine(num_columns, range_size=BENCH_RANGE_SIZE,
                                merge_threshold=BENCH_MERGE_THRESHOLD)
    raise ValueError("unknown engine %r" % name)


_ENGINES = ("lstore", "iuh", "dbm")

_CONTENTION = {
    "low": low_contention,
    "medium": medium_contention,
    "high": high_contention,
}


def _spec_for(contention: str, scale: int) -> WorkloadSpec:
    try:
        return _CONTENTION[contention](scale)
    except KeyError:
        raise ValueError("contention must be low|medium|high") from None


# ---------------------------------------------------------------------------
# Figure 7 — Scalability under varying contention
# ---------------------------------------------------------------------------

def fig7_scalability(contention: str = "low", *,
                     thread_counts: Sequence[int] = (1, 2, 4, 8),
                     duration: float = 0.5,
                     scale: int = 1000) -> ExperimentResult:
    """Throughput vs. number of parallel short-update transactions.

    Paper: Figure 7(a–c). One scan thread and the merge thread run
    concurrently, as in the paper's default setup.
    """
    spec = _spec_for(contention, scale)
    result = ExperimentResult(
        "Figure 7(%s)" % contention,
        "Throughput (txns/s) vs update threads, %s contention"
        % contention,
        ["engine", "threads", "txn_per_sec", "aborted"])
    for name in _ENGINES:
        engine = make_engine(name, spec.num_columns)
        try:
            load_engine(engine, spec)
            for threads in thread_counts:
                run = run_mixed_workload(engine, spec,
                                         update_threads=threads,
                                         scan_threads=1, duration=duration)
                result.add_row(engine.name, threads,
                               round(run.txn_per_sec, 1), run.aborted)
                engine.maintenance()  # consolidate between sweeps
        finally:
            engine.close()
    return result


# ---------------------------------------------------------------------------
# Figure 8 — Scan performance vs merge batch size
# ---------------------------------------------------------------------------

def fig8_merge_scan(*, batch_sizes: Sequence[int] = (32, 64, 128, 256, 512),
                    update_thread_counts: Sequence[int] = (4, 16),
                    scale: int = 1000,
                    scan_repeats: int = 3) -> ExperimentResult:
    """Scan time vs tail records processed per merge (L-Store only).

    Paper: Figure 8 — larger merge batches amortise better until the
    backlog of unmerged tails starts hurting; the paper's optimum is
    ~50% of the update-range size.
    """
    spec = _spec_for("low", scale)
    result = ExperimentResult(
        "Figure 8", "Scan seconds vs tail records per merge",
        ["update_threads", "merge_batch", "scan_seconds"])
    for threads in update_thread_counts:
        for batch in batch_sizes:
            engine = make_engine("lstore", spec.num_columns,
                                 merge_threshold=batch)
            try:
                load_engine(engine, spec)
                seconds = run_scan_under_updates(
                    engine, spec, update_threads=threads,
                    scan_repeats=scan_repeats)
                result.add_row(threads, batch, seconds)
            finally:
                engine.close()
    return result


# ---------------------------------------------------------------------------
# Figure 9 — Read/write ratio sweep
# ---------------------------------------------------------------------------

def fig9_read_write_ratio(contention: str = "low", *,
                          read_percentages: Sequence[int] = (0, 20, 40, 60,
                                                             80, 100),
                          threads: int = 8, duration: float = 0.5,
                          scale: int = 1000) -> ExperimentResult:
    """Throughput vs % of reads inside the short transactions.

    Paper: Figure 9(a–b) — all engines speed up with more reads; the
    gaps narrow at 100% reads (though IUH keeps paying read latches).
    """
    spec = _spec_for(contention, scale)
    result = ExperimentResult(
        "Figure 9(%s)" % contention,
        "Throughput vs read percentage, %s contention" % contention,
        ["engine", "read_pct", "txn_per_sec"])
    statements = spec.reads_per_txn + spec.writes_per_txn
    for name in _ENGINES:
        engine = make_engine(name, spec.num_columns)
        try:
            load_engine(engine, spec)
            for read_pct in read_percentages:
                reads = round(statements * read_pct / 100)
                writes = statements - reads
                mixed = spec.with_read_write_mix(reads, writes)
                # Unmeasured warmup: consolidates the previous point's
                # tails and performs the one-time lazy commit-time
                # stamping, so the measured window reflects steady state.
                engine.maintenance()
                run_mixed_workload(engine, mixed, update_threads=threads,
                                   scan_threads=0, duration=duration / 3)
                run = run_mixed_workload(engine, mixed,
                                         update_threads=threads,
                                         scan_threads=0, duration=duration)
                result.add_row(engine.name, read_pct,
                               round(run.txn_per_sec, 1))
        finally:
            engine.close()
    return result


# ---------------------------------------------------------------------------
# Figure 10 — Mixed OLTP + OLAP thread split
# ---------------------------------------------------------------------------

def fig10_mixed_workload(contention: str = "low", *,
                         total_threads: int = 9,
                         scan_thread_counts: Sequence[int] | None = None,
                         duration: float = 0.5,
                         scale: int = 1000) -> ExperimentResult:
    """Update and read-only throughput as the thread split varies.

    Paper: Figure 10(a–d) — 17 threads split between short updates and
    long read-only scans (scaled down here by default).
    """
    spec = _spec_for(contention, scale)
    if scan_thread_counts is None:
        scan_thread_counts = tuple(
            n for n in (1, 2, 4, total_threads - 1) if n < total_threads)
    result = ExperimentResult(
        "Figure 10(%s)" % contention,
        "Mixed workload split over %d threads, %s contention"
        % (total_threads, contention),
        ["engine", "scan_threads", "update_threads", "txn_per_sec",
         "scans_per_sec"])
    for name in _ENGINES:
        engine = make_engine(name, spec.num_columns)
        try:
            load_engine(engine, spec)
            for scans in scan_thread_counts:
                updates = total_threads - scans
                run = run_mixed_workload(engine, spec,
                                         update_threads=updates,
                                         scan_threads=scans,
                                         duration=duration)
                result.add_row(engine.name, scans, updates,
                               round(run.txn_per_sec, 1),
                               round(run.scans_per_sec, 2))
                engine.maintenance()
        finally:
            engine.close()
    return result


# ---------------------------------------------------------------------------
# Table 7 — Scan performance across engines
# ---------------------------------------------------------------------------

def table7_scan_performance(*, update_threads: int = 8, scale: int = 1000,
                            scan_repeats: int = 3) -> ExperimentResult:
    """Single-thread scan seconds under concurrent updaters.

    Paper: Table 7 — L-Store 0.24s < IUH 0.28s < DBM 0.38s (16
    updaters, low contention, 4K ranges).
    """
    spec = _spec_for("low", scale)
    result = ExperimentResult(
        "Table 7", "Scan seconds under %d update threads" % update_threads,
        ["engine", "scan_seconds"])
    for name in _ENGINES:
        engine = make_engine(name, spec.num_columns)
        try:
            load_engine(engine, spec)
            seconds = run_scan_under_updates(
                engine, spec, update_threads=update_threads,
                scan_repeats=scan_repeats)
            result.add_row(engine.name, seconds)
        finally:
            engine.close()
    return result


# ---------------------------------------------------------------------------
# Table 8 — Row vs columnar layout scans
# ---------------------------------------------------------------------------

def table8_row_vs_column(*, update_threads: int = 8, scale: int = 1000,
                         scan_repeats: int = 5) -> ExperimentResult:
    """Scan seconds for L-Store (Column) vs L-Store (Row).

    Paper: Table 8 — columnar wins 4.56× with no updates and 2.75×
    with 16 update threads. Because the two layouts commit updates at
    different rates in Python, the "with updates" condition applies a
    *fixed* unmerged-tail backlog (20% of the table) to both layouts
    instead of free-running updaters — same pending work, fair scan
    comparison. *update_threads* is retained for API compatibility.
    """
    from .harness import apply_fixed_update_backlog

    spec = _spec_for("low", scale)
    backlog = max(spec.table_size // 5, 100)
    result = ExperimentResult(
        "Table 8", "Scan seconds: columnar vs row layout",
        ["layout", "updates", "scan_seconds"])
    for layout_name, engine_name in (("L-Store (Column)", "lstore"),
                                     ("L-Store (Row)", "lstore-row")):
        engine = make_engine(engine_name, spec.num_columns)
        try:
            load_engine(engine, spec)
            measure_scan_seconds(engine, repeats=1)  # warm caches
            seconds = measure_scan_seconds(engine, repeats=scan_repeats)
            result.add_row(layout_name, "without", seconds)
            apply_fixed_update_backlog(engine, spec, backlog)
            seconds = measure_scan_seconds(engine, repeats=scan_repeats)
            result.add_row(layout_name, "with", seconds)
        finally:
            engine.close()
    return result


# ---------------------------------------------------------------------------
# Range SUMs — ordered primary index vs hash-index walk
# ---------------------------------------------------------------------------

def sums_range_queries(*, range_spans: Sequence[int] = (16, 256, 2048),
                       queries: int = 100,
                       scale: int = 1000) -> ExperimentResult:
    """Range-SUM throughput: ordered+batched read path vs hash walk.

    Not a paper table — the regression guard for this repo's ordered
    primary index and batched point reads. ``Query.sum`` over a k-key
    range must cost O(log N + k); the hash-walk configuration re-scans
    the whole primary index per query, which is what the paper's range
    workloads (Section 6) are *not* supposed to pay.
    """
    import random
    import time

    from ..core.query import Query

    spec = _spec_for("low", scale)
    result = ExperimentResult(
        "Sums", "Range-SUM queries/s: ordered index vs hash walk",
        ["index", "range_size", "queries_per_sec"])
    configurations = (
        ("ordered+batched", {}),
        ("hash-walk", {"ordered_primary_index": False,
                       "ordered_secondary_index": False,
                       "batched_reads": False}),
    )
    for label, overrides in configurations:
        engine = make_engine("lstore", spec.num_columns, **overrides)
        try:
            load_engine(engine, spec)
            query = Query(engine.table)
            for span in range_spans:
                span = min(span, spec.table_size)
                rng = random.Random(spec.seed)
                started = time.perf_counter()
                for _ in range(queries):
                    low = rng.randrange(spec.table_size - span + 1)
                    query.sum(low, low + span - 1, 3)
                elapsed = time.perf_counter() - started
                result.add_row(label, span, round(queries / elapsed, 1))
        finally:
            engine.close()
    return result


# ---------------------------------------------------------------------------
# Versioned SUMs — snapshot visibility on the version-horizon plane
# ---------------------------------------------------------------------------

def sums_versioned(*, scans: int = 30,
                   scale: int = 1000) -> ExperimentResult:
    """Full-table SUM throughput: visibility × execution plane.

    Not a paper table — the regression guard for the version-horizon
    snapshot plane (this repo's time-travel analytics claim): a
    full-table SUM at three visibilities — latest committed, ``as_of``
    a timestamp *before* a light churn burst (every churned partition
    is *frozen* at that time: dirty records serve from base slices),
    and ``as_of`` a timestamp *after* it (churned records replay
    through the lineage walk) — crossed with ``vectorized_scans``
    on/off. The ``vectorized`` rows document the restored snapshot
    fast path; the ``row`` rows keep the per-record baseline the PR-3
    refactor had regressed every snapshot scan to.
    """
    import time

    spec = _spec_for("low", scale)
    result = ExperimentResult(
        "SumsVersioned",
        "Full-table SUM scans/s: visibility × plane",
        ["plane", "visibility", "scans_per_sec"])
    for vectorized in (True, False):
        plane = "vectorized" if vectorized else "row"
        engine = make_engine("lstore", spec.num_columns,
                             vectorized_scans=vectorized)
        try:
            load_engine(engine, spec)
            table = engine.table
            pre_churn = table.clock.now()
            from .harness import apply_fixed_update_backlog
            apply_fixed_update_backlog(engine, spec,
                                       max(spec.table_size // 50, 10))
            post_churn = table.clock.now()
            sweeps = (
                ("latest", None),
                ("as_of_pre_churn", pre_churn),
                ("as_of_post_churn", post_churn),
            )
            for label, as_of in sweeps:
                table.scan_sum(3, as_of=as_of)  # warm slice caches
                started = time.perf_counter()
                for _ in range(scans):
                    table.scan_sum(3, as_of=as_of)
                elapsed = time.perf_counter() - started
                result.add_row(plane, label, round(scans / elapsed, 2))
        finally:
            engine.close()
    return result


# ---------------------------------------------------------------------------
# Writes — OLTP write-path microbenchmarks
# ---------------------------------------------------------------------------

def writes_microbench(*, thread_counts: Sequence[int] = (1, 2, 4),
                      duration: float = 0.4,
                      scale: int = 1000) -> ExperimentResult:
    """Write-path throughput: statement mix × writer threads (L-Store).

    Not a paper table — trajectory visibility for the OLTP write path
    (this repo's flat-cell tail appends, fused Lemma-2 snapshot
    append, striped statistics, and group commit): insert-only,
    update-only, delete-only, and the paper's 8r+2w mixed short
    transactions, each swept over writer threads against a freshly
    loaded engine (background merge running, no scan threads). Rows
    report committed transactions/s and statements/s.
    """
    from .harness import run_write_workload

    spec = _spec_for("low", scale)
    statements = {"insert": 2, "update": 2, "delete": 2,
                  "mixed": spec.reads_per_txn + spec.writes_per_txn}
    result = ExperimentResult(
        "Writes", "Write-path txn/s: statement mix × writer threads",
        ["workload", "threads", "txn_per_sec", "stmt_per_sec"])
    for kind in ("insert", "update", "delete", "mixed"):
        for threads in thread_counts:
            engine = make_engine("lstore", spec.num_columns)
            try:
                load_engine(engine, spec)
                run = run_write_workload(engine, spec, kind=kind,
                                         update_threads=threads,
                                         duration=duration)
                result.add_row(kind, threads, round(run.txn_per_sec, 1),
                               round(run.txn_per_sec
                                     * statements[kind], 1))
            finally:
                engine.close()
    return result


# ---------------------------------------------------------------------------
# Analytics — filtered group-by scans under a concurrent update stream
# ---------------------------------------------------------------------------

def analytics_scans(*, parallelism_levels: Sequence[int] = (1, 2, 4),
                    update_threads: int = 2, duration: float = 0.5,
                    scale: int = 1000) -> ExperimentResult:
    """Executor group-by scan throughput: plane × ``scan_parallelism``.

    Not a paper table — the regression guard for the analytical scan
    executor (this repo's real-time OLAP claim): a filtered single-column
    group-by SUM planned into per-update-range partitions, running
    against a live short-transaction update stream. The sweep crosses
    ``vectorized_scans`` (the column-slice plane vs the per-record row
    plane) with the executor parallelism levels: the vectorised rows
    document the slice speedup *and* the parallel scaling its
    GIL-releasing NumPy kernels unlock, the row rows keep the
    GIL-penalty baseline on record. Rows report analytical scans/s,
    groups produced, and the concurrent OLTP throughput.
    """
    spec = _spec_for("low", scale)
    result = ExperimentResult(
        "Analytics",
        "Filtered group-by scans/s under %d update threads"
        % update_threads,
        ["plane", "parallelism", "scans_per_sec", "groups", "txn_per_sec"])
    for vectorized in (True, False):
        plane = "vectorized" if vectorized else "row"
        for parallelism in parallelism_levels:
            engine = make_engine("lstore", spec.num_columns,
                                 scan_parallelism=parallelism,
                                 vectorized_scans=vectorized)
            try:
                load_engine(engine, spec)
                scans_per_sec, groups, txn_per_sec = run_analytics_scans(
                    engine, spec, update_threads=update_threads,
                    duration=duration)
                result.add_row(plane, parallelism, round(scans_per_sec, 2),
                               groups, round(txn_per_sec, 1))
            finally:
                engine.close()
    return result


# ---------------------------------------------------------------------------
# Table 9 — Point queries vs % of columns read
# ---------------------------------------------------------------------------

def table9_point_queries(*, column_fractions: Sequence[float] = (0.1, 0.2,
                                                                 0.4, 0.8,
                                                                 1.0),
                         transactions: int = 500,
                         scale: int = 1000) -> ExperimentResult:
    """Point-query throughput vs fraction of columns fetched.

    Paper: Table 9 — the columnar layout degrades gracefully (−33%
    worst case at 100% of columns) while the row layout stays flat.
    """
    import random

    from .harness import execute_transaction

    spec = _spec_for("low", scale)
    result = ExperimentResult(
        "Table 9", "Point-query throughput vs %% of columns read",
        ["layout", "columns_pct", "txn_per_sec"])
    for layout_name, engine_name in (("L-Store (Column)", "lstore"),
                                     ("L-Store (Row)", "lstore-row")):
        engine = make_engine(engine_name, spec.num_columns)
        try:
            load_engine(engine, spec)
            # Warm caches (page NumPy views, directories) unmeasured so
            # the first swept fraction is not a cold-start outlier.
            warmup_rng = random.Random(spec.seed + 1)
            for _ in range(100):
                execute_transaction(
                    engine, point_query_transaction(warmup_rng, spec, 1.0))
            for fraction in column_fractions:
                rng = random.Random(spec.seed)
                bodies = [point_query_transaction(rng, spec, fraction)
                          for _ in range(transactions)]
                import time
                started = time.perf_counter()
                for body in bodies:
                    execute_transaction(engine, body)
                elapsed = time.perf_counter() - started
                result.add_row(layout_name, int(fraction * 100),
                               round(transactions / elapsed, 1))
        finally:
            engine.close()
    return result


def recovery_bench(*, ops_multipliers: Sequence[int] = (1, 2, 4),
                   scale: int = 1000) -> ExperimentResult:
    """Recovery time vs log size, with and without checkpoints.

    Not a paper figure: quantifies the checkpoint subsystem. Each run
    builds a durable engine, drives insert+update traffic to grow the
    log, then times :func:`recover_database` from a cold start. The
    ``checkpointed`` mode checkpoints mid-run and at the end, so
    recovery loads the image and replays only the suffix — its time
    should stay flat as the log grows while ``full-replay`` climbs.
    """
    import os
    import shutil
    import tempfile
    import time

    from ..core.db import Database
    from ..wal.recovery import recover_database

    base_ops = max(4_000_000 // scale, 256)
    result = ExperimentResult(
        "Recovery", "Recovery seconds vs log size",
        ["mode", "log_ops", "recovery_ms", "replayed", "skipped"])
    for multiplier in ops_multipliers:
        ops = base_ops * multiplier
        for mode in ("full-replay", "checkpointed"):
            data_dir = tempfile.mkdtemp(prefix="lstore-recovery-")
            try:
                db = Database(_lstore_config(
                    wal_enabled=True, data_dir=data_dir,
                    wal_segment_bytes=1 << 20))
                table = db.create_table("bench", 3)
                rows = max(ops // 4, 64)
                for key in range(rows):
                    table.insert([key, key, 0])
                updates = ops - rows
                for i in range(updates):
                    key = i % rows
                    table.update(table.index.primary.get(key), {1: i})
                    if mode == "checkpointed" and i == updates // 2:
                        db.checkpoint()
                if mode == "checkpointed":
                    db.checkpoint()
                db._wal.flush()
                log_path = os.path.join(data_dir, "wal.log")
                started = time.perf_counter()
                recovered = recover_database(log_path,
                                             config=_lstore_config())
                elapsed = time.perf_counter() - started
                report = recovered.recovery_report
                recovered.close()
                db.close()
                result.add_row(mode, ops, round(elapsed * 1000, 2),
                               report.records_replayed,
                               report.records_skipped)
            finally:
                shutil.rmtree(data_dir, ignore_errors=True)
    return result


#: Registry used by the CLI runner and the pytest benches.
ALL_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "analytics": analytics_scans,
    "fig7": fig7_scalability,
    "fig8": fig8_merge_scan,
    "fig9": fig9_read_write_ratio,
    "fig10": fig10_mixed_workload,
    "recovery": recovery_bench,
    "table7": table7_scan_performance,
    "table8": table8_row_vs_column,
    "table9": table9_point_queries,
    "sums": sums_range_queries,
    "sums_versioned": sums_versioned,
    "writes": writes_microbench,
}
