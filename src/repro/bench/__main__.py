"""CLI experiment runner: regenerate any paper table/figure.

Usage::

    python -m repro.bench --list
    python -m repro.bench fig7 --contention high --scale 500
    python -m repro.bench table8 table9
    python -m repro.bench all --scale 2000 --duration 0.3
    python -m repro.bench all --json BENCH_PR1.json --repeats 3

``--json`` writes a benchmark-trajectory file: per-experiment median
wall-clock seconds (over ``--repeats`` runs) plus the result rows of
the last run, so successive PRs can diff performance against the
committed baseline.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from .experiments import ALL_EXPERIMENTS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the L-Store paper's evaluation "
                    "tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (fig7..fig10, table7..table9, "
                             "sums) or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--scale", type=int, default=1000,
                        help="divide the paper's 10M-row table by this "
                             "factor (default 1000)")
    parser.add_argument("--duration", type=float, default=0.5,
                        help="seconds per timed throughput run")
    parser.add_argument("--contention", default=None,
                        choices=("low", "medium", "high"),
                        help="contention level for fig7/fig9/fig10 "
                             "(default: the experiment's own default)")
    parser.add_argument("--json", dest="json_path", default=None,
                        metavar="PATH",
                        help="write a benchmark-trajectory JSON with "
                             "per-experiment median seconds and result "
                             "rows")
    parser.add_argument("--repeats", type=int, default=1,
                        help="runs per experiment for the median "
                             "(default 1; use >= 3 with --json)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list or not args.experiments:
        print("available experiments:")
        for name, fn in sorted(ALL_EXPERIMENTS.items()):
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print("  %-8s %s" % (name, summary))
        return 0
    names = list(args.experiments)
    if names == ["all"]:
        names = sorted(ALL_EXPERIMENTS)
    unknown = [name for name in names if name not in ALL_EXPERIMENTS]
    if unknown:
        print("unknown experiment(s): %s" % ", ".join(unknown),
              file=sys.stderr)
        return 2
    repeats = max(args.repeats, 1)
    trajectory: dict = {
        "tool": "repro.bench",
        "scale": args.scale,
        "duration": args.duration,
        "repeats": repeats,
        "experiments": {},
    }
    for name in names:
        fn = ALL_EXPERIMENTS[name]
        kwargs: dict = {"scale": args.scale}
        if name in ("fig7", "fig9", "fig10"):
            kwargs["duration"] = args.duration
            if args.contention is not None:
                kwargs["contention"] = args.contention
        samples: list[float] = []
        result = None
        for _ in range(repeats):
            started = time.perf_counter()
            result = fn(**kwargs)
            samples.append(time.perf_counter() - started)
        assert result is not None
        result.print()
        print()
        trajectory["experiments"][name] = {
            "median_seconds": round(statistics.median(samples), 4),
            "samples_seconds": [round(sample, 4) for sample in samples],
            "headers": result.headers,
            "rows": result.rows,
        }
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as stream:
            json.dump(trajectory, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print("wrote %s" % args.json_path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
