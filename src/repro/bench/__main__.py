"""CLI experiment runner: regenerate any paper table/figure.

Usage::

    python -m repro.bench --list
    python -m repro.bench fig7 --contention high --scale 500
    python -m repro.bench table8 table9
    python -m repro.bench all --scale 2000 --duration 0.3
    python -m repro.bench all --json BENCH_PR2.json --repeats 3
    python -m repro.bench all --json BENCH_PR2.json --diff BENCH_PR1.json
    python -m repro.bench --diff BENCH_PR1.json --against BENCH_PR2.json

``--json`` writes a benchmark-trajectory file: per-experiment median
wall-clock seconds (over ``--repeats`` runs) plus the result rows of
the last run, so successive PRs can diff performance against the
committed baseline. ``--diff BASELINE`` compares the freshly run (or
``--against``-loaded) trajectory's result series against the baseline
and prints a regression summary — per-row txn/s and the sums/table
series, never the sleep-dominated wall seconds (see ROADMAP).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from .experiments import ALL_EXPERIMENTS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the L-Store paper's evaluation "
                    "tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (fig7..fig10, table7..table9, "
                             "sums) or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--scale", type=int, default=1000,
                        help="divide the paper's 10M-row table by this "
                             "factor (default 1000)")
    parser.add_argument("--duration", type=float, default=0.5,
                        help="seconds per timed throughput run")
    parser.add_argument("--contention", default=None,
                        choices=("low", "medium", "high"),
                        help="contention level for fig7/fig9/fig10 "
                             "(default: the experiment's own default)")
    parser.add_argument("--json", dest="json_path", default=None,
                        metavar="PATH",
                        help="write a benchmark-trajectory JSON with "
                             "per-experiment median seconds and result "
                             "rows")
    parser.add_argument("--repeats", type=int, default=1,
                        help="runs per experiment for the median "
                             "(default 1; use >= 3 with --json)")
    parser.add_argument("--diff", dest="diff_baseline", default=None,
                        metavar="BASELINE",
                        help="compare result series against a baseline "
                             "trajectory JSON and print a regression "
                             "summary")
    parser.add_argument("--against", dest="diff_against", default=None,
                        metavar="PATH",
                        help="with --diff: compare this trajectory file "
                             "instead of running experiments")
    parser.add_argument("--diff-threshold", type=float, default=0.25,
                        help="relative change flagged by --diff "
                             "(default 0.25 = ±25%%)")
    parser.add_argument("--metrics", action="store_true",
                        help="dump the L-Store engine-metrics snapshot "
                             "(Database.metrics()) captured at each "
                             "engine close, per experiment")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.diff_against and not args.diff_baseline:
        print("--against requires --diff BASELINE", file=sys.stderr)
        return 2
    if args.diff_baseline and args.diff_against:
        if args.experiments:
            print("--against compares two existing trajectory files; "
                  "drop the experiment arguments or drop --against to "
                  "run them fresh", file=sys.stderr)
            return 2
        from .diffing import diff_trajectories, load_trajectory
        report = diff_trajectories(load_trajectory(args.diff_baseline),
                                   load_trajectory(args.diff_against),
                                   threshold=args.diff_threshold)
        print(report.format())
        return 0
    if args.list or not args.experiments:
        print("available experiments:")
        for name, fn in sorted(ALL_EXPERIMENTS.items()):
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print("  %-8s %s" % (name, summary))
        return 0
    names = list(args.experiments)
    if names == ["all"]:
        names = sorted(ALL_EXPERIMENTS)
    unknown = [name for name in names if name not in ALL_EXPERIMENTS]
    if unknown:
        print("unknown experiment(s): %s" % ", ".join(unknown),
              file=sys.stderr)
        return 2
    repeats = max(args.repeats, 1)
    trajectory: dict = {
        "tool": "repro.bench",
        "scale": args.scale,
        "duration": args.duration,
        "repeats": repeats,
        "experiments": {},
    }
    if args.metrics:
        from ..baselines import common as _baselines_common
    for name in names:
        fn = ALL_EXPERIMENTS[name]
        kwargs: dict = {"scale": args.scale}
        if name in ("fig7", "fig9", "fig10", "analytics", "writes"):
            kwargs["duration"] = args.duration
            if name in ("fig7", "fig9", "fig10") \
                    and args.contention is not None:
                kwargs["contention"] = args.contention
        if args.metrics:
            _baselines_common.METRICS_CAPTURE = []
        samples: list[float] = []
        result = None
        for _ in range(repeats):
            started = time.perf_counter()
            result = fn(**kwargs)
            samples.append(time.perf_counter() - started)
        assert result is not None
        result.print()
        print()
        if args.metrics:
            captured = _baselines_common.METRICS_CAPTURE
            _baselines_common.METRICS_CAPTURE = None
            for snapshot in captured:
                print("engine metrics [%s / %s]:" % (name,
                                                     snapshot["engine"]))
                print(json.dumps(snapshot["metrics"], indent=2,
                                 sort_keys=True, default=str))
            print()
        trajectory["experiments"][name] = {
            "median_seconds": round(statistics.median(samples), 4),
            "samples_seconds": [round(sample, 4) for sample in samples],
            "headers": result.headers,
            "rows": result.rows,
        }
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as stream:
            json.dump(trajectory, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print("wrote %s" % args.json_path)
    if args.diff_baseline:
        from .diffing import diff_trajectories, load_trajectory
        report = diff_trajectories(load_trajectory(args.diff_baseline),
                                   trajectory,
                                   threshold=args.diff_threshold)
        print(report.format())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
