"""Structured spans: zero-cost when disabled, a bounded ring when on.

The discipline mirrors :mod:`repro.fault.registry`: a module-level
collector whose ``enabled`` flag is checked first, so the instrumented
code pays one attribute load and one truth test per span site when
tracing is off (and :func:`span` then returns a shared, stateless
no-op context manager — no allocation either).

Spans are coarse engine operations, not per-record events: a commit
group flush, one merge, one scan, a checkpoint, a recovery replay.
Finished spans land in a bounded ring (oldest dropped) as plain dicts::

    {"name": "merge.range", "wall": <time.time at start>,
     "duration": <seconds>, "thread": <ident>, "attrs": {...}}

Enable programmatically (:func:`enable_tracing`) or for a whole
process with ``REPRO_OBS_TRACE=1`` in the environment, which the CI
observability leg uses to assert tracing cannot change results.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any

_TRUTHY = ("1", "true", "yes", "on")


class TraceCollector:
    """The process-wide span sink (see module docstring)."""

    __slots__ = ("enabled", "_spans")

    def __init__(self, capacity: int = 4096) -> None:
        self.enabled = False
        self._spans: deque[dict[str, Any]] = deque(maxlen=capacity)

    def enable(self, capacity: int | None = None) -> None:
        if capacity is not None:
            self._spans = deque(self._spans, maxlen=capacity)
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def record(self, finished: dict[str, Any]) -> None:
        # deque.append is atomic under the GIL; the ring needs no lock.
        self._spans.append(finished)

    def drain(self) -> list[dict[str, Any]]:
        """Return and clear every buffered finished span."""
        drained = []
        while True:
            try:
                drained.append(self._spans.popleft())
            except IndexError:
                return drained

    def __len__(self) -> int:
        return len(self._spans)


TRACE = TraceCollector()


class _NullSpan:
    """Shared no-op span: stateless, hence safe to reuse and nest."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    __slots__ = ("name", "attrs", "_wall", "_start")

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_LiveSpan":
        self._wall = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, *exc_info: Any) -> bool:
        duration = time.perf_counter() - self._start
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        TRACE.record({
            "name": self.name,
            "wall": self._wall,
            "duration": duration,
            "thread": threading.get_ident(),
            "attrs": self.attrs,
        })
        return False

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span."""
        self.attrs.update(attrs)


def span(name: str, **attrs: Any) -> Any:
    """Context manager timing one coarse operation named *name*."""
    if not TRACE.enabled:
        return _NULL_SPAN
    return _LiveSpan(name, attrs)


def trace_event(name: str, **attrs: Any) -> None:
    """Record an instantaneous (zero-duration) event."""
    if not TRACE.enabled:
        return
    TRACE.record({
        "name": name,
        "wall": time.time(),
        "duration": 0.0,
        "thread": threading.get_ident(),
        "attrs": attrs,
    })


def enable_tracing(capacity: int | None = None) -> None:
    """Turn span collection on process-wide."""
    TRACE.enable(capacity)


def disable_tracing() -> None:
    """Turn span collection off (buffered spans stay until drained)."""
    TRACE.disable()


if os.environ.get("REPRO_OBS_TRACE", "").strip().lower() in _TRUTHY:
    TRACE.enable()
