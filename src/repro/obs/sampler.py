"""Periodic metrics sampler: a JSONL time series on a daemon thread.

One :class:`MetricsSampler` wakes every ``interval`` seconds, calls
its snapshot function (normally :meth:`Database.metrics`), and appends
one JSON line per tick::

    {"ts": 1754650000.123, "metrics": {"txn": {...}, "wal": {...}}}

``stop()`` takes a final sample so short-lived runs still leave a
record. A snapshot failure is written as an ``{"ts", "error"}`` line
rather than killing the thread — counted by ``obs.sampler_errors``,
and **rate-limited**: a repeating identical error writes lines only at
exponentially spaced repetitions (1st, 2nd, 4th, 8th, ...) with the
repeat count attached, so a wedged snapshot function cannot flood the
time series. The Database starts one automatically when
``EngineConfig.obs_sample_interval`` is set, supervised by the engine
:class:`~repro.health.supervisor.Supervisor` (a crash in the run loop
itself — not just the snapshot — restarts the sampler with backoff).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable

from .registry import MetricsRegistry


class MetricsSampler:
    def __init__(self, snapshot_fn: Callable[[], Any], path: str,
                 interval: float, *,
                 metrics: MetricsRegistry | None = None) -> None:
        if interval <= 0:
            raise ValueError("sampler interval must be positive")
        self.path = path
        self.interval = interval
        self._snapshot_fn = snapshot_fn
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._service: Any | None = None
        self._lock = threading.Lock()
        if metrics is None:
            metrics = MetricsRegistry()
        self._stat_errors = metrics.counter(
            "obs.sampler_errors",
            help="Snapshot failures captured by the metrics sampler")
        #: Error-line rate limiting: the last error message and how
        #: many consecutive ticks produced it.
        self._last_error: str | None = None
        self._error_repeats = 0

    @property
    def running(self) -> bool:
        if self._service is not None:
            return bool(self._service.alive)
        return self._thread is not None and self._thread.is_alive()

    def start(self, supervisor: Any | None = None) -> None:
        if self.running:
            return
        self._stop.clear()
        if supervisor is not None:
            self._service = supervisor.launch(
                "obs.sampler", self._run, stop_hook=self._stop.set,
                thread_name="repro-obs-sampler")
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-sampler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the thread and append one final sample."""
        self._stop.set()
        service = self._service
        if service is not None:
            if service.stop(timeout=5.0):
                self._service = None
        else:
            thread = self._thread
            if thread is not None:
                thread.join(timeout=5.0)
                self._thread = None
        self._sample()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample()

    def _sample(self) -> None:
        try:
            line: str | None = json.dumps(
                {"ts": time.time(), "metrics": self._snapshot_fn()},
                default=str)
            self._last_error = None
            self._error_repeats = 0
        except Exception as exc:  # keep the time series alive
            line = self._error_line(exc)
        if line is None:
            return
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")

    def _error_line(self, exc: Exception) -> str | None:
        """Count the failure; None when the line is rate-limited.

        Identical consecutive errors emit lines only at power-of-two
        repetition counts, each carrying ``repeats`` so readers can
        reconstruct the suppressed span.
        """
        self._stat_errors.add()
        message = "%s: %s" % (type(exc).__name__, exc)
        if message == self._last_error:
            self._error_repeats += 1
            repeats = self._error_repeats
            if repeats & (repeats - 1):  # not a power of two: suppress
                return None
            return json.dumps({"ts": time.time(), "error": message,
                               "repeats": repeats})
        self._last_error = message
        self._error_repeats = 1
        return json.dumps({"ts": time.time(), "error": message})
