"""Periodic metrics sampler: a JSONL time series on a daemon thread.

One :class:`MetricsSampler` wakes every ``interval`` seconds, calls
its snapshot function (normally :meth:`Database.metrics`), and appends
one JSON line per tick::

    {"ts": 1754650000.123, "metrics": {"txn": {...}, "wal": {...}}}

``stop()`` takes a final sample so short-lived runs still leave a
record. A snapshot failure is written as an ``{"ts", "error"}`` line
rather than killing the thread. The Database starts one automatically
when ``EngineConfig.obs_sample_interval`` is set.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable


class MetricsSampler:
    def __init__(self, snapshot_fn: Callable[[], Any], path: str,
                 interval: float) -> None:
        if interval <= 0:
            raise ValueError("sampler interval must be positive")
        self.path = path
        self.interval = interval
        self._snapshot_fn = snapshot_fn
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-sampler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the thread and append one final sample."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        self._sample()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample()

    def _sample(self) -> None:
        try:
            line = json.dumps({"ts": time.time(),
                               "metrics": self._snapshot_fn()},
                              default=str)
        except Exception as exc:  # keep the time series alive
            line = json.dumps({"ts": time.time(), "error": str(exc)})
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
