"""Metrics registry: striped counters, gauges, log-scale histograms.

The registry is the engine's one place for runtime statistics. Three
instrument kinds exist, all safe for concurrent writers and all cheap
enough for OLTP hot paths:

* :class:`Counter` — a monotonically increasing count, striped per
  thread (the generalisation of ``repro.txn.latch.StripedCounter``):
  ``add`` touches only the calling thread's private cell, so hot-path
  increments never contend. The fold on read is *eventually exact* —
  a read racing in-flight increments may miss the newest few, but the
  total is exact once writers quiesce.
* :class:`Gauge` — a point-in-time value, either stored (``set``) or
  computed by a callback at snapshot time (queue depths, lag).
* :class:`Histogram` — a distribution over **fixed log-scale buckets**
  (doubling bounds, precomputed). ``observe`` bisects the bound list
  and bumps the calling thread's private bucket cell — no lock, no
  allocation — so latency histograms can sit on the commit path.

Instruments are keyed by a dotted ``domain.metric`` name plus an
optional label mapping (one label convention exists: ``table=<name>``
for per-table instruments). :meth:`MetricsRegistry.snapshot` folds
everything into a nested ``{domain: {metric: value}}`` dict,
aggregating across label sets; the Prometheus renderer
(:func:`repro.obs.render.render_text`) keeps labels as series.

A registry built with ``enabled=False`` hands out shared no-op
instruments (``NULL_COUNTER`` …): every ``add``/``observe``/``set``
returns immediately and ``snapshot`` is empty. This is the "pre-obs
floor" the overhead benchmark measures against, and the same
zero-cost-when-disabled discipline as :mod:`repro.fault.registry`.

This module imports only the standard library on purpose: every engine
layer (table, txn, merge, wal, exec) can import it without cycles.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Callable, Iterator, Mapping

#: Log-scale latency bounds in seconds: 1 µs doubling up to ~33 s.
LATENCY_BUCKETS: tuple[float, ...] = tuple(
    1e-6 * 2 ** exponent for exponent in range(26))

#: Log-scale size/count bounds: 1 doubling up to 2**20.
SIZE_BUCKETS: tuple[float, ...] = tuple(
    float(2 ** exponent) for exponent in range(21))


def _label_key(labels: Mapping[str, str] | None,
               ) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(key), str(value))
                        for key, value in labels.items()))


class Counter:
    """A thread-striped monotone counter (see the module docstring)."""

    kind = "counter"
    enabled = True

    __slots__ = ("name", "labels", "help", "_cells", "_base", "_lock")

    def __init__(self, name: str, *,
                 labels: Mapping[str, str] | None = None,
                 help: str = "") -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.help = help
        #: thread id -> single-element list (the thread's private cell).
        self._cells: dict[int, list[int]] = {}
        self._base = 0
        self._lock = threading.Lock()

    def add(self, delta: int = 1) -> None:
        """Add *delta* from the calling thread (lock-free steady state)."""
        cell = self._cells.get(threading.get_ident())
        if cell is None:
            with self._lock:
                cell = self._cells.setdefault(threading.get_ident(), [0])
        cell[0] += delta

    @property
    def value(self) -> int:
        """Fold of all cells (exact once writers quiesce)."""
        return self._base + sum(cell[0] for cell in
                                list(self._cells.values()))

    def set(self, value: int) -> None:
        """Reset to an absolute *value* (recovery, tests, aliases)."""
        with self._lock:
            self._cells = {}
            self._base = value

    def snapshot_value(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value: stored, or computed by a callback."""

    kind = "gauge"
    enabled = True

    __slots__ = ("name", "labels", "help", "fn", "_value")

    def __init__(self, name: str, fn: Callable[[], Any] | None = None, *,
                 labels: Mapping[str, str] | None = None,
                 help: str = "") -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.help = help
        self.fn = fn
        self._value: Any = 0

    def set(self, value: Any) -> None:
        """Store *value* (ignored for callback gauges)."""
        self._value = value

    @property
    def value(self) -> Any:
        """Current value (callback gauges evaluate their callback)."""
        if self.fn is not None:
            return self.fn()
        return self._value

    def snapshot_value(self) -> Any:
        return self.value


class Histogram:
    """A distribution over fixed log-scale buckets, striped per thread.

    Each thread owns one private cell list: ``len(bounds) + 1`` bucket
    counts (the last is the +Inf bucket) followed by a running sum and
    a running max. ``observe`` is a bisect plus three list writes —
    no lock, no allocation. Folds (count, sum, max, cumulative
    buckets, percentile estimates) read all cells; like the counter
    fold they are exact once writers quiesce.
    """

    kind = "histogram"
    enabled = True

    __slots__ = ("name", "labels", "help", "unit", "bounds",
                 "_num_buckets", "_sum_index", "_max_index",
                 "_cells", "_lock")

    def __init__(self, name: str, *,
                 bounds: tuple[float, ...] = LATENCY_BUCKETS,
                 labels: Mapping[str, str] | None = None,
                 help: str = "", unit: str = "") -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be ascending and "
                             "non-empty")
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.help = help
        self.unit = unit
        self.bounds = tuple(float(bound) for bound in bounds)
        self._num_buckets = len(self.bounds) + 1
        self._sum_index = self._num_buckets
        self._max_index = self._num_buckets + 1
        #: thread id -> [bucket counts..., sum, max].
        self._cells: dict[int, list[float]] = {}
        self._lock = threading.Lock()

    def _cell(self) -> list[float]:
        cell = self._cells.get(threading.get_ident())
        if cell is None:
            with self._lock:
                cell = self._cells.setdefault(
                    threading.get_ident(),
                    [0] * self._num_buckets + [0.0, 0.0])
        return cell

    def observe(self, value: float) -> None:
        """Record one observation (lock-free steady state)."""
        cell = self._cell()
        cell[bisect_left(self.bounds, value)] += 1
        cell[self._sum_index] += value
        if value > cell[self._max_index]:
            cell[self._max_index] = value

    def _fold(self) -> tuple[list[int], float, float]:
        """``(per-bucket counts, sum, max)`` across all cells."""
        buckets = [0] * self._num_buckets
        total = 0.0
        maximum = 0.0
        for cell in list(self._cells.values()):
            for index in range(self._num_buckets):
                buckets[index] += cell[index]
            total += cell[self._sum_index]
            maximum = max(maximum, cell[self._max_index])
        return buckets, total, maximum

    @property
    def count(self) -> int:
        """Total observations."""
        return sum(self._fold()[0])

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._fold()[1]

    def percentile(self, quantile: float) -> float:
        """Bucket-resolution estimate of the *quantile* (0..1)."""
        buckets, _, maximum = self._fold()
        return _bucket_percentile(buckets, self.bounds, maximum, quantile)

    def snapshot_value(self) -> dict[str, Any]:
        """JSON-friendly fold: count/sum/max/percentiles/buckets."""
        buckets, total, maximum = self._fold()
        return _histogram_snapshot(buckets, self.bounds, total, maximum)


def _bucket_percentile(buckets: list[int], bounds: tuple[float, ...],
                       maximum: float, quantile: float) -> float:
    count = sum(buckets)
    if count == 0:
        return 0.0
    rank = quantile * count
    cumulative = 0
    for index, bucket_count in enumerate(buckets):
        cumulative += bucket_count
        if cumulative >= rank:
            return bounds[index] if index < len(bounds) else maximum
    return maximum


def _histogram_snapshot(buckets: list[int], bounds: tuple[float, ...],
                        total: float, maximum: float) -> dict[str, Any]:
    count = sum(buckets)
    cumulative: list[list[Any]] = []
    running = 0
    for index, bucket_count in enumerate(buckets):
        running += bucket_count
        upper = bounds[index] if index < len(bounds) else "inf"
        cumulative.append([upper, running])
    return {
        "count": count,
        "sum": total,
        "max": maximum,
        "p50": _bucket_percentile(buckets, bounds, maximum, 0.50),
        "p99": _bucket_percentile(buckets, bounds, maximum, 0.99),
        "buckets": cumulative,
    }


# ---------------------------------------------------------------------------
# No-op instruments (the disabled registry's hand-outs)
# ---------------------------------------------------------------------------

class NullCounter:
    """No-op counter: the disabled registry's hand-out."""

    kind = "counter"
    enabled = False
    name = ""
    labels: dict[str, str] = {}
    value = 0

    __slots__ = ()

    def add(self, delta: int = 1) -> None:
        pass

    def set(self, value: int) -> None:
        pass

    def snapshot_value(self) -> int:
        return 0


class NullGauge:
    """No-op gauge."""

    kind = "gauge"
    enabled = False
    name = ""
    labels: dict[str, str] = {}
    value = 0
    fn = None

    __slots__ = ()

    def set(self, value: Any) -> None:
        pass

    def snapshot_value(self) -> int:
        return 0


class NullHistogram:
    """No-op histogram."""

    kind = "histogram"
    enabled = False
    name = ""
    labels: dict[str, str] = {}
    bounds: tuple[float, ...] = ()
    count = 0
    sum = 0.0

    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def percentile(self, quantile: float) -> float:
        return 0.0

    def snapshot_value(self) -> dict[str, Any]:
        return {"count": 0, "sum": 0.0, "max": 0.0, "p50": 0.0,
                "p99": 0.0, "buckets": []}


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

class MetricsRegistry:
    """Get-or-create home of every instrument of one engine.

    Each :class:`~repro.core.db.Database` owns one registry and passes
    it to its components; components constructed standalone (tests
    building a bare ``Table`` or ``LogManager``) lazily create a
    private one, so instrumentation code never branches on "is there a
    registry".
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]],
                            Any] = {}

    def _get_or_create(self, name: str,
                       labels: Mapping[str, str] | None,
                       kind: str, factory: Callable[[], Any]) -> Any:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
            elif metric.kind != kind:
                raise ValueError(
                    "metric %r already registered as a %s"
                    % (name, metric.kind))
            return metric

    def counter(self, name: str, *,
                labels: Mapping[str, str] | None = None,
                help: str = "") -> Any:
        """Get-or-create the counter *name* (with *labels*)."""
        if not self.enabled:
            return NULL_COUNTER
        return self._get_or_create(
            name, labels, "counter",
            lambda: Counter(name, labels=labels, help=help))

    def gauge(self, name: str, fn: Callable[[], Any] | None = None, *,
              labels: Mapping[str, str] | None = None,
              help: str = "") -> Any:
        """Get-or-create the gauge *name* (*fn* ignored if it exists)."""
        if not self.enabled:
            return NULL_GAUGE
        return self._get_or_create(
            name, labels, "gauge",
            lambda: Gauge(name, fn, labels=labels, help=help))

    def histogram(self, name: str, *,
                  bounds: tuple[float, ...] = LATENCY_BUCKETS,
                  labels: Mapping[str, str] | None = None,
                  help: str = "", unit: str = "") -> Any:
        """Get-or-create the histogram *name*."""
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._get_or_create(
            name, labels, "histogram",
            lambda: Histogram(name, bounds=bounds, labels=labels,
                              help=help, unit=unit))

    def iter_metrics(self) -> Iterator[Any]:
        """Every registered instrument, sorted by (name, labels)."""
        with self._lock:
            items = sorted(self._metrics.items())
        for _, metric in items:
            yield metric

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Nested ``{domain: {metric: value}}`` fold.

        Label sets aggregate: counters and gauges of the same name sum
        across labels, histograms merge bucket-wise (all label sets of
        one histogram name share the same bounds by construction —
        they come from the same instrumentation site).
        """
        grouped: dict[str, list[Any]] = {}
        for metric in self.iter_metrics():
            grouped.setdefault(metric.name, []).append(metric)
        domains: dict[str, dict[str, Any]] = {}
        for name, metrics in grouped.items():
            domain, _, short = name.partition(".")
            if not short:
                domain, short = "engine", name
            first = metrics[0]
            if first.kind == "histogram":
                buckets = [0] * (len(first.bounds) + 1)
                total = 0.0
                maximum = 0.0
                for metric in metrics:
                    folded, metric_sum, metric_max = metric._fold()
                    for index, bucket_count in enumerate(folded):
                        buckets[index] += bucket_count
                    total += metric_sum
                    maximum = max(maximum, metric_max)
                value: Any = _histogram_snapshot(buckets, first.bounds,
                                                 total, maximum)
            else:
                value = sum(metric.snapshot_value() for metric in metrics)
            domains.setdefault(domain, {})[short] = value
        return domains


# ---------------------------------------------------------------------------
# Alias descriptors (the old ad-hoc ``stat_*`` attribute surface)
# ---------------------------------------------------------------------------

class CounterStat:
    """Class-level alias: ``obj.stat_x`` ⇄ registry counter.

    ``stat_x = CounterStat("_stat_x")`` replaces the old
    property+setter boilerplate: reads fold the backing counter,
    writes reset it (``obj.stat_x += 1`` therefore still works — a
    fold followed by an absolute reset, fine off the hot path; hot
    paths call ``obj._stat_x.add()`` directly).
    """

    def __init__(self, attr: str, doc: str = "") -> None:
        self._attr = attr
        self.__doc__ = doc

    def __get__(self, obj: Any, owner: type | None = None) -> Any:
        if obj is None:
            return self
        return getattr(obj, self._attr).value

    def __set__(self, obj: Any, value: int) -> None:
        getattr(obj, self._attr).set(value)


class GaugeStat:
    """Class-level alias: ``obj.stat_x`` ⇄ registry gauge."""

    def __init__(self, attr: str, doc: str = "") -> None:
        self._attr = attr
        self.__doc__ = doc

    def __get__(self, obj: Any, owner: type | None = None) -> Any:
        if obj is None:
            return self
        return getattr(obj, self._attr).value

    def __set__(self, obj: Any, value: Any) -> None:
        getattr(obj, self._attr).set(value)
