"""Observability
=============

Engine-wide metrics, tracing, and profiling for the L-Store
reproduction. One :class:`MetricsRegistry` per
:class:`~repro.core.db.Database` holds every counter, gauge, and
histogram; components built standalone create a private registry so
instrumented code never branches on "is observability wired". With
``EngineConfig.obs_metrics=False`` the registry hands out shared no-op
instruments and the whole subsystem costs one attribute load per site
— that configuration is the "pre-obs floor" the overhead benchmark
(``benchmarks/test_obs_overhead.py``) guards against.

Surfaces
--------

* ``Database.metrics()`` — nested ``{domain: {metric: value}}``
  snapshot (labels aggregated), plus a ``"recovery"`` domain from the
  last :class:`~repro.wal.recovery.RecoveryReport`.
* :func:`render_text` — Prometheus exposition text (labels kept as
  series; counters suffixed ``_total``; histograms as
  ``_bucket``/``_sum``/``_count``).
* :class:`MetricsSampler` — JSONL time series on a daemon thread,
  started automatically when ``EngineConfig.obs_sample_interval`` is
  set (path: ``obs_sample_path`` or ``<data_dir>/metrics.jsonl``).
* :func:`span` / ``TRACE`` — structured spans around coarse engine
  operations (merge, scan, group-commit drain, checkpoint, recovery),
  zero-cost unless enabled via :func:`enable_tracing` or
  ``REPRO_OBS_TRACE=1``.

Metric names and label conventions
----------------------------------

Names are dotted ``domain.metric``; the domain becomes the top-level
snapshot key. The only label in use is ``table=<name>`` on per-table
instruments (write path, scan planes); the snapshot sums across label
sets, the renderer keeps them separate. Current inventory:

========= =====================================================================
domain    metrics
========= =====================================================================
txn       ``begins``, ``commits``, ``aborts``, ``retries``,
          ``validation_failures``, ``ww_conflicts`` [table],
          ``deleted_conflicts`` [table], ``active`` (gauge),
          ``commit_seconds`` (histogram)
write     ``inserts``, ``updates``, ``deletes``, ``flat_appends``,
          ``aborted_tails``, ``latch_waits`` — all [table]
merge     ``ranges_merged``, ``insert_ranges_merged``,
          ``records_consolidated``, ``retries``, ``backlog`` (gauge),
          ``duration_seconds`` (histogram)
scan      ``partitions_vectorized``, ``partitions_version``,
          ``partitions_row``, ``plane_degradations``,
          ``slice_cache_hits``, ``slice_cache_misses`` — all [table]
wal       ``appends``, ``flushes``, ``piggybacked_syncs``,
          ``sync_retries``, ``salvaged_bytes``, ``segments_truncated``,
          ``last_checkpoint_lsn``/``last_checkpoint_seconds`` (gauges),
          ``fsync_seconds``/``checkpoint_seconds`` (histograms),
          ``group_commit_batch`` (size histogram)
gc        ``entries_swept``, ``low_water_lag``, ``txn_entries``,
          ``pages_pending``, ``pages_reclaimed``, ``active_queries``
          (gauges except ``entries_swept``)
recovery  replay report of the last recovery (``records_total``,
          ``records_replayed``, ``records_skipped``, ``checkpoint_lsn``,
          ``salvaged_bytes``, ``quarantined_frames``, ``clean``) —
          snapshot-only, sourced from ``Database.recovery_report``
========= =====================================================================

Downstream consumers (ROADMAP)
------------------------------

The next ROADMAP items decide on these signals rather than introduce
their own: contention-adaptive CC watches ``txn.validation_failures``
and ``txn.ww_conflicts`` rates to pick a CC mode; shard-per-process
serving exports ``render_text`` per shard and balances on
``merge.backlog`` and ``txn.commit_seconds`` quantiles; bufferpool
spill uses ``gc.pages_pending`` and the scan-plane mix
(``scan.partitions_*``) to choose eviction victims. Add new metrics
under an existing domain when instrumenting those PRs; new domains
need a row in the table above.
"""

from .registry import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    CounterStat,
    Gauge,
    GaugeStat,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)
from .render import render_text
from .sampler import MetricsSampler
from .trace import (
    TRACE,
    disable_tracing,
    enable_tracing,
    span,
    trace_event,
)

__all__ = [
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "Counter",
    "CounterStat",
    "Gauge",
    "GaugeStat",
    "Histogram",
    "MetricsRegistry",
    "MetricsSampler",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "TRACE",
    "disable_tracing",
    "enable_tracing",
    "render_text",
    "span",
    "trace_event",
]
