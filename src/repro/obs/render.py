"""Prometheus exposition-format renderer for a metrics registry.

:func:`render_text` turns every registered instrument into the
text-based exposition format: dotted names become underscored with an
``lstore_`` prefix, counters gain ``_total``, histograms emit
cumulative ``_bucket{le="..."}`` series ending in ``+Inf`` plus
``_sum``/``_count``. Unlike :meth:`MetricsRegistry.snapshot`, label
sets are **not** aggregated here — each becomes its own series, which
is what a scraper wants.
"""

from __future__ import annotations

import re
from typing import Any

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, prefix: str) -> str:
    flat = _NAME_SANITIZE.sub("_", name.replace(".", "_"))
    return "%s_%s" % (prefix, flat) if prefix else flat


def _escape_label(value: Any) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels_text(labels: dict[str, str],
                 extra: tuple[str, str] | None = None) -> str:
    pairs = [(key, labels[key]) for key in sorted(labels)]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    return "{%s}" % ",".join('%s="%s"' % (key, _escape_label(value))
                             for key, value in pairs)


def _format_number(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    try:
        return repr(float(value))
    except (TypeError, ValueError):
        return "0"


def render_text(source: Any, *, prefix: str = "lstore") -> str:
    """Render *source* (a registry, or anything with a
    ``metrics_registry`` attribute such as a Database) as Prometheus
    exposition text."""
    registry = getattr(source, "metrics_registry", source)
    families: dict[str, list[Any]] = {}
    for metric in registry.iter_metrics():
        families.setdefault(metric.name, []).append(metric)

    lines: list[str] = []
    for name in sorted(families):
        metrics = families[name]
        first = metrics[0]
        base = _metric_name(name, prefix)
        exposed = base + "_total" if first.kind == "counter" else base
        help_text = first.help or ("%s %s" % (first.kind, name))
        lines.append("# HELP %s %s" % (exposed, help_text.replace("\n", " ")))
        lines.append("# TYPE %s %s" % (exposed, first.kind))
        for metric in metrics:
            if metric.kind == "histogram":
                folded = metric.snapshot_value()
                for upper, cumulative in folded["buckets"]:
                    le = "+Inf" if upper == "inf" else repr(float(upper))
                    lines.append("%s_bucket%s %d" % (
                        base, _labels_text(metric.labels, ("le", le)),
                        cumulative))
                labels = _labels_text(metric.labels)
                lines.append("%s_sum%s %s" % (
                    base, labels, _format_number(folded["sum"])))
                lines.append("%s_count%s %d" % (
                    base, labels, folded["count"]))
            else:
                lines.append("%s%s %s" % (
                    exposed, _labels_text(metric.labels),
                    _format_number(metric.snapshot_value())))
    return "\n".join(lines) + "\n" if lines else ""
