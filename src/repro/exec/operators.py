"""Pluggable scan operators: filters and combinable aggregates.

Every aggregate is a small state machine with an explicit **combine**
step, so per-partition partial states merge deterministically no matter
how the executor schedules the partitions:

``create() → add(state, rid, row)* → combine(a, b)* → finalize(state)``

Aggregate objects themselves are immutable descriptions — all mutable
accumulation lives in the *state* values they hand out — so one
instance can be shared by many worker threads.

Besides the per-row plane (``add``/``fold`` over ``{column: value}``
dicts), operators optionally expose a **vectorised plane** consuming
whole NumPy column slices of a clean merged partition
(:meth:`~repro.core.table.Table.read_column_slices`):

* ``Filter.vector`` (when set) maps a value array to a boolean match
  array; :meth:`Filter.mask` combines it with the column's ∅ mask so a
  null never matches, exactly like the row plane.
* ``Aggregate.fold_columns(state, rids, columns, mask)`` folds every
  record selected by *mask* in one array operation
  (``supports_vectorized`` advertises the capability).

Both planes share states, ``combine``, and ``finalize``, so the
executor freely mixes them — vectorised slices for the clean bulk of a
partition, per-row ``add`` for the dirty patched records — and the
partial states merge as usual.

Null semantics follow the storage layer's implicit ∅: an aggregated
column whose value is ∅ contributes nothing (matching
``Table.scan_sum``), a filter never matches ∅, and a group-by key of ∅
drops the row.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from ..core.types import NULL, is_null

# Throughout the vectorised plane, *columns* is the mapping produced by
# Table.read_column_slices: {data_column: (values, nulls)} where values
# is int64 (0 at ∅ slots) and nulls is the boolean ∅ mask.


# ---------------------------------------------------------------------------
# Filters
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Filter:
    """A predicate over one data column of a scanned row.

    ``predicate`` receives the (non-∅) column value; rows whose value is
    the implicit null never match, mirroring SQL's three-valued logic
    collapsing to "not selected". ``vector``, when not None, is the
    predicate's array form (value array → boolean match array) used by
    the vectorised plane; filters built by the module helpers
    (:func:`eq` … :func:`between`) carry it automatically for integer
    comparison values.
    """

    column: int
    predicate: Callable[[Any], bool]
    description: str = "?"
    vector: Callable[[Any], Any] | None = None

    def matches(self, row: dict[int, Any]) -> bool:
        """True when the row's column value passes the predicate."""
        value = row.get(self.column)
        if value is None or is_null(value):
            return False
        return self.predicate(value)

    def mask(self, columns: Any) -> Any:
        """Boolean match array over one partition's column slices.

        ∅ slots never match (their value bytes are the placeholder 0),
        so the vectorised plane keeps the row plane's three-valued
        logic exactly.
        """
        values, nulls = columns[self.column]
        return self.vector(values) & ~nulls

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Filter(col=%d %s)" % (self.column, self.description)


def _vector_comparison(op: Callable[[Any, Any], Any],
                       *operands: Any) -> Callable[[Any], Any] | None:
    """Array form of a comparison, or None for non-int operands.

    NumPy comparisons against non-numeric operands either fail or
    collapse to scalars, so the vector plane is only offered when every
    comparison value is a plain int (bool excluded — it is an int
    subclass with different equality semantics in filters).
    """
    if any(type(operand) is not int for operand in operands):
        return None
    return lambda values: op(values, *operands)


def eq(column: int, value: Any) -> Filter:
    """``column == value``."""
    return Filter(column, lambda v: v == value, "== %r" % (value,),
                  _vector_comparison(lambda a, x: a == x, value))


def ne(column: int, value: Any) -> Filter:
    """``column != value``."""
    return Filter(column, lambda v: v != value, "!= %r" % (value,),
                  _vector_comparison(lambda a, x: a != x, value))


def lt(column: int, value: Any) -> Filter:
    """``column < value``."""
    return Filter(column, lambda v: v < value, "< %r" % (value,),
                  _vector_comparison(lambda a, x: a < x, value))


def le(column: int, value: Any) -> Filter:
    """``column <= value``."""
    return Filter(column, lambda v: v <= value, "<= %r" % (value,),
                  _vector_comparison(lambda a, x: a <= x, value))


def gt(column: int, value: Any) -> Filter:
    """``column > value``."""
    return Filter(column, lambda v: v > value, "> %r" % (value,),
                  _vector_comparison(lambda a, x: a > x, value))


def ge(column: int, value: Any) -> Filter:
    """``column >= value``."""
    return Filter(column, lambda v: v >= value, ">= %r" % (value,),
                  _vector_comparison(lambda a, x: a >= x, value))


def between(column: int, low: Any, high: Any) -> Filter:
    """``low <= column <= high`` (inclusive, like ``Query.sum``)."""
    return Filter(column, lambda v: low <= v <= high,
                  "between %r and %r" % (low, high),
                  _vector_comparison(
                      lambda a, lo, hi: (a >= lo) & (a <= hi), low, high))


def matches_all(filters: Sequence[Filter], row: dict[int, Any]) -> bool:
    """True when *row* passes every filter (empty sequence: always)."""
    for item in filters:
        if not item.matches(row):
            return False
    return True


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------

class Aggregate(abc.ABC):
    """One combinable aggregate over scanned rows.

    Subclasses that can consume whole column slices set
    ``supports_vectorized`` and implement :meth:`fold_columns`; the
    executor then feeds them the clean bulk of each merged partition
    array-at-a-time and reserves :meth:`add` for the dirty patched
    records. Both planes produce the same state values, so
    :meth:`combine`/:meth:`finalize` are shared.
    """

    #: True when :meth:`fold_columns` is implemented.
    supports_vectorized = False

    @property
    @abc.abstractmethod
    def columns(self) -> tuple[int, ...]:
        """Data columns this aggregate needs fetched."""

    @abc.abstractmethod
    def create(self) -> Any:
        """Fresh (empty) accumulation state."""

    @abc.abstractmethod
    def add(self, state: Any, rid: int, row: dict[int, Any]) -> Any:
        """Fold one visible row into *state*; returns the new state."""

    @abc.abstractmethod
    def combine(self, left: Any, right: Any) -> Any:
        """Merge two partial states (associative; *left* is earlier in
        partition order, which only matters for order-sensitive results
        such as :class:`CollectRows`)."""

    def finalize(self, state: Any) -> Any:
        """Shape the final state into the user-facing result."""
        return state

    def fold(self, state: Any, rows: Any) -> Any:
        """Fold a whole ``(rid, row)`` stream (unfiltered fast path).

        The default just loops :meth:`add`; hot aggregates override it
        with a tight loop to shed the per-row method-call cost.
        """
        add = self.add
        for rid, row in rows:
            state = add(state, rid, row)
        return state

    def fold_columns(self, state: Any, rids: Any, columns: Any,
                     mask: Any) -> Any:
        """Fold every record *mask* selects, array-at-a-time.

        *columns* maps each needed data column to its ``(values,
        nulls)`` slice pair and *rids* is the int64 base-RID array of
        the partition, all aligned with *mask*. Only called when
        ``supports_vectorized`` is True.
        """
        raise NotImplementedError(
            "%s has no vectorised plane" % type(self).__name__)


class ColumnSum(Aggregate):
    """SUM of one column (∅ values contribute nothing)."""

    supports_vectorized = True

    def __init__(self, column: int) -> None:
        self.column = column

    @property
    def columns(self) -> tuple[int, ...]:
        return (self.column,)

    def create(self) -> int:
        return 0

    def add(self, state: int, rid: int, row: dict[int, Any]) -> int:
        value = row[self.column]
        if is_null(value):
            return state
        return state + value

    def combine(self, left: int, right: int) -> int:
        return left + right

    def fold(self, state: int, rows: Any) -> int:
        column = self.column
        for _, row in rows:
            value = row[column]
            if not is_null(value):
                state += value
        return state

    def fold_values(self, state: int, values: Any) -> int:
        """Fold raw column values (keyed dict-free fast path)."""
        for value in values:
            if not is_null(value):
                state += value
        return state

    def fold_columns(self, state: int, rids: Any, columns: Any,
                     mask: Any) -> int:
        values, nulls = columns[self.column]
        # ∅ slots carry 0 in the slice, so masking nulls out of the
        # selection (not the values) keeps the sum exact.
        return state + int(values[mask & ~nulls].sum())


class ColumnCount(Aggregate):
    """COUNT(*) (``column=None``) or COUNT(column) skipping ∅."""

    supports_vectorized = True

    def __init__(self, column: int | None = None) -> None:
        self.column = column

    @property
    def columns(self) -> tuple[int, ...]:
        return () if self.column is None else (self.column,)

    def create(self) -> int:
        return 0

    def add(self, state: int, rid: int, row: dict[int, Any]) -> int:
        if self.column is not None and is_null(row[self.column]):
            return state
        return state + 1

    def combine(self, left: int, right: int) -> int:
        return left + right

    def fold_values(self, state: int, values: Any) -> int:
        """Fold raw column values (keyed dict-free fast path)."""
        for value in values:
            if not is_null(value):
                state += 1
        return state

    def fold_columns(self, state: int, rids: Any, columns: Any,
                     mask: Any) -> int:
        if self.column is None:
            return state + int(mask.sum())
        nulls = columns[self.column][1]
        return state + int((mask & ~nulls).sum())


class ColumnMin(Aggregate):
    """MIN of one column; None over an empty (or all-∅) input."""

    supports_vectorized = True

    def __init__(self, column: int) -> None:
        self.column = column

    @property
    def columns(self) -> tuple[int, ...]:
        return (self.column,)

    def create(self) -> Any:
        return None

    def add(self, state: Any, rid: int, row: dict[int, Any]) -> Any:
        value = row[self.column]
        if is_null(value):
            return state
        if state is None or value < state:
            return value
        return state

    def combine(self, left: Any, right: Any) -> Any:
        if left is None:
            return right
        if right is None:
            return left
        return left if left <= right else right

    def fold_values(self, state: Any, values: Any) -> Any:
        """Fold raw column values (keyed dict-free fast path)."""
        for value in values:
            if not is_null(value) and (state is None or value < state):
                state = value
        return state

    def fold_columns(self, state: Any, rids: Any, columns: Any,
                     mask: Any) -> Any:
        values, nulls = columns[self.column]
        selected = values[mask & ~nulls]
        if not selected.size:
            return state
        low = int(selected.min())
        return low if state is None or low < state else state


class ColumnMax(Aggregate):
    """MAX of one column; None over an empty (or all-∅) input."""

    supports_vectorized = True

    def __init__(self, column: int) -> None:
        self.column = column

    @property
    def columns(self) -> tuple[int, ...]:
        return (self.column,)

    def create(self) -> Any:
        return None

    def add(self, state: Any, rid: int, row: dict[int, Any]) -> Any:
        value = row[self.column]
        if is_null(value):
            return state
        if state is None or value > state:
            return value
        return state

    def combine(self, left: Any, right: Any) -> Any:
        if left is None:
            return right
        if right is None:
            return left
        return left if left >= right else right

    def fold_values(self, state: Any, values: Any) -> Any:
        """Fold raw column values (keyed dict-free fast path)."""
        for value in values:
            if not is_null(value) and (state is None or value > state):
                state = value
        return state

    def fold_columns(self, state: Any, rids: Any, columns: Any,
                     mask: Any) -> Any:
        values, nulls = columns[self.column]
        selected = values[mask & ~nulls]
        if not selected.size:
            return state
        high = int(selected.max())
        return high if state is None or high > state else state


class ColumnAvg(Aggregate):
    """AVG of one column; None over an empty (or all-∅) input.

    State is an exact ``(sum, count)`` pair, so partition scheduling
    cannot perturb the result — the division happens once, at
    :meth:`finalize`.
    """

    supports_vectorized = True

    def __init__(self, column: int) -> None:
        self.column = column

    @property
    def columns(self) -> tuple[int, ...]:
        return (self.column,)

    def create(self) -> tuple[int, int]:
        return (0, 0)

    def add(self, state: tuple[int, int], rid: int,
            row: dict[int, Any]) -> tuple[int, int]:
        value = row[self.column]
        if is_null(value):
            return state
        return (state[0] + value, state[1] + 1)

    def combine(self, left: tuple[int, int],
                right: tuple[int, int]) -> tuple[int, int]:
        return (left[0] + right[0], left[1] + right[1])

    def finalize(self, state: tuple[int, int]) -> float | None:
        total, count = state
        if count == 0:
            return None
        return total / count

    def fold_values(self, state: tuple[int, int],
                    values: Any) -> tuple[int, int]:
        """Fold raw column values (keyed dict-free fast path)."""
        total, count = state
        for value in values:
            if not is_null(value):
                total += value
                count += 1
        return (total, count)

    def fold_columns(self, state: tuple[int, int], rids: Any,
                     columns: Any, mask: Any) -> tuple[int, int]:
        values, nulls = columns[self.column]
        selected = mask & ~nulls
        return (state[0] + int(values[selected].sum()),
                state[1] + int(selected.sum()))


class GroupBy(Aggregate):
    """Single-column GROUP BY around an inner aggregate.

    ``make_inner`` builds one fresh inner :class:`Aggregate` used as the
    per-group template (inner aggregates are stateless descriptions, so
    one template serves every group). Rows whose group key is ∅ are
    dropped.
    """

    def __init__(self, key_column: int,
                 make_inner: Callable[[], Aggregate]) -> None:
        self.key_column = key_column
        self.inner = make_inner()

    @property
    def supports_vectorized(self) -> bool:
        """Vectorised whenever the inner aggregate is."""
        return self.inner.supports_vectorized

    @property
    def columns(self) -> tuple[int, ...]:
        seen = dict.fromkeys((self.key_column,) + self.inner.columns)
        return tuple(seen)

    def create(self) -> dict[Any, Any]:
        return {}

    def add(self, state: dict[Any, Any], rid: int,
            row: dict[int, Any]) -> dict[Any, Any]:
        key = row[self.key_column]
        if is_null(key):
            return state
        inner_state = state.get(key)
        if inner_state is None and key not in state:
            inner_state = self.inner.create()
        state[key] = self.inner.add(inner_state, rid, row)
        return state

    def combine(self, left: dict[Any, Any],
                right: dict[Any, Any]) -> dict[Any, Any]:
        for key, inner_state in right.items():
            if key in left:
                left[key] = self.inner.combine(left[key], inner_state)
            else:
                left[key] = inner_state
        return left

    def finalize(self, state: dict[Any, Any]) -> dict[Any, Any]:
        return {key: self.inner.finalize(inner_state)
                for key, inner_state in state.items()}

    def fold_columns(self, state: dict[Any, Any], rids: Any,
                     columns: Any, mask: Any) -> dict[Any, Any]:
        """Group via factorised keys; ∅ keys drop their rows.

        The selected keys are factorised once (``np.unique``), then
        SUM/COUNT inners accumulate per group with one ``np.add.at``
        scatter (exact int64 arithmetic — the bincount idea without its
        float weights); any other vectorised inner folds per group
        through a fancy-indexed submask, which stays array-at-a-time
        per group and costs O(groups) passes.
        """
        key_values, key_nulls = columns[self.key_column]
        selected = np.flatnonzero(mask & ~key_nulls)
        if not selected.size:
            return state
        uniques, inverse = np.unique(key_values[selected],
                                     return_inverse=True)
        inner = self.inner
        if isinstance(inner, ColumnSum):
            # ∅ slots carry 0 in the slice, so the raw values are
            # already the correct weights.
            weights = columns[inner.column][0][selected]
            sums = np.zeros(len(uniques), dtype=np.int64)
            np.add.at(sums, inverse, weights)
            for key, total in zip(uniques.tolist(), sums.tolist()):
                state[key] = state[key] + total if key in state else total
            return state
        if isinstance(inner, ColumnCount):
            if inner.column is None:
                hits = np.ones(len(selected), dtype=np.int64)
            else:
                hits = (~columns[inner.column][1][selected]).astype(
                    np.int64)
            counts = np.zeros(len(uniques), dtype=np.int64)
            np.add.at(counts, inverse, hits)
            # A group whose every row has ∅ in the counted column still
            # exists with count 0 (row-plane parity: add() creates the
            # group and counts nothing).
            for key, count in zip(uniques.tolist(), counts.tolist()):
                state[key] = state[key] + count if key in state else count
            return state
        template = np.zeros(len(mask), dtype=bool)
        for position, key in enumerate(uniques.tolist()):
            submask = template.copy()
            submask[selected[inverse == position]] = True
            inner_state = state.get(key)
            if inner_state is None and key not in state:
                inner_state = inner.create()
            state[key] = inner.fold_columns(inner_state, rids, columns,
                                            submask)
        return state


class CollectRows(Aggregate):
    """Materialise ``(rid, values)`` pairs (``select_range`` backend).

    Partials concatenate in partition order, so the overall result is
    partition-ordered across the plan; within a vectorised partition
    the clean bulk comes out RID-ordered with the patched (dirty)
    records appended after it — callers needing a total order re-sort
    against their index items (``select_range``) or by RID.
    """

    supports_vectorized = True

    def __init__(self, fetch_columns: Sequence[int]) -> None:
        self.fetch_columns = tuple(fetch_columns)

    @property
    def columns(self) -> tuple[int, ...]:
        return self.fetch_columns

    def create(self) -> list[tuple[int, dict[int, Any]]]:
        return []

    def add(self, state: list, rid: int, row: dict[int, Any]) -> list:
        state.append((rid, row))
        return state

    def combine(self, left: list, right: list) -> list:
        left.extend(right)
        return left

    def fold(self, state: list, rows: Any) -> list:
        state.extend(rows)
        return state

    def fold_columns(self, state: list, rids: Any, columns: Any,
                     mask: Any) -> list:
        """Materialise the selected slice records as row dicts.

        The dict framing matches the row plane exactly (∅ where the
        column slice is null), so mixed-plane scans produce
        indistinguishable rows; the win over the row plane is skipping
        the per-record chain resolution — which under a time-travel
        predicate is a full lineage walk per record.
        """
        offsets = np.flatnonzero(mask)
        if not offsets.size:
            return state
        rid_list = rids[offsets].tolist()
        sliced = [
            (column, columns[column][0][offsets].tolist(),
             columns[column][1][offsets].tolist())
            for column in self.fetch_columns
        ]
        for position, rid in enumerate(rid_list):
            state.append((rid, {
                column: NULL if nulls[position] else values[position]
                for column, values, nulls in sliced
            }))
        return state
