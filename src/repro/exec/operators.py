"""Pluggable scan operators: filters and combinable aggregates.

Every aggregate is a small state machine with an explicit **combine**
step, so per-partition partial states merge deterministically no matter
how the executor schedules the partitions:

``create() → add(state, rid, row)* → combine(a, b)* → finalize(state)``

Aggregate objects themselves are immutable descriptions — all mutable
accumulation lives in the *state* values they hand out — so one
instance can be shared by many worker threads.

Null semantics follow the storage layer's implicit ∅: an aggregated
column whose value is ∅ contributes nothing (matching
``Table.scan_sum``), a filter never matches ∅, and a group-by key of ∅
drops the row.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..core.types import is_null


# ---------------------------------------------------------------------------
# Filters
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Filter:
    """A predicate over one data column of a scanned row.

    ``predicate`` receives the (non-∅) column value; rows whose value is
    the implicit null never match, mirroring SQL's three-valued logic
    collapsing to "not selected".
    """

    column: int
    predicate: Callable[[Any], bool]
    description: str = "?"

    def matches(self, row: dict[int, Any]) -> bool:
        """True when the row's column value passes the predicate."""
        value = row.get(self.column)
        if value is None or is_null(value):
            return False
        return self.predicate(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Filter(col=%d %s)" % (self.column, self.description)


def eq(column: int, value: Any) -> Filter:
    """``column == value``."""
    return Filter(column, lambda v: v == value, "== %r" % (value,))


def ne(column: int, value: Any) -> Filter:
    """``column != value``."""
    return Filter(column, lambda v: v != value, "!= %r" % (value,))


def lt(column: int, value: Any) -> Filter:
    """``column < value``."""
    return Filter(column, lambda v: v < value, "< %r" % (value,))


def le(column: int, value: Any) -> Filter:
    """``column <= value``."""
    return Filter(column, lambda v: v <= value, "<= %r" % (value,))


def gt(column: int, value: Any) -> Filter:
    """``column > value``."""
    return Filter(column, lambda v: v > value, "> %r" % (value,))


def ge(column: int, value: Any) -> Filter:
    """``column >= value``."""
    return Filter(column, lambda v: v >= value, ">= %r" % (value,))


def between(column: int, low: Any, high: Any) -> Filter:
    """``low <= column <= high`` (inclusive, like ``Query.sum``)."""
    return Filter(column, lambda v: low <= v <= high,
                  "between %r and %r" % (low, high))


def matches_all(filters: Sequence[Filter], row: dict[int, Any]) -> bool:
    """True when *row* passes every filter (empty sequence: always)."""
    for item in filters:
        if not item.matches(row):
            return False
    return True


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------

class Aggregate(abc.ABC):
    """One combinable aggregate over scanned rows."""

    @property
    @abc.abstractmethod
    def columns(self) -> tuple[int, ...]:
        """Data columns this aggregate needs fetched."""

    @abc.abstractmethod
    def create(self) -> Any:
        """Fresh (empty) accumulation state."""

    @abc.abstractmethod
    def add(self, state: Any, rid: int, row: dict[int, Any]) -> Any:
        """Fold one visible row into *state*; returns the new state."""

    @abc.abstractmethod
    def combine(self, left: Any, right: Any) -> Any:
        """Merge two partial states (associative; *left* is earlier in
        partition order, which only matters for order-sensitive results
        such as :class:`CollectRows`)."""

    def finalize(self, state: Any) -> Any:
        """Shape the final state into the user-facing result."""
        return state

    def fold(self, state: Any, rows: Any) -> Any:
        """Fold a whole ``(rid, row)`` stream (unfiltered fast path).

        The default just loops :meth:`add`; hot aggregates override it
        with a tight loop to shed the per-row method-call cost.
        """
        add = self.add
        for rid, row in rows:
            state = add(state, rid, row)
        return state


class ColumnSum(Aggregate):
    """SUM of one column (∅ values contribute nothing)."""

    def __init__(self, column: int) -> None:
        self.column = column

    @property
    def columns(self) -> tuple[int, ...]:
        return (self.column,)

    def create(self) -> int:
        return 0

    def add(self, state: int, rid: int, row: dict[int, Any]) -> int:
        value = row[self.column]
        if is_null(value):
            return state
        return state + value

    def combine(self, left: int, right: int) -> int:
        return left + right

    def fold(self, state: int, rows: Any) -> int:
        column = self.column
        for _, row in rows:
            value = row[column]
            if not is_null(value):
                state += value
        return state


class ColumnCount(Aggregate):
    """COUNT(*) (``column=None``) or COUNT(column) skipping ∅."""

    def __init__(self, column: int | None = None) -> None:
        self.column = column

    @property
    def columns(self) -> tuple[int, ...]:
        return () if self.column is None else (self.column,)

    def create(self) -> int:
        return 0

    def add(self, state: int, rid: int, row: dict[int, Any]) -> int:
        if self.column is not None and is_null(row[self.column]):
            return state
        return state + 1

    def combine(self, left: int, right: int) -> int:
        return left + right


class ColumnMin(Aggregate):
    """MIN of one column; None over an empty (or all-∅) input."""

    def __init__(self, column: int) -> None:
        self.column = column

    @property
    def columns(self) -> tuple[int, ...]:
        return (self.column,)

    def create(self) -> Any:
        return None

    def add(self, state: Any, rid: int, row: dict[int, Any]) -> Any:
        value = row[self.column]
        if is_null(value):
            return state
        if state is None or value < state:
            return value
        return state

    def combine(self, left: Any, right: Any) -> Any:
        if left is None:
            return right
        if right is None:
            return left
        return left if left <= right else right


class ColumnMax(Aggregate):
    """MAX of one column; None over an empty (or all-∅) input."""

    def __init__(self, column: int) -> None:
        self.column = column

    @property
    def columns(self) -> tuple[int, ...]:
        return (self.column,)

    def create(self) -> Any:
        return None

    def add(self, state: Any, rid: int, row: dict[int, Any]) -> Any:
        value = row[self.column]
        if is_null(value):
            return state
        if state is None or value > state:
            return value
        return state

    def combine(self, left: Any, right: Any) -> Any:
        if left is None:
            return right
        if right is None:
            return left
        return left if left >= right else right


class ColumnAvg(Aggregate):
    """AVG of one column; None over an empty (or all-∅) input.

    State is an exact ``(sum, count)`` pair, so partition scheduling
    cannot perturb the result — the division happens once, at
    :meth:`finalize`.
    """

    def __init__(self, column: int) -> None:
        self.column = column

    @property
    def columns(self) -> tuple[int, ...]:
        return (self.column,)

    def create(self) -> tuple[int, int]:
        return (0, 0)

    def add(self, state: tuple[int, int], rid: int,
            row: dict[int, Any]) -> tuple[int, int]:
        value = row[self.column]
        if is_null(value):
            return state
        return (state[0] + value, state[1] + 1)

    def combine(self, left: tuple[int, int],
                right: tuple[int, int]) -> tuple[int, int]:
        return (left[0] + right[0], left[1] + right[1])

    def finalize(self, state: tuple[int, int]) -> float | None:
        total, count = state
        if count == 0:
            return None
        return total / count


class GroupBy(Aggregate):
    """Single-column GROUP BY around an inner aggregate.

    ``make_inner`` builds one fresh inner :class:`Aggregate` used as the
    per-group template (inner aggregates are stateless descriptions, so
    one template serves every group). Rows whose group key is ∅ are
    dropped.
    """

    def __init__(self, key_column: int,
                 make_inner: Callable[[], Aggregate]) -> None:
        self.key_column = key_column
        self.inner = make_inner()

    @property
    def columns(self) -> tuple[int, ...]:
        seen = dict.fromkeys((self.key_column,) + self.inner.columns)
        return tuple(seen)

    def create(self) -> dict[Any, Any]:
        return {}

    def add(self, state: dict[Any, Any], rid: int,
            row: dict[int, Any]) -> dict[Any, Any]:
        key = row[self.key_column]
        if is_null(key):
            return state
        inner_state = state.get(key)
        if inner_state is None and key not in state:
            inner_state = self.inner.create()
        state[key] = self.inner.add(inner_state, rid, row)
        return state

    def combine(self, left: dict[Any, Any],
                right: dict[Any, Any]) -> dict[Any, Any]:
        for key, inner_state in right.items():
            if key in left:
                left[key] = self.inner.combine(left[key], inner_state)
            else:
                left[key] = inner_state
        return left

    def finalize(self, state: dict[Any, Any]) -> dict[Any, Any]:
        return {key: self.inner.finalize(inner_state)
                for key, inner_state in state.items()}


class CollectRows(Aggregate):
    """Materialise ``(rid, values)`` pairs (``select_range`` backend).

    Partials concatenate in partition order, so the overall result is
    RID-ordered within each partition and partition-ordered across the
    plan — callers needing key order re-sort against their index items.
    """

    def __init__(self, fetch_columns: Sequence[int]) -> None:
        self.fetch_columns = tuple(fetch_columns)

    @property
    def columns(self) -> tuple[int, ...]:
        return self.fetch_columns

    def create(self) -> list[tuple[int, dict[int, Any]]]:
        return []

    def add(self, state: list, rid: int, row: dict[int, Any]) -> list:
        state.append((rid, row))
        return state

    def combine(self, left: list, right: list) -> list:
        left.extend(right)
        return left

    def fold(self, state: list, rows: Any) -> list:
        state.extend(rows)
        return state
