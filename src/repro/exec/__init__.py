"""Analytical scan-executor subsystem.

L-Store's core claim is real-time OLAP over the *same* lineage-based
storage that serves OLTP (PAPER.md Section 4). This package turns the
ad-hoc scan walks of :mod:`repro.core.table` into a planned pipeline:

* :mod:`repro.exec.plan` — a **partition planner** that splits a scan
  into independent units along update-range / insert-range boundaries;
* :mod:`repro.exec.operators` — **pluggable operators**: predicate
  filters plus sum/count/min/max/avg and single-column group-by
  aggregates, each with a deterministic combine step;
* :mod:`repro.exec.executor` — a **scan executor** that runs partitions
  serially or on a shared worker pool
  (:attr:`~repro.core.config.EngineConfig.scan_parallelism`).

The package deliberately never imports :mod:`repro.core.table` at
module scope from the core side: ``Table`` reaches the executor through
lazy imports, so the layering stays core → exec one-directional at
import time.
"""

from .executor import ScanExecutor, execute_scan, scan_column_sum
from .operators import (Aggregate, CollectRows, ColumnAvg, ColumnCount,
                        ColumnMax, ColumnMin, ColumnSum, Filter, GroupBy,
                        between, eq, ge, gt, le, lt, ne)
from .plan import ScanPartition, plan_scan

__all__ = [
    "Aggregate",
    "CollectRows",
    "ColumnAvg",
    "ColumnCount",
    "ColumnMax",
    "ColumnMin",
    "ColumnSum",
    "Filter",
    "GroupBy",
    "ScanExecutor",
    "ScanPartition",
    "between",
    "eq",
    "execute_scan",
    "ge",
    "gt",
    "le",
    "lt",
    "ne",
    "plan_scan",
    "scan_column_sum",
]
