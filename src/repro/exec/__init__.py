"""Analytical scan-executor subsystem.

L-Store's core claim is real-time OLAP over the *same* lineage-based
storage that serves OLTP (PAPER.md Section 4). This package turns the
ad-hoc scan walks of :mod:`repro.core.table` into a planned pipeline:

* :mod:`repro.exec.plan` — a **partition planner** that splits a scan
  into independent units along update-range / insert-range boundaries
  and classifies each full-range partition vectorised or row-path;
* :mod:`repro.exec.operators` — **pluggable operators**: predicate
  filters plus sum/count/min/max/avg and single-column group-by
  aggregates, each with a deterministic combine step;
* :mod:`repro.exec.executor` — a **scan executor** that runs partitions
  serially or on a shared worker pool
  (:attr:`~repro.core.config.EngineConfig.scan_parallelism`).

Execution follows a **two-plane model**:

* The **vectorised plane** serves clean, merged, columnar partitions
  (behind :attr:`~repro.core.config.EngineConfig.vectorized_scans`):
  the storage layer stitches each scanned column into one contiguous
  NumPy slice with a validity mask built from the incremental
  dirty-offset patch-sets and tombstones
  (:meth:`~repro.core.table.Table.read_column_slices`); filters run as
  boolean mask arrays (``Filter.vector``/``Filter.mask``) and
  aggregates fold the masked slices array-at-a-time
  (``Aggregate.fold_columns``) — this is the read-optimised columnar
  consumption the paper's Table 8 bandwidth argument depends on, and
  the NumPy kernels release the GIL, so ``scan_parallelism`` pays off
  on stock CPython.
* The **row plane** is the always-correct fallback: per-record
  ``(rid, {column: value})`` streams through the batched read paths.
  It is chosen per partition (row layout, unmerged insert ranges,
  keyed small-range plans, time-travel predicates, operators without a
  vector form) and per record (the *dirty* offsets of a vectorised
  partition — unmerged tail activity, pages declining their NumPy
  view — are patched through it).

Both planes share aggregate state machines, so results are identical
by construction wherever both apply; CI pins this with an agreement
matrix over ``vectorized_scans`` on/off × ``scan_parallelism`` 1/4.

The package deliberately never imports :mod:`repro.core.table` at
module scope from the core side: ``Table`` reaches the executor through
lazy imports, so the layering stays core → exec one-directional at
import time.
"""

from .executor import ScanExecutor, execute_scan
from .operators import (Aggregate, CollectRows, ColumnAvg, ColumnCount,
                        ColumnMax, ColumnMin, ColumnSum, Filter, GroupBy,
                        between, eq, ge, gt, le, lt, ne)
from .plan import ScanPartition, plan_scan

__all__ = [
    "Aggregate",
    "CollectRows",
    "ColumnAvg",
    "ColumnCount",
    "ColumnMax",
    "ColumnMin",
    "ColumnSum",
    "Filter",
    "GroupBy",
    "ScanExecutor",
    "ScanPartition",
    "between",
    "eq",
    "execute_scan",
    "ge",
    "gt",
    "le",
    "lt",
    "ne",
    "plan_scan",
]
