"""Analytical scan-executor subsystem.

L-Store's core claim is real-time OLAP over the *same* lineage-based
storage that serves OLTP (PAPER.md Section 4). This package turns the
ad-hoc scan walks of :mod:`repro.core.table` into a planned pipeline:

* :mod:`repro.exec.plan` — a **partition planner** that splits a scan
  into independent units along update-range / insert-range boundaries
  and classifies each full-range partition vectorised or row-path;
* :mod:`repro.exec.operators` — **pluggable operators**: predicate
  filters plus sum/count/min/max/avg and single-column group-by
  aggregates, each with a deterministic combine step;
* :mod:`repro.exec.executor` — a **scan executor** that runs partitions
  serially or on a shared worker pool
  (:attr:`~repro.core.config.EngineConfig.scan_parallelism`).

Execution follows a **three-plane model**:

* The **vectorised plane** serves clean, merged, columnar partitions
  (behind :attr:`~repro.core.config.EngineConfig.vectorized_scans`,
  while the partition's dirty fraction stays below
  :attr:`~repro.core.config.EngineConfig.vectorized_dirty_fraction`):
  the storage layer stitches each scanned column into one contiguous
  NumPy slice with a validity mask built from the incremental
  dirty-offset patch-sets and tombstones
  (:meth:`~repro.core.table.Table.read_column_slices`); filters run as
  boolean mask arrays (``Filter.vector``/``Filter.mask``) and
  aggregates fold the masked slices array-at-a-time
  (``Aggregate.fold_columns``) — this is the read-optimised columnar
  consumption the paper's Table 8 bandwidth argument depends on, and
  the NumPy kernels release the GIL, so ``scan_parallelism`` pays off
  on stock CPython.
* The **version-horizon plane** serves snapshot scans (``as_of`` and
  repeatable-read sums) from the same merged column slices
  (:meth:`~repro.core.table.Table.read_version_slices`): the Start
  Time and Last Updated Time column slices decide per record whether
  the base value *is* the version visible at the snapshot, a per-range
  horizon summary (``UpdateRange.unmerged_min_time`` /
  ``merged_max_time``) proves churned-but-*frozen* partitions fully
  servable from base slices, and only straddling records — whose
  consolidation postdates the snapshot — replay the
  ``assemble_version`` lineage walk. This restores the snapshot-scan
  fast path the PR-3 refactor had dropped: time-travel analytics
  scale the same way latest-visibility scans do.
* The **row plane** is the always-correct fallback: per-record
  ``(rid, {column: value})`` streams through the batched read paths
  (or the lineage walk under a snapshot predicate). It is chosen per
  partition (row layout, unmerged insert ranges, keyed small-range
  plans, churn above the dirty-fraction threshold, operators without
  a vector form) and per record (the *dirty* offsets of a vectorised
  partition — unmerged tail activity, snapshot straddlers, pages
  declining their NumPy view — are patched through it).

All planes share aggregate state machines, so results are identical
by construction wherever they overlap; CI pins this with agreement
matrices over ``vectorized_scans`` on/off × ``scan_parallelism`` 1/4,
for latest visibility and for ``as_of`` snapshots drawn across the
operation history.

The package deliberately never imports :mod:`repro.core.table` at
module scope from the core side: ``Table`` reaches the executor through
lazy imports, so the layering stays core → exec one-directional at
import time.
"""

from .executor import ScanExecutor, execute_scan
from .operators import (Aggregate, CollectRows, ColumnAvg, ColumnCount,
                        ColumnMax, ColumnMin, ColumnSum, Filter, GroupBy,
                        between, eq, ge, gt, le, lt, ne)
from .plan import ScanPartition, plan_scan

__all__ = [
    "Aggregate",
    "CollectRows",
    "ColumnAvg",
    "ColumnCount",
    "ColumnMax",
    "ColumnMin",
    "ColumnSum",
    "Filter",
    "GroupBy",
    "ScanExecutor",
    "ScanPartition",
    "between",
    "eq",
    "execute_scan",
    "ge",
    "gt",
    "le",
    "lt",
    "ne",
    "plan_scan",
]
