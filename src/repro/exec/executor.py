"""The scan executor: run planned partitions serially or on a pool.

``execute_scan`` is the general entry point: it plans partitions,
derives the fetch column set from the aggregate and filters, runs each
full-range partition under **its own epoch registration** (keyed
partitions ride the batched point-read discipline instead — see
``_run_partition``), and combines the partial states deterministically
in partition order.

``scan_column_sum`` is the specialised full-column SUM driver that
keeps the NumPy page-sum fast path of the pre-executor ``scan_sum``:
each partition delegates to :meth:`~repro.core.table.Table.scan_range_sum`,
which snapshots the range's dirty set before resolving page chains.

Parallel execution uses plain threads. Under the GIL this is
correctness-safe and still wins on the NumPy page sums (which release
the GIL); on free-threaded builds the partitions genuinely overlap.
Per the paper's epoch discipline (Section 4.1.1) every partition
registers with the epoch manager *before* resolving any page chain, so
a concurrent merge can retire pages but never reclaim them under a
running partition.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from .operators import Aggregate, Filter, matches_all
from .plan import ScanPartition, plan_scan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.table import Table


class ScanExecutor:
    """Runs scan tasks serially or on a shared worker pool.

    One executor is shared by all tables of a
    :class:`~repro.core.db.Database` (the "shared worker pool" of the
    design): the pool is created lazily on the first parallel run and
    bounded by ``parallelism`` workers, so concurrent analytical
    queries queue their partitions rather than oversubscribing the
    machine. ``parallelism=1`` never creates a pool — every task runs
    inline on the calling thread.
    """

    def __init__(self, parallelism: int = 1) -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.parallelism = parallelism
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._closed = False

    def _ensure_pool(self) -> ThreadPoolExecutor | None:
        """The worker pool, or None once :meth:`close` has begun.

        The closed re-check runs under the lock, so a ``map`` racing
        ``close`` can never resurrect a pool the close will miss.
        """
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                if self._closed:
                    return None
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.parallelism,
                        thread_name_prefix="lstore-scan")
                pool = self._pool
        return pool

    def map(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]:
        """Run *tasks*; return their results in task order.

        Serial when ``parallelism == 1`` (or one task, or the executor
        is closing); otherwise the tasks are submitted to the pool and
        gathered in order. The first task exception propagates either
        way.
        """
        if self.parallelism == 1 or len(tasks) <= 1 or self._closed:
            return [task() for task in tasks]
        pool = self._ensure_pool()
        if pool is None:  # closed concurrently: degrade to serial
            return [task() for task in tasks]
        try:
            futures = [pool.submit(task) for task in tasks]
        except RuntimeError:
            # Pool shut down between the grab and the submit. Scan
            # tasks are read-only, so re-running the lot serially is
            # safe (any partially submitted results are discarded).
            return [task() for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._closed = True
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


# ---------------------------------------------------------------------------
# Row sources
# ---------------------------------------------------------------------------

def _keyed_rows(table: "Table", rids: Sequence[int],
                columns: tuple[int, ...], as_of: int | None,
                txn_id: int | None,
                ) -> list[tuple[int, dict[int, Any]]]:
    """Visible rows for an explicit RID set (key-range scans)."""
    from ..core.table import DELETED
    from ..core.version import visible_as_of

    if as_of is None:
        results = table.read_latest_many(rids, columns, txn_id)
        get = results.get
        return [(rid, values) for rid in rids
                if (values := get(rid)) is not None
                and values is not DELETED]
    predicate = visible_as_of(as_of)
    rows: list[tuple[int, dict[int, Any]]] = []
    for rid in rids:
        update_range, offset = table.locate(rid)
        if not table.base_record_exists(update_range, offset):
            continue
        values = table.assemble_version(rid, columns, predicate)
        if values is None or values is DELETED:
            continue
        rows.append((rid, values))
    return rows


def _iter_range_rows(table: "Table", partition: ScanPartition,
                     columns: tuple[int, ...], as_of: int | None,
                     txn_id: int | None,
                     ) -> Iterator[tuple[int, dict[int, Any]]]:
    """Visible rows of one full update range.

    Existing records are enumerated per-offset; their values flow
    through :meth:`~repro.core.table.Table.read_latest_many`, which
    snapshots the range TPS before resolving page chains (the PR-1
    rule) and serves clean records straight from the base/merged
    chains. The *as_of* variant walks each record's lineage — always
    correct, per Theorem 2.
    """
    update_range = table.update_range_of(partition.range_id)
    start_rid = update_range.start_rid
    rids = [start_rid + offset for offset in range(update_range.size)
            if table.base_record_exists(update_range, offset)]
    yield from _keyed_rows(table, rids, columns, as_of, txn_id)


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------

def _run_partition(table: "Table", partition: ScanPartition,
                   aggregate: Aggregate, filters: Sequence[Filter],
                   columns: tuple[int, ...], as_of: int | None,
                   txn_id: int | None) -> Any:
    """Execute one partition.

    Full-range partitions register their own query epoch (the paper's
    scan discipline: the registration precedes any chain resolution, so
    retired pages cannot be reclaimed underneath). Keyed partitions
    read through the same batched path as point reads, which never
    register — each batch snapshots the range TPS before resolving
    chains, and already-resolved chains keep their pages alive — so
    skipping the epoch keeps small key-range queries as cheap as the
    pre-executor read loop.
    """
    epoch = None if partition.is_keyed \
        else table.epoch_manager.enter_query(table.clock.now())
    try:
        state = aggregate.create()
        if partition.is_keyed:
            rows: Any = _keyed_rows(table, partition.rids, columns,
                                    as_of, txn_id)
        else:
            rows = _iter_range_rows(table, partition, columns,
                                    as_of, txn_id)
        if filters:
            for rid, row in rows:
                if matches_all(filters, row):
                    state = aggregate.add(state, rid, row)
        else:
            state = aggregate.fold(state, rows)
        return state
    finally:
        if epoch is not None:
            table.epoch_manager.exit_query(epoch)


def execute_scan(table: "Table", aggregate: Aggregate, *,
                 filters: Sequence[Filter] = (),
                 rids: Sequence[int] | None = None,
                 as_of: int | None = None,
                 txn_id: int | None = None,
                 executor: ScanExecutor | None = None) -> Any:
    """Plan, run, and combine an analytical scan.

    *rids* restricts the scan to an explicit RID set (key-range
    queries); *as_of* switches visibility to the time-travel predicate;
    *txn_id* makes the calling transaction's own uncommitted writes
    visible (READ_COMMITTED batched reads). Partials combine in
    partition order, so the result is independent of scheduling.
    """
    if executor is None:
        executor = table.scan_executor
    columns = _fetch_columns(aggregate, filters)
    partitions = plan_scan(table, rids, executor.parallelism)
    if len(partitions) == 1:
        # Hot path for small key-range queries: no pool round-trip,
        # no combine (combine(create(), s) == s by the monoid contract).
        return aggregate.finalize(_run_partition(
            table, partitions[0], aggregate, tuple(filters), columns,
            as_of, txn_id))
    tasks = [partial(_run_partition, table, partition, aggregate,
                     tuple(filters), columns, as_of, txn_id)
             for partition in partitions]
    state = aggregate.create()
    for partial_state in executor.map(tasks):
        state = aggregate.combine(state, partial_state)
    return aggregate.finalize(state)


def _fetch_columns(aggregate: Aggregate,
                   filters: Sequence[Filter]) -> tuple[int, ...]:
    seen = dict.fromkeys(aggregate.columns)
    for item in filters:
        seen.setdefault(item.column)
    return tuple(sorted(seen))


def scan_column_sum(table: "Table", data_column: int,
                    predicate: Any = None, as_of: int | None = None,
                    executor: ScanExecutor | None = None) -> int:
    """Full-column SUM through the executor (``Table.scan_sum`` backend).

    Each partition delegates to
    :meth:`~repro.core.table.Table.scan_range_sum`, preserving the
    NumPy page-sum fast path and the dirty-set patching semantics of
    the pre-executor scan, but running ranges concurrently when the
    engine is configured with ``scan_parallelism > 1``.
    """
    if executor is None:
        executor = table.scan_executor

    def run(update_range: Any) -> int:
        epoch = table.epoch_manager.enter_query(table.clock.now())
        try:
            return table.scan_range_sum(update_range, data_column,
                                        predicate, as_of)
        finally:
            table.epoch_manager.exit_query(epoch)

    tasks = [partial(run, update_range)
             for update_range in table.sorted_ranges()]
    return sum(executor.map(tasks))
