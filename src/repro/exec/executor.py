"""The scan executor: run planned partitions serially or on a pool.

``execute_scan`` is the general entry point: it plans partitions,
derives the fetch column set from the aggregate and filters, runs each
full-range partition under **its own epoch registration** (keyed
partitions ride the batched point-read discipline instead — see
``_run_partition``), and combines the partial states deterministically
in partition order.

Each partition executes on one of **three planes**:

* the **vectorised plane** — a partition the planner marked clean
  (merged, columnar, ``EngineConfig.vectorized_scans``, dirty
  fraction below the engine threshold) materialises whole NumPy
  column slices once
  (:meth:`~repro.core.table.Table.read_column_slices`); filters become
  boolean mask arrays, the aggregate folds the masked slices
  array-at-a-time, and only the *dirty* records (unmerged tail
  activity) are patched through the per-record walk;
* the **version-horizon plane** — the same machinery under a snapshot
  predicate (``as_of``): the base slices masked per record by the
  Start Time / Last Updated Time slices
  (:meth:`~repro.core.table.Table.read_version_slices`), with only
  straddling or dirty records replaying the ``assemble_version``
  lineage walk (and not even those when the range's version horizon
  proves the partition frozen at the snapshot);
* the **row plane** — everything else (row layout, unmerged insert
  ranges, keyed small-range plans, churn-heavy partitions, operators
  without a vector form, pages declining their NumPy view) streams
  ``(rid, {column: value})`` rows through the batched read path, or
  raw values through the dict-free full-range drivers
  (``read_range_values`` / ``read_range_version_values``).

All planes share aggregate states, so a scan freely mixes them across
(and within) partitions and the per-partition partials still combine
deterministically.

Parallel execution uses plain threads. Under the GIL this is
correctness-safe and wins wherever the GIL is released — which the
vectorised plane's NumPy kernels do; on free-threaded builds the row
plane overlaps too. Per the paper's epoch discipline (Section 4.1.1)
every partition registers with the epoch manager *before* resolving
any page chain, so a concurrent merge can retire pages but never
reclaim them under a running partition.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from ..obs.trace import span
from .operators import Aggregate, ColumnSum, Filter, matches_all
from .plan import ScanPartition, plan_scan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.table import Table


class ScanExecutor:
    """Runs scan tasks serially or on a shared worker pool.

    One executor is shared by all tables of a
    :class:`~repro.core.db.Database` (the "shared worker pool" of the
    design): the pool is created lazily on the first parallel run and
    bounded by ``parallelism`` workers, so concurrent analytical
    queries queue their partitions rather than oversubscribing the
    machine. ``parallelism=1`` never creates a pool — every task runs
    inline on the calling thread.
    """

    def __init__(self, parallelism: int = 1) -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.parallelism = parallelism
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._closed = False

    def _ensure_pool(self) -> ThreadPoolExecutor | None:
        """The worker pool, or None once :meth:`close` has begun.

        The closed re-check runs under the lock, so a ``map`` racing
        ``close`` can never resurrect a pool the close will miss.
        """
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                if self._closed:
                    return None
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.parallelism,
                        thread_name_prefix="lstore-scan")
                pool = self._pool
        return pool

    def map(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]:
        """Run *tasks*; return their results in task order.

        Serial when ``parallelism == 1`` (or one task, or the executor
        is closing); otherwise the tasks are submitted to the pool and
        gathered in order. The first task exception propagates either
        way.
        """
        if self.parallelism == 1 or len(tasks) <= 1 or self._closed:
            return [task() for task in tasks]
        pool = self._ensure_pool()
        if pool is None:  # closed concurrently: degrade to serial
            return [task() for task in tasks]
        try:
            futures = [pool.submit(task) for task in tasks]
        except RuntimeError:
            # Pool shut down between the grab and the submit. Scan
            # tasks are read-only, so re-running the lot serially is
            # safe (any partially submitted results are discarded).
            return [task() for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._closed = True
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


# ---------------------------------------------------------------------------
# Row sources
# ---------------------------------------------------------------------------

def _keyed_rows(table: "Table", rids: Sequence[int],
                columns: tuple[int, ...], as_of: int | None,
                txn_id: int | None,
                ) -> list[tuple[int, dict[int, Any]]]:
    """Visible rows for an explicit RID set (key-range scans)."""
    from ..core.table import DELETED
    from ..core.version import visible_as_of

    if as_of is None:
        results = table.read_latest_many(rids, columns, txn_id)
        get = results.get
        return [(rid, values) for rid in rids
                if (values := get(rid)) is not None
                and values is not DELETED]
    predicate = visible_as_of(as_of, settle_precommit=True)
    rows: list[tuple[int, dict[int, Any]]] = []
    for rid in rids:
        update_range, offset = table.locate(rid)
        if not table.base_record_exists(update_range, offset):
            continue
        # read_latest serves the merged-current version in one hop
        # when the predicate accepts it and only falls back to the
        # full assemble_version walk for genuinely older versions.
        values = table.read_latest(rid, columns, predicate)
        if values is None or values is DELETED:
            continue
        rows.append((rid, values))
    return rows


def _iter_range_rows(table: "Table", partition: ScanPartition,
                     columns: tuple[int, ...], as_of: int | None,
                     txn_id: int | None,
                     ) -> Iterator[tuple[int, dict[int, Any]]]:
    """Visible rows of one full update range.

    Existing records are enumerated per-offset; their values flow
    through :meth:`~repro.core.table.Table.read_latest_many`, which
    snapshots the range TPS before resolving page chains (the PR-1
    rule) and serves clean records straight from the base/merged
    chains. The *as_of* variant walks each record's lineage — always
    correct, per Theorem 2.
    """
    update_range = table.update_range_of(partition.range_id)
    start_rid = update_range.start_rid
    rids = [start_rid + offset for offset in range(update_range.size)
            if table.base_record_exists(update_range, offset)]
    yield from _keyed_rows(table, rids, columns, as_of, txn_id)


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------

def _run_partition(table: "Table", partition: ScanPartition,
                   aggregate: Aggregate, filters: Sequence[Filter],
                   columns: tuple[int, ...], as_of: int | None,
                   txn_id: int | None, vector_ok: bool = False) -> Any:
    """Execute one partition.

    Full-range partitions register their own query epoch (the paper's
    scan discipline: the registration precedes any chain resolution, so
    retired pages cannot be reclaimed underneath). Keyed partitions
    read through the same batched path as point reads, which never
    register — each batch snapshots the range TPS before resolving
    chains, and already-resolved chains keep their pages alive — so
    skipping the epoch keeps small key-range queries as cheap as the
    pre-executor read loop.

    *vector_ok* is ``execute_scan``'s verdict that the operators can
    run vectorised; combined with the planner's partition mark it
    selects the column-slice plane, with a run-time fallback to the row
    plane when the range cannot serve slices after all.
    """
    epoch = None if partition.is_keyed \
        else table.epoch_manager.enter_query(table.clock.now())
    try:
        state = aggregate.create()
        if vector_ok and partition.vectorized and not partition.is_keyed:
            update_range = table.update_range_of(partition.range_id)
            if as_of is not None:
                # Version-horizon plane: base slices masked by the
                # Start Time / Last Updated Time slices serve the
                # records whose base value is the version visible at
                # as_of; straddlers and (non-frozen) dirty records
                # replay through the assemble_version walk.
                sliced = table.read_version_slices(update_range, columns,
                                                   as_of)
                if sliced is not None:
                    table._stat_scan_version.add()
                    return _fold_vectorized(table, update_range, sliced,
                                            aggregate, filters, columns,
                                            txn_id, state, as_of=as_of)
            else:
                if not filters and txn_id is None \
                        and isinstance(aggregate, ColumnSum):
                    # Unfiltered SUM (the paper's Section 6 scan):
                    # cached per-page totals, zero NumPy calls in the
                    # steady state — see Table.read_range_column_total.
                    fast = table.read_range_column_total(update_range,
                                                         aggregate.column)
                    if fast is not None:
                        table._stat_scan_vectorized.add()
                        total, dirty = fast
                        state = aggregate.combine(state, total)
                        if dirty:
                            state = _patch_column_values(
                                table, update_range, aggregate, dirty,
                                state)
                        return state
                sliced = table.read_column_slices(update_range, columns)
                if sliced is not None:
                    table._stat_scan_vectorized.add()
                    return _fold_vectorized(table, update_range, sliced,
                                            aggregate, filters, columns,
                                            txn_id, state)
        if partition.is_keyed:
            rows: Any = _keyed_rows(table, partition.rids, columns,
                                    as_of, txn_id)
        else:
            table._stat_scan_row.add()
            if not filters:
                # Row-plane fold without dict framing: unfiltered
                # single-column aggregates over a full range (unmerged
                # insert ranges, the row layout, vectorisation off)
                # stream raw values instead of {column: value} dicts —
                # and without the rid-list round trip. The as_of
                # variant reads through the version-value driver
                # (Start Time / Last Updated per record, lineage walk
                # only where the consolidation is too new).
                fold_values = getattr(aggregate, "fold_values", None)
                agg_columns = aggregate.columns
                if fold_values is not None and len(agg_columns) == 1:
                    update_range = table.update_range_of(
                        partition.range_id)
                    if as_of is None:
                        return fold_values(state, table.read_range_values(
                            update_range, agg_columns[0], txn_id))
                    if txn_id is None:
                        return fold_values(
                            state, table.read_range_version_values(
                                update_range, agg_columns[0], as_of))
            rows = _iter_range_rows(table, partition, columns,
                                    as_of, txn_id)
        if filters:
            for rid, row in rows:
                if matches_all(filters, row):
                    state = aggregate.add(state, rid, row)
        else:
            state = aggregate.fold(state, rows)
        return state
    finally:
        if epoch is not None:
            table.epoch_manager.exit_query(epoch)


def _patch_column_values(table: "Table", update_range: Any,
                         aggregate: Aggregate, offsets: Sequence[int],
                         state: Any) -> Any:
    """Patch dirty offsets into a single-column aggregate state.

    Raw values through the allocation-free
    :meth:`~repro.core.table.Table.latest_column_value` walk — no
    per-record dicts and no re-classification: the offsets are already
    known dirty. The Figure 8 cost tracks unmerged tails; this keeps
    its constant small.
    """
    from ..core.table import DELETED
    walk = table.latest_column_value
    data_column = aggregate.columns[0]
    return aggregate.fold_values(state, (
        value for value in (walk(update_range, offset, data_column)
                            for offset in offsets)
        if value is not None and value is not DELETED))


def _patch_version_values(table: "Table", update_range: Any,
                          aggregate: Aggregate, offsets: Sequence[int],
                          as_of: int, state: Any) -> Any:
    """Patch straddling/dirty offsets of a snapshot scan.

    Raw values through the allocation-free
    :meth:`~repro.core.table.Table.version_column_value` walk — the
    snapshot analogue of :func:`_patch_column_values`.
    """
    from ..core.table import DELETED
    walk = table.version_column_value
    data_column = aggregate.columns[0]
    return aggregate.fold_values(state, (
        value for value in (
            walk(update_range, offset, data_column, as_of)
            for offset in offsets)
        if value is not None and value is not DELETED))


def _fold_vectorized(table: "Table", update_range: Any, sliced: Any,
                     aggregate: Aggregate,
                     filters: Sequence[Filter], columns: tuple[int, ...],
                     txn_id: int | None, state: Any,
                     as_of: int | None = None) -> Any:
    """Fold one partition's column slices, then patch its dirty tail.

    The clean bulk runs entirely on NumPy: the validity mask is ANDed
    with every filter's match mask, and the aggregate consumes the
    masked slices in one ``fold_columns`` call (no per-record dicts, no
    GIL for the kernels). The dirty offsets — unmerged tail activity,
    snapshot straddlers, and pages that declined their NumPy view,
    already excluded from the mask — replay through the exact
    per-record row plane (the latest-committed walk, or the
    ``assemble_version`` time-travel walk when *as_of* is given), so
    the two planes together cover the partition exactly once.
    """
    mask = sliced.valid
    for item in filters:
        mask = mask & item.mask(sliced.columns)
    state = aggregate.fold_columns(state, sliced.rids, sliced.columns, mask)
    if sliced.dirty:
        fold_values = getattr(aggregate, "fold_values", None)
        agg_columns = aggregate.columns
        if not filters and fold_values is not None \
                and len(agg_columns) == 1:
            # Single-column patch: raw values, no per-record dicts.
            if as_of is not None:
                return _patch_version_values(table, update_range,
                                             aggregate, sliced.dirty,
                                             as_of, state)
            if txn_id is None:
                return _patch_column_values(table, update_range,
                                            aggregate, sliced.dirty, state)
            return fold_values(state, table.read_latest_values(
                [sliced.start_rid + offset for offset in sliced.dirty],
                agg_columns[0], txn_id))
        dirty_rids = [sliced.start_rid + offset for offset in sliced.dirty]
        rows = _keyed_rows(table, dirty_rids, columns, as_of, txn_id)
        if filters:
            for rid, row in rows:
                if matches_all(filters, row):
                    state = aggregate.add(state, rid, row)
        else:
            state = aggregate.fold(state, rows)
    return state


def execute_scan(table: "Table", aggregate: Aggregate, *,
                 filters: Sequence[Filter] = (),
                 rids: Sequence[int] | None = None,
                 as_of: int | None = None,
                 txn_id: int | None = None,
                 executor: ScanExecutor | None = None) -> Any:
    """Plan, run, and combine an analytical scan.

    *rids* restricts the scan to an explicit RID set (key-range
    queries); *as_of* switches visibility to the time-travel predicate
    (full-range partitions then run on the version-horizon plane);
    *txn_id* makes the calling transaction's own uncommitted writes
    visible (READ_COMMITTED batched reads). Partials combine in
    partition order, so the result is independent of scheduling.

    Two specialisations bracket the general plan→run→combine pipeline:
    small keyed single-column aggregates skip the executor framing
    entirely (raw values through
    :meth:`~repro.core.table.Table.read_latest_values`, folded without
    per-record dicts — the span-16 ``Query.sum`` hot path), and clean
    full-range partitions run on the vectorised column-slice plane
    when the operators support it.
    """
    if executor is None:
        executor = table.scan_executor
    if rids is not None and not filters and as_of is None:
        # Keyed dict-free fast path: a single-column aggregate over a
        # RID set small enough for one partition folds the raw value
        # stream directly — no plan, no partition framing, no
        # {column: value} dicts. Matches plan_scan's collapse rule so
        # larger keyed scans keep their partitioned parallelism.
        fold_values = getattr(aggregate, "fold_values", None)
        agg_columns = aggregate.columns
        if fold_values is not None and len(agg_columns) == 1 \
                and (executor.parallelism <= 1
                     or len(rids) <= table.config.update_range_size):
            state = aggregate.create()
            if rids:
                state = fold_values(state, table.read_latest_values(
                    rids, agg_columns[0], txn_id))
            return aggregate.finalize(state)
    columns = _fetch_columns(aggregate, filters)
    vector_ok = aggregate.supports_vectorized \
        and all(item.vector is not None for item in filters)
    partitions = plan_scan(table, rids, executor.parallelism, as_of)
    if len(partitions) == 1:
        # Hot path for small key-range queries: no pool round-trip,
        # no combine (combine(create(), s) == s by the monoid contract).
        return aggregate.finalize(_run_partition(
            table, partitions[0], aggregate, tuple(filters), columns,
            as_of, txn_id, vector_ok))
    tasks = [partial(_run_partition, table, partition, aggregate,
                     tuple(filters), columns, as_of, txn_id, vector_ok)
             for partition in partitions]
    with span("scan.execute", table=table.schema.name,
              partitions=len(partitions)):
        state = aggregate.create()
        for partial_state in executor.map(tasks):
            state = aggregate.combine(state, partial_state)
        return aggregate.finalize(state)


def _fetch_columns(aggregate: Aggregate,
                   filters: Sequence[Filter]) -> tuple[int, ...]:
    seen = dict.fromkeys(aggregate.columns)
    for item in filters:
        seen.setdefault(item.column)
    return tuple(sorted(seen))
