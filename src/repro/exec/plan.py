"""Partition planner: split a scan along update-range boundaries.

Update ranges are the natural unit of intra-query parallelism in
L-Store (ROADMAP: "ranges are independent, so a thread pool … can sum
them concurrently"): each range owns its tail segment, indirection
vector, and merge lineage, so a partition never shares mutable scan
state with its siblings. Insert-range boundaries are respected for
free — every update range lies inside exactly one insert range.

The planner also classifies each full-range partition for the
**vectorised plane**: a clean, merged, columnar range
(``EngineConfig.vectorized_scans`` permitting) is marked
``vectorized`` and the executor feeds it to the operators as whole
NumPy column slices; row-layout ranges, unmerged insert ranges, and
keyed small-range plans stay on the per-record row path. The mark is a
*hint* — the executor re-checks at run time (an aggregate or filter
without a vector form, a time-travel predicate, or a page declining
its NumPy view all fall back to the row path, per record or per
partition).

Each full-range partition is **executed** with its own epoch
registration, and every partition takes its dirty-set/TPS snapshot
*before* resolving any page chain (the PR-1
snapshot-before-chain-resolution rule), so a merge that swaps chains
mid-scan can only cause harmless over-patching, never a torn read —
see :mod:`repro.exec.executor` for the row sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..core.types import Layout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.table import Table


@dataclass(frozen=True)
class ScanPartition:
    """One independent unit of a planned scan.

    ``rids`` is None for a full-range partition (analytical scans) or
    the explicit base RIDs this partition serves (key-range scans).
    ``range_id`` is the partition's home range — for a small/serial
    keyed plan collapsed into one spanning partition it is the first
    RID's range and the batched read path does the per-range grouping.
    ``vectorized`` marks a full-range partition eligible for the
    column-slice plane (clean merged columnar range with the engine
    flag on); the executor still verifies the operators support it.
    """

    range_id: int
    rids: tuple[int, ...] | None = None
    vectorized: bool = False

    @property
    def is_keyed(self) -> bool:
        """True when the partition scans an explicit RID set."""
        return self.rids is not None


def plan_scan(table: "Table", rids: Sequence[int] | None = None,
              parallelism: int = 1) -> list[ScanPartition]:
    """Plan a scan of *table* into independent partitions.

    With ``rids=None`` the plan covers every update range (one
    partition per range, RID order), each classified vectorised or
    row-path. With an explicit RID sequence (e.g. from
    ``PrimaryIndex.range_items``) the RIDs are grouped by their owning
    update range, preserving the caller's order within each partition;
    partitions come out sorted by range id so the combine step is
    deterministic regardless of input order.

    *parallelism* is the executor's worker budget: a serial executor
    (or a RID set that fits one range) gets a single spanning keyed
    partition — the batched read path groups by range internally
    anyway, so splitting would only duplicate that work on the hot
    small-range-query path.
    """
    if rids is None:
        vector_ok = table.config.vectorized_scans \
            and table.layout is Layout.COLUMNAR
        return [ScanPartition(update_range.range_id,
                              vectorized=vector_ok and update_range.merged)
                for update_range in table.sorted_ranges()]
    range_size = table.config.update_range_size
    if parallelism <= 1 or len(rids) <= range_size:
        first_range = ((rids[0] - 1) // range_size) if rids else 0
        return [ScanPartition(first_range, tuple(rids))] if rids else []
    groups: dict[int, list[int]] = {}
    for rid in rids:
        groups.setdefault((rid - 1) // range_size, []).append(rid)
    return [ScanPartition(range_id, tuple(groups[range_id]))
            for range_id in sorted(groups)]
