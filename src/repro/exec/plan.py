"""Partition planner: split a scan along update-range boundaries.

Update ranges are the natural unit of intra-query parallelism in
L-Store (ROADMAP: "ranges are independent, so a thread pool … can sum
them concurrently"): each range owns its tail segment, indirection
vector, and merge lineage, so a partition never shares mutable scan
state with its siblings. Insert-range boundaries are respected for
free — every update range lies inside exactly one insert range.

The planner also classifies each full-range partition for the
**vectorised planes**: a clean, merged, columnar range
(``EngineConfig.vectorized_scans`` permitting, dirty fraction below
``EngineConfig.vectorized_dirty_fraction``) is marked ``vectorized``
and the executor feeds it to the operators as whole NumPy column
slices — the latest-visibility column-slice plane, or the
version-horizon plane when the scan carries an ``as_of`` snapshot
(where a *frozen* range, whose version horizon proves every unmerged
update newer than the snapshot, stays vectorised regardless of
churn); row-layout ranges, unmerged insert ranges, and keyed
small-range plans stay on the per-record row path. The mark is a
*hint* — the executor re-checks at run time (an aggregate or filter
without a vector form, or a page declining its NumPy view, falls back
to the row path, per record or per partition).

Each full-range partition is **executed** with its own epoch
registration, and every partition takes its dirty-set/TPS snapshot
*before* resolving any page chain (the PR-1
snapshot-before-chain-resolution rule), so a merge that swaps chains
mid-scan can only cause harmless over-patching, never a torn read —
see :mod:`repro.exec.executor` for the row sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..core.types import Layout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.table import Table, UpdateRange


@dataclass(frozen=True)
class ScanPartition:
    """One independent unit of a planned scan.

    ``rids`` is None for a full-range partition (analytical scans) or
    the explicit base RIDs this partition serves (key-range scans).
    ``range_id`` is the partition's home range — for a small/serial
    keyed plan collapsed into one spanning partition it is the first
    RID's range and the batched read path does the per-range grouping.
    ``vectorized`` marks a full-range partition eligible for the
    column-slice plane (clean merged columnar range with the engine
    flag on); the executor still verifies the operators support it.
    """

    range_id: int
    rids: tuple[int, ...] | None = None
    vectorized: bool = False

    @property
    def is_keyed(self) -> bool:
        """True when the partition scans an explicit RID set."""
        return self.rids is not None


def _frozen_at(update_range: "UpdateRange", as_of: int) -> bool:
    """Version-horizon check: is the range *frozen* at time *as_of*?

    True when every consolidated commit time is ``<= as_of`` and every
    unmerged tail record's commit time is provably ``> as_of`` — the
    base slices then serve even dirty records, so churn does not
    disqualify the partition. A plan-time hint (lock-free reads); the
    executor re-derives the exact verdict from an atomic snapshot.
    """
    minimum = update_range.unmerged_min_time
    return update_range.merged_max_time <= as_of \
        and (minimum is None or as_of < minimum)


def _dirty_fraction_ok(table: "Table",
                       update_range: "UpdateRange") -> bool:
    """Churn gate: keep the vectorised plane only while the dirty
    fraction stays below ``EngineConfig.vectorized_dirty_fraction``.

    Above the threshold the vectorised plane pays slice stitching plus
    a near-total per-record patch walk — strictly worse than running
    the range once on the row plane. Lock-free hint reads: a stale
    count merely picks the other (always-correct) plane.
    """
    limit = table.config.vectorized_dirty_fraction
    if limit >= 1.0:
        return True
    if table.config.incremental_dirty_sets:
        dirty = len(update_range.dirty_counts)
    else:
        dirty = update_range.unmerged_tail_count()
    return dirty < limit * update_range.size


def plan_scan(table: "Table", rids: Sequence[int] | None = None,
              parallelism: int = 1,
              as_of: int | None = None) -> list[ScanPartition]:
    """Plan a scan of *table* into independent partitions.

    With ``rids=None`` the plan covers every update range (one
    partition per range, RID order), each classified vectorised or
    row-path: a merged columnar range is marked vectorised while its
    dirty fraction stays below the engine threshold
    (:func:`_dirty_fraction_ok`); with a snapshot predicate
    (``as_of``) a range whose version horizon proves it *frozen* at
    that time stays vectorised regardless of churn — its dirty records
    serve from the base slices, not the walk. With an explicit RID
    sequence (e.g. from ``PrimaryIndex.range_items``) the RIDs are
    grouped by their owning update range, preserving the caller's
    order within each partition; partitions come out sorted by range
    id so the combine step is deterministic regardless of input order.

    *parallelism* is the executor's worker budget: a serial executor
    (or a RID set that fits one range) gets a single spanning keyed
    partition — the batched read path groups by range internally
    anyway, so splitting would only duplicate that work on the hot
    small-range-query path.
    """
    if rids is None:
        vector_ok = table.config.vectorized_scans \
            and table.layout is Layout.COLUMNAR
        partitions = []
        for update_range in table.sorted_ranges():
            if vector_ok and update_range.merged:
                vectorized = _dirty_fraction_ok(table, update_range) \
                    or (as_of is not None
                        and _frozen_at(update_range, as_of))
                if not vectorized:
                    table._stat_plane_degradations.add()
            else:
                vectorized = False
            partitions.append(ScanPartition(update_range.range_id,
                                            vectorized=vectorized))
        return partitions
    range_size = table.config.update_range_size
    if parallelism <= 1 or len(rids) <= range_size:
        first_range = ((rids[0] - 1) // range_size) if rids else 0
        return [ScanPartition(first_range, tuple(rids))] if rids else []
    groups: dict[int, list[int]] = {}
    for rid in rids:
        groups.setdefault((rid - 1) // range_size, []).append(rid)
    return [ScanPartition(range_id, tuple(groups[range_id]))
            for range_id in sorted(groups)]
