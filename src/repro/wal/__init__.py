"""Durability: redo-only WAL, OR protocol, crash recovery (Section 5).

The log is a chain of **v2 segments** (``wal.log``, ``wal.log.000001``,
…), each opening with the 8-byte magic ``LSWAL2\\x00\\n`` followed by
checksummed frames::

    <u32 payload len> <u32 crc32(lsn || payload)> <i64 lsn> <payload>

Segments rotate when the active one exceeds
``EngineConfig.wal_segment_bytes``; only the active segment is ever
written, so older segments are immutable and can be unlinked once a
checkpoint covers them. Legacy v1 logs (bare length-prefixed frames,
no magic) are still readable; appending to one starts a v2 sibling
segment. Readers verify every checksum: a torn tail is truncated and
counted (``stat_salvaged_bytes``), a corrupt mid-log frame is skipped
and reported as a :class:`~repro.wal.log.QuarantinedFrame` — see
:mod:`repro.wal.log` for the full salvage rules.

Group commit is **fail-stop**: frames are buffered as ``(lsn, bytes)``
and cleared only after a successful write + fsync; a failed sync is
retried with rewind (``wal_sync_retries``) and, on exhaustion, poisons
the log so every committer gets a :class:`~repro.errors.WALError` — a
commit is never acked unless its frames are durable.

:mod:`repro.wal.checkpoint` bounds recovery: a checkpoint serializes a
shadow-replayed page image next to the log, appends a
``CheckpointRecord``, and truncates dead segments; recovery
(:func:`recover_database`) loads the newest complete image and replays
only the suffix, attaching a ``RecoveryReport`` to the database. Fault
injection points throughout the write path are listed in
:mod:`repro.fault`.
"""

from .checkpoint import CheckpointResult, write_checkpoint
from .log import LogManager, LogSalvage, QuarantinedFrame, TableWAL, \
    attach_table_logging
from .ownership import OwnershipRelay, PageLSNTracker
from .recovery import RecoveryReport, recover_database

__all__ = [
    "CheckpointResult",
    "LogManager",
    "LogSalvage",
    "OwnershipRelay",
    "PageLSNTracker",
    "QuarantinedFrame",
    "RecoveryReport",
    "TableWAL",
    "attach_table_logging",
    "recover_database",
    "write_checkpoint",
]
