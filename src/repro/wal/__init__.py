"""Durability: redo-only WAL, OR protocol, crash recovery (Section 5)."""

from .log import LogManager, TableWAL, attach_table_logging
from .ownership import OwnershipRelay, PageLSNTracker
from .recovery import recover_database

__all__ = [
    "LogManager",
    "OwnershipRelay",
    "PageLSNTracker",
    "TableWAL",
    "attach_table_logging",
    "recover_database",
]
