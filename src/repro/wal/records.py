"""Write-ahead-log record types (Section 5.1.3).

L-Store's logging is *redo-only* for everything except the page
directory: base pages are read-only (nothing to log), tail pages are
append-only and write-once (no undo — aborted records become
tombstones), and the in-place Indirection column can continue pointing
at tombstones so even it needs only redo. The merge is idempotent and
gets operational logging only.

Records are plain dataclasses serialised with pickle frames by
:class:`~repro.wal.log.LogManager`. ``lsn`` is assigned at append time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class LogRecord:
    """Base class: every record carries its LSN once appended."""

    lsn: int = field(default=-1, init=False)


@dataclass
class CreateTableRecord(LogRecord):
    """A table was created (schema metadata for recovery)."""

    name: str
    num_columns: int
    key_index: int
    column_names: tuple[str, ...]


@dataclass
class InsertRangeRecord(LogRecord):
    """An insert range was allocated: aligned base + tail RID blocks."""

    table: str
    start_rid: int
    size: int
    tail_block_start: int


@dataclass
class TailBlockRecord(LogRecord):
    """A regular tail segment reserved a block of descending tail RIDs."""

    table: str
    range_id: int
    start_rid: int
    size: int


@dataclass
class RecordWriteRecord(LogRecord):
    """Redo for one tail-record write (insert or update path).

    ``segment`` addresses the target: ``("insert", insert_range_index)``
    for table-level tails, ``("tail", range_id)`` for regular tails.
    ``cells`` maps physical column index → value exactly as written.
    """

    table: str
    segment: tuple[str, int]
    offset: int
    cells: dict[int, Any]


@dataclass
class IndirectionRecord(LogRecord):
    """Redo for the in-place Indirection update of one base record."""

    table: str
    rid: int
    tail_rid: int


@dataclass
class TombstoneRecord(LogRecord):
    """An aborted tail record was tombstoned (abort rollback)."""

    table: str
    base_rid: int
    tail_rid: int


@dataclass
class InsertTombstoneRecord(LogRecord):
    """An aborted insert was tombstoned."""

    table: str
    rid: int


@dataclass
class TxnCommitRecord(LogRecord):
    """A transaction committed (forces a group-commit flush)."""

    txn_id: int
    commit_time: int


@dataclass
class TxnAbortRecord(LogRecord):
    """A transaction aborted (informational; tombstones carry the redo)."""

    txn_id: int


@dataclass
class MergeNoteRecord(LogRecord):
    """Operational log of a completed merge (idempotent, not replayed)."""

    table: str
    range_id: int
    merged_upto: int
    tps_rid: int


@dataclass
class CheckpointRecord(LogRecord):
    """A completed checkpoint: recovery may start from its image.

    ``start_lsn`` is the durable LSN the checkpoint image captures;
    ``directory`` names the on-disk image directory (relative to the
    log's directory). Records with an empty directory are legacy
    clean-shutdown markers and carry no image.
    """

    clock: int
    start_lsn: int = 0
    directory: str = ""
