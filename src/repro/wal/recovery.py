"""Crash recovery: checkpoint load + redo replay + indirection rebuild.

Recovery rebuilds a database from the log chain (Section 5.1.3):

1. **Checkpoint** — if the log carries a :class:`CheckpointRecord`
   whose image directory is complete (``COMPLETE`` marker present), the
   image's pages are installed directly and only the log **suffix**
   (frames past the checkpoint's captured LSN) is replayed. Start Time
   cells the image left as transaction markers (transactions straddling
   the checkpoint) are resolved against the suffix's commit records.
   Without a usable checkpoint the whole log replays.
2. **Analysis** — collect committed transactions (commit records) so
   transaction markers in Start Time cells can be resolved; everything
   without a commit record is treated as aborted ("for any uncommitted
   transactions ... the tail record is marked as invalid").
3. **Redo** — recreate tables, insert ranges and tail blocks with their
   original RIDs, then re-apply every tail-record write physically (the
   log carries the exact cells, including backpointers and Base RIDs).
4. **Indirection** — either replay the Indirection redo records
   (``option 1`` in the paper) or rebuild the column from the Base RID
   column of the tails (``option 2``); both are implemented and
   equivalent. Checkpoint-based recovery always uses option 2 (the
   prefix's Indirection records live in truncated segments).
5. **Derived state** — primary/secondary indexes, per-record
   updated-bits, allocator watermarks and the clock are rebuilt by
   scanning, never logged.

Merges are *not* replayed: they are idempotent and simply re-run after
recovery (the paper's operational logging).

The recovered database carries a :class:`RecoveryReport` (as
``database.recovery_report``) accounting for every record replayed or
skipped and every byte the reader had to salvage or quarantine — a
corrupted log degrades into a structured report, never a crash loop.

Checkpoint images load through :mod:`repro.storage.serialization`: with
byte-buffer pages (the default) each CRC-verified image splices straight
into a fresh page buffer; replayed tail writes then append through the
normal byte-buffer hot path. Recovery is layout-agnostic — images
written under one page layout restore into a database running the other.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.db import Database
from ..core.rid import TailBlock
from ..core.schema import (BASE_RID_COLUMN, INDIRECTION_COLUMN,
                           SCHEMA_ENCODING_COLUMN, START_TIME_COLUMN)
from ..core.table import InsertRange, Table, UpdateRange
from ..core.types import (NULL_RID, is_tail_rid, is_txn_marker,
                          txn_id_from_marker)
from ..core.encoding import SchemaEncoding
from ..errors import RecoveryError
from ..obs.trace import span
from .log import LogManager, LogSalvage, QuarantinedFrame
from .records import (CheckpointRecord, CreateTableRecord, IndirectionRecord,
                      InsertRangeRecord, InsertTombstoneRecord, LogRecord,
                      RecordWriteRecord, TailBlockRecord, TombstoneRecord,
                      TxnCommitRecord)


@dataclass
class RecoveryReport:
    """What recovery replayed, skipped, and salvaged."""

    records_total: int = 0
    records_replayed: int = 0
    #: Records below the checkpoint LSN, served from the image instead.
    records_skipped: int = 0
    checkpoint_directory: str | None = None
    #: Durable LSN the checkpoint image captured (0 = no checkpoint).
    checkpoint_lsn: int = 0
    salvaged_bytes: int = 0
    quarantined: list[QuarantinedFrame] = field(default_factory=list)
    segments: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the log needed no salvage at all."""
        return not self.salvaged_bytes and not self.quarantined


def recover_database(log_path: str, *, config: Any = None,
                     rebuild_indirection: bool = False,
                     use_checkpoint: bool = True) -> Database:
    """Replay *log_path* into a new :class:`~repro.core.db.Database`.

    With ``rebuild_indirection=True`` the Indirection redo records are
    ignored and the column is reconstructed from the tails (the paper's
    recovery option 2). ``use_checkpoint=False`` forces a full replay
    even when a complete checkpoint image exists (used by equivalence
    tests).
    """
    with span("recovery.replay", log=log_path):
        return _recover_database(log_path, config, rebuild_indirection,
                                 use_checkpoint)


def _recover_database(log_path: str, config: Any,
                      rebuild_indirection: bool,
                      use_checkpoint: bool) -> Database:
    records, salvage = LogManager.read_log(log_path)
    committed, max_time = _analyze(records)

    checkpoint = _latest_complete_checkpoint(records, log_path) \
        if use_checkpoint else None

    database = Database(config) if config is not None else Database()
    report = RecoveryReport(
        records_total=len(records), salvaged_bytes=salvage.salvaged_bytes,
        quarantined=list(salvage.quarantined),
        segments=list(salvage.segments))

    def resolve_cell(cell: Any) -> tuple[bool, Any]:
        """Map a logged start cell to (keep, resolved value)."""
        if not isinstance(cell, int) or not is_txn_marker(cell):
            return True, cell
        txn_id = txn_id_from_marker(cell)
        commit_time = committed.get(txn_id)
        if commit_time is None:
            return False, cell  # uncommitted at crash: tombstone it
        return True, commit_time  # stamp the commit time eagerly

    if checkpoint is not None:
        record, image_dir = checkpoint
        from .checkpoint import load_manifest
        manifest = load_manifest(image_dir)
        _load_checkpoint(database, manifest, image_dir, resolve_cell)
        max_time = max(max_time, manifest["clock"])
        # Prefix Indirection records live in truncated segments, so the
        # column is always rebuilt from the tails (option 2).
        rebuild_indirection = True
        suffix = [r for r in records if r.lsn > manifest["start_lsn"]]
        replay_max = _replay_records(database, suffix, resolve_cell,
                                     rebuild_indirection=True)
        report.records_replayed = len(suffix)
        report.records_skipped = len(records) - len(suffix)
        report.checkpoint_directory = image_dir
        report.checkpoint_lsn = manifest["start_lsn"]
    else:
        replay_max = _replay_records(database, records, resolve_cell,
                                     rebuild_indirection=rebuild_indirection)
        report.records_replayed = len(records)
    max_time = max(max_time, replay_max)

    # -- Derived state: indexes, cursors, horizons, clock ------------------
    for table in database.tables.values():
        _rebuild_derived_state(table, rebuild_indirection)
        table.clock.advance_to(max_time)
    database.clock.advance_to(max_time)
    # Re-enable logging for post-recovery work when the target database
    # itself carries a WAL (the replay ran with logging suppressed).
    if database._wal is not None:
        from .log import attach_table_logging
        for table in database.tables.values():
            attach_table_logging(database._wal, table)
    database.recovery_report = report
    return database


def _analyze(records: list[LogRecord]) -> tuple[dict[int, int], int]:
    """Phase 1: committed-transaction map + max commit time."""
    committed: dict[int, int] = {}
    max_time = 0
    for record in records:
        if isinstance(record, TxnCommitRecord):
            committed[record.txn_id] = record.commit_time
            max_time = max(max_time, record.commit_time)
    return committed, max_time


def _latest_complete_checkpoint(
        records: list[LogRecord],
        log_path: str) -> tuple[CheckpointRecord, str] | None:
    """Find the newest CheckpointRecord with a complete on-disk image."""
    from .checkpoint import checkpoint_dir_path, is_complete
    best: tuple[CheckpointRecord, str] | None = None
    for record in records:
        if isinstance(record, CheckpointRecord) and record.directory:
            path = checkpoint_dir_path(log_path, record.directory)
            if is_complete(path):
                best = (record, path)
    return best


def _replay_records(database: Database, records: list[LogRecord],
                    resolve_cell: Callable[[Any], tuple[bool, Any]], *,
                    rebuild_indirection: bool,
                    collect_structural: bool = False) -> Any:
    """Phase 3 redo loop: replay *records* into *database*.

    Returns the max resolved commit time seen — or, with
    ``collect_structural=True`` (the checkpoint shadow replay), the list
    of structural records (table/range/block creations) for the
    manifest.
    """
    structural: list[LogRecord] = []
    max_time = 0
    pending_tombstones: list[tuple[Table, tuple[str, int], int]] = []
    for record in records:
        if isinstance(record, CreateTableRecord):
            if collect_structural:
                structural.append(record)
            if record.name not in database.tables:
                table = database.create_table(
                    record.name, record.num_columns, record.key_index,
                    column_names=record.column_names or None)
                table.wal = None  # do not re-log the replay itself
        elif isinstance(record, InsertRangeRecord):
            if collect_structural:
                structural.append(record)
            table = database.get_table(record.table)
            _replay_insert_range(table, record)
        elif isinstance(record, TailBlockRecord):
            if collect_structural:
                structural.append(record)
            table = database.get_table(record.table)
            _replay_tail_block(table, record)
        elif isinstance(record, RecordWriteRecord):
            table = database.get_table(record.table)
            segment = _segment_for(table, record.segment)
            cells = dict(record.cells)
            start = cells.get(START_TIME_COLUMN)
            keep, resolved = resolve_cell(start)
            cells[START_TIME_COLUMN] = resolved if keep else 0
            if keep and isinstance(resolved, int) \
                    and not is_txn_marker(resolved):
                max_time = max(max_time, resolved)
            segment.write_record(record.offset, cells)
            if not keep:
                pending_tombstones.append(
                    (table, record.segment, record.offset))
        elif isinstance(record, IndirectionRecord):
            if rebuild_indirection:
                continue
            table = database.get_table(record.table)
            update_range, offset = table.locate(record.rid)
            update_range.indirection.set(offset, record.tail_rid)
        elif isinstance(record, TombstoneRecord):
            table = database.get_table(record.table)
            update_range, _ = table.locate(record.base_rid)
            segment, tail_offset = update_range.locate_tail(record.tail_rid)
            segment.mark_tombstone(tail_offset)
        elif isinstance(record, InsertTombstoneRecord):
            table = database.get_table(record.table)
            update_range, offset = table.locate(record.rid)
            update_range.insert_range.segment.mark_tombstone(
                update_range.insert_offset(offset))
    for table, segment_ref, offset in pending_tombstones:
        _segment_for(table, segment_ref).mark_tombstone(offset)
    if collect_structural:
        return structural
    return max_time


def _load_checkpoint(database: Database, manifest: dict[str, Any],
                     image_dir: str,
                     resolve_cell: Callable[[Any], tuple[bool, Any]]) -> None:
    """Install a checkpoint image: structure, pages, marker resolution."""
    from ..storage.disk import PageFile
    _replay_records(database, manifest["structural"], resolve_cell,
                    rebuild_indirection=True)
    for name, info in manifest["tables"].items():
        table = database.get_table(name)
        page_file = PageFile(os.path.join(image_dir, info["page_file"]))
        try:
            for i, seg_info in enumerate(info["insert_segments"]):
                if i >= len(table.insert_ranges):
                    raise RecoveryError(
                        "checkpoint image names insert range %d the "
                        "manifest structure never created" % i)
                _install_segment(table, table.insert_ranges[i].segment,
                                 seg_info, page_file, resolve_cell)
            for range_id, seg_info in info["tail_segments"].items():
                update_range = table.ranges.get(range_id)
                if update_range is None or update_range.tail is None:
                    raise RecoveryError(
                        "checkpoint image names tail of range %d the "
                        "manifest structure never created" % range_id)
                _install_segment(table, update_range.tail, seg_info,
                                 page_file, resolve_cell)
        finally:
            page_file.close(sync=False)
        table.page_counter.advance_to(info["max_page_id"])


def _install_segment(table: Table, segment: Any, seg_info: dict[str, Any],
                     page_file: Any,
                     resolve_cell: Callable[[Any], tuple[bool, Any]]) -> None:
    """Install one segment's image pages and resolve its markers."""
    for column, page_ids in seg_info["pages"].items():
        pages = [page_file.read_page(page_id) for page_id in page_ids]
        for page in pages:
            table.page_directory.register(page)
        segment._pages[column] = pages
    if seg_info["row_pages"]:
        row_pages = [page_file.read_page(page_id)
                     for page_id in seg_info["row_pages"]]
        for page in row_pages:
            table.page_directory.register(page)
        segment._row_pages = row_pages
    segment._tombstones = set(seg_info["tombstones"])
    # Straddling transactions: the image kept their Start Time markers;
    # the suffix's commit records decide stamp vs tombstone.
    for offset, marker in seg_info["markers"]:
        keep, resolved = resolve_cell(marker)
        if keep:
            segment.replace_record_cell(offset, START_TIME_COLUMN,
                                        marker, resolved)
        else:
            segment.replace_record_cell(offset, START_TIME_COLUMN,
                                        marker, 0)
            segment.mark_tombstone(offset)


def _segment_for(table: Table, segment_ref: tuple[str, int]) -> Any:
    kind, index = segment_ref
    if kind == "insert":
        try:
            return table.insert_ranges[index].segment
        except IndexError:
            raise RecoveryError(
                "log references insert range %d before its creation"
                % index) from None
    update_range = table.ranges.get(index)
    if update_range is None or update_range.tail is None:
        raise RecoveryError(
            "log references tail segment of range %d before its block"
            % index)
    return update_range.tail


def _replay_insert_range(table: Table, record: InsertRangeRecord) -> None:
    """Recreate an insert range with its original RIDs."""
    table.rid_allocator.advance_base_to(record.start_rid + record.size)
    table.rid_allocator.advance_tail_below(
        record.tail_block_start - record.size)
    segment = table._new_tail_segment(
        (record.start_rid - 1) // table.config.update_range_size,
        segment_ref=("insert", len(table.insert_ranges)),
        page_capacity=table.config.records_per_page)
    segment.wal = None
    segment.adopt_block(TailBlock(start_rid=record.tail_block_start,
                                  size=record.size))
    insert_range = InsertRange(record.start_rid, record.size, segment)
    rid = record.start_rid
    while rid < record.start_rid + record.size:
        range_id = (rid - 1) // table.config.update_range_size
        table.ranges[range_id] = UpdateRange(
            range_id, rid, table.config.update_range_size, insert_range)
        rid += table.config.update_range_size
    table.insert_ranges.append(insert_range)


def _replay_tail_block(table: Table, record: TailBlockRecord) -> None:
    """Recreate one regular tail block with its original RIDs."""
    table.rid_allocator.advance_tail_below(record.start_rid - record.size)
    update_range = table.ranges.get(record.range_id)
    if update_range is None:
        raise RecoveryError(
            "tail block for unknown range %d" % record.range_id)
    tail = update_range.ensure_tail(
        lambda: table._new_tail_segment(update_range.range_id))
    tail.wal = None
    tail.adopt_block(TailBlock(start_rid=record.start_rid,
                               size=record.size))


def _rebuild_derived_state(table: Table, rebuild_indirection: bool) -> None:
    """Rebuild indexes, updated-bits, allocator cursors, indirections."""
    num_columns = table.schema.num_columns
    key_physical = table.schema.physical_index(table.schema.key_index)
    for insert_range in table.insert_ranges:
        segment = insert_range.segment
        # Restore the allocation cursor: slots are handed out in order.
        allocated = 0
        for offset in range(insert_range.size):
            if segment.record_written(offset):
                allocated = offset + 1
        insert_range._allocated = allocated
        for offset in range(allocated):
            if segment.is_tombstone(offset):
                continue
            key = segment.record_cell(offset, key_physical)
            rid = insert_range.start_rid + offset
            table.index.primary.replace(key, rid)
            table.stat_inserts += 1
    for update_range in table.sorted_ranges():
        tail = update_range.tail
        if tail is None:
            continue
        newest_per_record: dict[int, int] = {}
        limit = tail.num_reserved_slots()
        used = 0
        for tail_offset in range(limit):
            if not tail.record_written(tail_offset):
                continue
            used = tail_offset + 1
            encoding = SchemaEncoding.from_int(
                num_columns,
                tail.record_cell(tail_offset, SCHEMA_ENCODING_COLUMN))
            base_rid = tail.record_cell(tail_offset, BASE_RID_COLUMN)
            offset = base_rid - update_range.start_rid
            bits = encoding.to_int() & ((1 << num_columns) - 1)
            update_range.updated_bits[offset] |= bits
            # Recovered ranges start unmerged, so every replayed tail
            # record re-enters the incremental scan patch-set.
            update_range.note_tail_append(offset)
            if not encoding.is_snapshot:
                newest_per_record[offset] = tail.rid_at(tail_offset)
        _restore_block_cursors(tail, used)
        # Version-horizon summary: replay stamped committed markers to
        # plain commit times (uncommitted records are tombstoned), so
        # the recomputation over the recovered tail is exact.
        table.rebuild_unmerged_horizon(update_range)
        if rebuild_indirection:
            for offset, tail_rid in newest_per_record.items():
                update_range.indirection.set(offset, tail_rid)


def _restore_block_cursors(segment: Any, used_slots: int) -> None:
    """Advance tail-block allocation cursors past the replayed records."""
    remaining = used_slots
    for _, block in segment._blocks:
        take = min(block.size, remaining)
        block._used = take
        remaining -= take
        if remaining <= 0:
            break
