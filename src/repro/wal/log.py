"""Log manager: LSN assignment, buffered appends, true group commit.

Records are pickled into length-prefixed frames. Appends go to an
in-memory buffer; commit records trigger a **leader/follower group
commit** (Section 6.1 notes group commit is what keeps logging off the
critical path): the first committer to reach the sync point becomes
the *leader* — it drains every buffered frame (its own commit record
plus everything concurrent committers buffered behind it), writes and
fsyncs once, then publishes the synced LSN and wakes the *followers*,
each of which returns as soon as the synced LSN covers its commit
record. N concurrent committers therefore share ~1 fsync instead of
paying one each (``stat_flushes`` << commit count under concurrency),
and the fsync itself runs outside the append latch, so appenders keep
buffering while the disk syncs. A torn final frame (crash mid-write)
is detected and discarded during iteration.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
from typing import Any, Iterator

from ..errors import WALError
from .records import (CreateTableRecord, IndirectionRecord,
                      InsertRangeRecord, InsertTombstoneRecord, LogRecord,
                      RecordWriteRecord, TailBlockRecord, TombstoneRecord,
                      TxnCommitRecord)

_FRAME_HEADER = struct.Struct("<I")


class LogManager:
    """Append-only write-ahead log backed by one file."""

    def __init__(self, path: str, *, flush_threshold: int = 64 * 1024,
                 sync_on_commit: bool = True) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._buffer: list[bytes] = []
        self._buffered_bytes = 0
        self._flush_threshold = flush_threshold
        self._sync_on_commit = sync_on_commit
        self._next_lsn = 1
        self._file = open(path, "ab")
        #: Group-commit state: leader election + synced-LSN publication.
        self._sync_cond = threading.Condition()
        self._sync_leader_active = False
        self._synced_lsn = 0
        self.stat_appends = 0
        self.stat_flushes = 0
        #: Commit records whose durability was covered by another
        #: leader's fsync (observability: group-commit effectiveness).
        self.stat_piggybacked_syncs = 0

    # -- appends ------------------------------------------------------------

    def append(self, record: LogRecord) -> int:
        """Assign an LSN, buffer the frame; sync through group commit.

        Commit records return only once durable — but the fsync that
        makes them durable may be another committer's (leader/follower
        group commit). Non-commit records stay buffered until a commit
        or the size threshold flushes them.
        """
        with self._lock:
            record.lsn = self._next_lsn
            self._next_lsn += 1
            payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
            self._buffer.append(_FRAME_HEADER.pack(len(payload)) + payload)
            self._buffered_bytes += len(payload) + _FRAME_HEADER.size
            self.stat_appends += 1
            lsn = record.lsn
            oversize = self._buffered_bytes >= self._flush_threshold
        if isinstance(record, TxnCommitRecord):
            self.sync_to(lsn, _commit=True)
        elif oversize:
            self.flush()
        return lsn

    def sync_to(self, lsn: int, *, _commit: bool = False) -> None:
        """Return once every frame up to *lsn* is durably on disk.

        Leader/follower protocol: whoever arrives while no leader is
        active becomes the leader, drains the whole buffer (which
        includes every follower's frames — frames are buffered in LSN
        order under the append latch), and fsyncs **outside** both the
        append latch and the condition lock; followers wait on the
        condition until the published synced LSN covers them. A
        follower whose LSN is still uncovered when the leader finishes
        (it buffered after the leader's drain) takes the next
        leadership round.
        """
        with self._sync_cond:
            while True:
                if self._synced_lsn >= lsn:
                    if _commit:
                        # Only commit records count: the stat reports
                        # group-commit effectiveness (commits whose
                        # durability rode another committer's fsync),
                        # not idle flush()/close() fast-path hits.
                        self.stat_piggybacked_syncs += 1
                    return
                if not self._sync_leader_active:
                    self._sync_leader_active = True
                    break
                self._sync_cond.wait()
        synced = self._synced_lsn
        try:
            synced = self._drain_and_sync()
        finally:
            with self._sync_cond:
                self._sync_leader_active = False
                if synced > self._synced_lsn:
                    self._synced_lsn = synced
                self._sync_cond.notify_all()

    def _drain_and_sync(self) -> int:
        """Write + fsync everything buffered; return the covered LSN."""
        with self._lock:
            data = b"".join(self._buffer)
            self._buffer.clear()
            self._buffered_bytes = 0
            # Every frame with an LSN below the next one is either in
            # *data* or already written by an earlier drain.
            covered = self._next_lsn - 1
            file = self._file
        if data:
            # Outside the append latch: appenders keep buffering while
            # the disk syncs. Drains are serialised by leadership, so
            # frames hit the file in LSN order.
            file.write(data)
            file.flush()
            if self._sync_on_commit:
                os.fsync(file.fileno())
            self.stat_flushes += 1
        return covered

    def flush(self) -> None:
        """Write the buffer to the file and (optionally) fsync."""
        self.sync_to(self.last_lsn)

    def close(self) -> None:
        """Flush and close the log file."""
        self.flush()
        with self._lock:
            if not self._file.closed:
                self._file.close()

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended record."""
        with self._lock:
            return self._next_lsn - 1

    # -- reads ------------------------------------------------------------

    @staticmethod
    def read_records(path: str) -> Iterator[LogRecord]:
        """Iterate records from a log file, tolerating a torn tail."""
        if not os.path.exists(path):
            return
        with open(path, "rb") as handle:
            while True:
                header = handle.read(_FRAME_HEADER.size)
                if len(header) < _FRAME_HEADER.size:
                    return  # clean EOF or torn header: stop
                (length,) = _FRAME_HEADER.unpack(header)
                payload = handle.read(length)
                if len(payload) < length:
                    return  # torn frame from a crash mid-write
                try:
                    record = pickle.loads(payload)
                except Exception as exc:  # corrupted frame
                    raise WALError("corrupted log frame: %s" % exc) from exc
                yield record


class TableWAL:
    """Per-table adapter the storage layer calls into.

    Installed on :class:`~repro.core.table.Table` (and propagated to its
    tail segments); translates storage events into log records.
    """

    def __init__(self, log: LogManager, table_name: str) -> None:
        self._log = log
        self._table = table_name

    def insert_range_created(self, start_rid: int, size: int,
                             tail_block_start: int) -> None:
        """Log an insert-range allocation."""
        self._log.append(InsertRangeRecord(
            table=self._table, start_rid=start_rid, size=size,
            tail_block_start=tail_block_start))

    def tail_block_reserved(self, range_id: int, start_rid: int,
                            size: int) -> None:
        """Log a regular tail-block reservation."""
        self._log.append(TailBlockRecord(
            table=self._table, range_id=range_id, start_rid=start_rid,
            size=size))

    def record_written(self, segment: tuple[str, int], offset: int,
                       cells: dict[int, Any]) -> None:
        """Log the redo image of one tail-record write."""
        self._log.append(RecordWriteRecord(
            table=self._table, segment=segment, offset=offset,
            cells=dict(cells)))

    def indirection_written(self, rid: int, tail_rid: int) -> None:
        """Log the redo of one indirection install."""
        self._log.append(IndirectionRecord(
            table=self._table, rid=rid, tail_rid=tail_rid))

    def tombstoned(self, base_rid: int, tail_rid: int) -> None:
        """Log an abort tombstone."""
        self._log.append(TombstoneRecord(
            table=self._table, base_rid=base_rid, tail_rid=tail_rid))

    def insert_tombstoned(self, rid: int) -> None:
        """Log an aborted-insert tombstone."""
        self._log.append(InsertTombstoneRecord(table=self._table, rid=rid))


def attach_table_logging(log: LogManager, table: "Any") -> TableWAL:
    """Wire *table* to *log*: logs the schema, installs the adapter.

    Propagates to segments that already exist (e.g. after recovery), so
    a re-attached table logs every subsequent write.
    """
    log.append(CreateTableRecord(
        name=table.schema.name, num_columns=table.schema.num_columns,
        key_index=table.schema.key_index,
        column_names=tuple(table.schema.column_names)))
    adapter = TableWAL(log, table.schema.name)
    table.wal = adapter
    for insert_range in table.insert_ranges:
        insert_range.segment.wal = adapter
    for update_range in table.ranges.values():
        if update_range.tail is not None:
            update_range.tail.wal = adapter
    return adapter
