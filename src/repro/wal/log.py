"""Log manager: checksummed segmented WAL v2 with fail-stop group commit.

Frame format (v2)
-----------------

Every segment file starts with the 8-byte magic ``b"LSWAL2\\x00\\n"``;
after it, records are pickled into checksummed frames::

    <u32 payload length> <u32 crc32> <i64 lsn> <payload bytes>

The CRC covers the LSN and the payload, so a flipped byte anywhere in a
frame (header or body) is detected on read. Files without the magic are
parsed as legacy **v1** frames (``<u32 length><payload>``) so logs
written before the format change stay replayable. A segment header
appearing mid-stream is skipped — two log generations spliced
byte-for-byte (crash, recover into a new WAL, crash again) read as one
stream.

Segment layout
--------------

The base path (e.g. ``wal.log``) is segment 0; rotation creates sibling
files ``wal.log.000001``, ``wal.log.000002``, … when the active segment
exceeds :attr:`~repro.core.config.EngineConfig.wal_segment_bytes`.
:attr:`LogManager.path` always names the *active* segment. Readers
resolve the chain from the base path; checkpoints delete segments whose
frames are all covered by the checkpoint LSN
(:meth:`LogManager.truncate_segments_below` — the base file is kept,
truncated to its header, so the chain root always exists).

Salvage
-------

Reads never raise on corruption. A torn tail (crash mid-write) is
discarded and counted (``stat_salvaged_bytes``; reopening for append
also physically truncates it). A corrupt frame *before* the tail is
quarantined: the reader verifies that the frame's length field lands on
another valid frame (falling back to a bounded byte scan) and records a
:class:`QuarantinedFrame` in the :class:`LogSalvage` report instead of
crashing the recovery loop.

Group commit (fail-stop)
------------------------

Appends buffer frames; commit records trigger the leader/follower group
commit (Section 6.1): the first committer drains every buffered frame,
writes and fsyncs once outside the append latch, then publishes the
synced LSN and wakes the followers. The drain is **fail-stop**: frames
stay buffered until the write+fsync succeeds, the published LSN is the
last *drained* frame's (never a covering LSN over lost frames), and a
write/fsync error is retried with backoff a bounded number of times
(``stat_sync_retries``) after rewinding the partial write — persistent
failure *poisons* the log, so every current and future committer gets a
:class:`~repro.errors.WALError` instead of a false durability ack.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import time
import warnings
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import WALError
from ..analysis.locks import make_lock
from ..fault import hit as fault_hit
from ..fault import wrap_file
from ..obs.registry import (SIZE_BUCKETS, CounterStat, GaugeStat,
                            MetricsRegistry)
from ..obs.trace import span
from .records import (CreateTableRecord, IndirectionRecord,
                      InsertRangeRecord, InsertTombstoneRecord, LogRecord,
                      RecordWriteRecord, TailBlockRecord, TombstoneRecord,
                      TxnCommitRecord)

_SEGMENT_MAGIC = b"LSWAL2\x00\n"
_FRAME_HEADER = struct.Struct("<I")  # legacy v1: payload length only
_V2_HEADER = struct.Struct("<IIq")  # payload length, crc32, lsn
_LSN_PACK = struct.Struct("<q")

#: Upper bound a frame length field may claim before the reader treats
#: the header itself as corrupt and resyncs.
_MAX_FRAME = 64 * 1024 * 1024

#: Bytes the salvage reader scans forward looking for the next valid
#: frame after a corrupt header whose length field cannot be trusted.
_RESYNC_WINDOW = 256 * 1024


def _frame_crc(lsn: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(_LSN_PACK.pack(lsn)))


@dataclass
class QuarantinedFrame:
    """One corrupt byte range the salvage reader skipped over."""

    path: str
    offset: int
    length: int
    reason: str


@dataclass
class LogSalvage:
    """Structured account of everything a log read had to discard."""

    segments: list[str] = field(default_factory=list)
    #: Torn/corrupt tail bytes discarded (longest-valid-prefix salvage).
    salvaged_bytes: int = 0
    #: Corrupt non-tail frames skipped (mid-log corruption).
    quarantined: list[QuarantinedFrame] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing was discarded."""
        return not self.salvaged_bytes and not self.quarantined


def _plausible_frame_at(data: bytes, pos: int) -> bool:
    """Heuristic: does *pos* look like a frame boundary?

    Used to validate a resync target: a clean EOF, a segment header, a
    complete frame with a matching CRC, or an incomplete frame whose
    length field is sane (a torn tail — salvaged on the next step).
    """
    size = len(data)
    if pos == size:
        return True
    if data[pos:pos + len(_SEGMENT_MAGIC)] == _SEGMENT_MAGIC:
        return True
    if size - pos < _V2_HEADER.size:
        return False
    length, crc, lsn = _V2_HEADER.unpack_from(data, pos)
    if length > _MAX_FRAME:
        return False
    end = pos + _V2_HEADER.size + length
    if end > size:
        return True  # torn tail frame: plausible, unverifiable
    return _frame_crc(lsn, data[pos + _V2_HEADER.size:end]) == crc


def _resync(data: bytes, start: int) -> int | None:
    """Scan forward (bounded) for the next plausible frame boundary."""
    limit = min(len(data), start + _RESYNC_WINDOW)
    for pos in range(start, limit):
        if _plausible_frame_at(data, pos):
            return pos
    return None


def _parse_v1(data: bytes, path: str,
              salvage: LogSalvage) -> Iterator[tuple[LogRecord, int]]:
    pos, size = 0, len(data)
    while pos < size:
        if size - pos < _FRAME_HEADER.size:
            salvage.salvaged_bytes += size - pos
            return  # torn header
        (length,) = _FRAME_HEADER.unpack_from(data, pos)
        end = pos + _FRAME_HEADER.size + length
        if end > size:
            salvage.salvaged_bytes += size - pos
            return  # torn frame from a crash mid-write
        try:
            record = pickle.loads(data[pos + _FRAME_HEADER.size:end])
        except Exception as exc:
            # v1 frames carry no checksum and no resync anchor: salvage
            # the valid prefix and quarantine the rest.
            salvage.quarantined.append(QuarantinedFrame(
                path, pos, size - pos, "undecodable v1 frame: %s" % exc))
            return
        yield record, end
        pos = end


def _parse_frames(data: bytes, path: str,
                  salvage: LogSalvage) -> Iterator[tuple[LogRecord, int]]:
    """Yield ``(record, end_offset)``; never raises on corruption."""
    size = len(data)
    magic_len = len(_SEGMENT_MAGIC)
    if data[:magic_len] != _SEGMENT_MAGIC:
        yield from _parse_v1(data, path, salvage)
        return
    pos = magic_len
    while pos < size:
        if data[pos:pos + magic_len] == _SEGMENT_MAGIC:
            pos += magic_len  # spliced generation header
            continue
        if size - pos < _V2_HEADER.size:
            salvage.salvaged_bytes += size - pos
            return  # torn header
        length, crc, lsn = _V2_HEADER.unpack_from(data, pos)
        end = pos + _V2_HEADER.size + length
        bad_reason = None
        if length > _MAX_FRAME:
            bad_reason = "implausible frame length %d" % length
            end = None
        elif end > size:
            salvage.salvaged_bytes += size - pos
            return  # torn frame
        else:
            payload = data[pos + _V2_HEADER.size:end]
            if _frame_crc(lsn, payload) != crc:
                bad_reason = "checksum mismatch (lsn field %d)" % lsn
            else:
                try:
                    record = pickle.loads(payload)
                except Exception as exc:
                    bad_reason = "undecodable frame: %s" % exc
        if bad_reason is None:
            yield record, end
            pos = end
            continue
        # Corrupt frame. A corrupt *final* frame is indistinguishable
        # from a torn write: salvage the prefix. Mid-log, skip to the
        # next frame — trust the length field if it lands on a valid
        # boundary, else resync with a bounded byte scan.
        if end is not None and end < size and _plausible_frame_at(data, end):
            resync_at = end
        else:
            resync_at = _resync(data, pos + 1)
        if resync_at is None or resync_at >= size:
            salvage.salvaged_bytes += size - pos
            return
        salvage.quarantined.append(QuarantinedFrame(
            path, pos, resync_at - pos, bad_reason))
        pos = resync_at


class LogManager:
    """Append-only write-ahead log over a chain of segment files."""

    def __init__(self, path: str, *, flush_threshold: int = 64 * 1024,
                 sync_on_commit: bool = True,
                 segment_bytes: int | None = None,
                 sync_retries: int = 4,
                 retry_backoff: float = 0.002,
                 metrics: Any | None = None) -> None:
        self._base_path = path
        self._lock = make_lock("wal.append")
        #: Buffered frames as ``(lsn, frame bytes)`` — the drain clears
        #: an entry only once it is durably on disk (fail-stop).
        self._buffer: list[tuple[int, bytes]] = []
        self._buffered_bytes = 0
        self._flush_threshold = flush_threshold
        self._sync_on_commit = sync_on_commit
        self._segment_bytes = segment_bytes
        self._sync_retries = sync_retries
        self._retry_backoff = retry_backoff
        self._poisoned: WALError | None = None
        #: Group-commit state: leader election + synced-LSN publication.
        self._sync_cond = threading.Condition()
        self._sync_leader_active = False
        self._synced_lsn = 0
        if metrics is None:
            metrics = MetricsRegistry()
        self.metrics = metrics
        self._stat_appends = metrics.counter(
            "wal.appends", help="Frames appended to the log buffer")
        self._stat_flushes = metrics.counter(
            "wal.flushes", help="Buffer drains written to disk")
        self._stat_piggybacked = metrics.counter(
            "wal.piggybacked_syncs",
            help="Commits made durable by another leader's fsync")
        self._stat_sync_retries = metrics.counter(
            "wal.sync_retries",
            help="Write/fsync attempts that failed and were retried")
        self._stat_salvaged_bytes = metrics.counter(
            "wal.salvaged_bytes",
            help="Torn/corrupt tail bytes truncated at reopen")
        self._stat_segments_truncated = metrics.counter(
            "wal.segments_truncated",
            help="Dead segments removed by checkpoint truncation")
        self._stat_last_checkpoint_lsn = metrics.gauge(
            "wal.last_checkpoint_lsn",
            help="LSN covered by the newest complete checkpoint")
        self._stat_last_checkpoint_seconds = metrics.gauge(
            "wal.last_checkpoint_seconds",
            help="Wall time of the newest checkpoint")
        self._fsync_seconds = metrics.histogram(
            "wal.fsync_seconds", unit="seconds",
            help="fsync latency of the group-commit leader")
        self._batch_sizes = metrics.histogram(
            "wal.group_commit_batch", bounds=SIZE_BUCKETS,
            help="Frames drained per group-commit flush")
        # Fail-stop poisoning surfaced *before* commit time: without
        # this gauge the first symptom of a dead log is a WALError out
        # of some later commit.
        metrics.gauge("wal.poisoned",
                      lambda: 1 if self._poisoned is not None else 0,
                      help="1 once a persistent IO failure fail-stopped "
                           "the log")
        self._next_lsn = 1
        self._open_active_segment()

    # -- statistics (registry-backed aliases) ------------------------------

    stat_appends = CounterStat(
        "_stat_appends", "Frames appended to the log buffer.")
    stat_flushes = CounterStat(
        "_stat_flushes", "Buffer drains written to disk.")
    stat_piggybacked_syncs = CounterStat(
        "_stat_piggybacked",
        "Commits made durable by another leader's fsync.")
    stat_sync_retries = CounterStat(
        "_stat_sync_retries", "Failed write/fsync attempts retried.")
    stat_salvaged_bytes = CounterStat(
        "_stat_salvaged_bytes", "Torn tail bytes truncated at reopen.")
    stat_segments_truncated = CounterStat(
        "_stat_segments_truncated",
        "Dead segments removed by checkpoint truncation.")
    stat_last_checkpoint_lsn = GaugeStat(
        "_stat_last_checkpoint_lsn",
        "LSN covered by the newest complete checkpoint.")
    stat_last_checkpoint_seconds = GaugeStat(
        "_stat_last_checkpoint_seconds",
        "Wall time of the newest checkpoint.")

    # -- segment management -------------------------------------------------

    def _open_active_segment(self) -> None:
        existing = self.segment_paths(self._base_path)
        if not existing:
            directory = os.path.dirname(self._base_path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._file, self.path = self._create_segment(0)
            self._segment_seq = 0
            return
        for segment in reversed(existing):
            _, last_lsn, _ = self._scan_segment(segment)
            if last_lsn:
                self._next_lsn = last_lsn + 1
                break
        active = existing[-1]
        valid_end, _, is_v2 = self._scan_segment(active)
        if not is_v2 and os.path.getsize(active) > 0:
            # Legacy v1 segment: leave it readable as-is and append v2
            # frames to a fresh sibling segment.
            seq = self._segment_seq_of(active) + 1
            self._file, self.path = self._create_segment(seq)
            self._segment_seq = seq
            return
        file = open(active, "r+b")
        file_size = os.path.getsize(active)
        if file_size < len(_SEGMENT_MAGIC):
            # Empty pre-v2 file (a v1 manager that never flushed).
            file.seek(0)
            file.write(_SEGMENT_MAGIC)
            file.truncate()
            file.flush()
        elif file_size > valid_end:
            torn = file_size - valid_end
            file.seek(valid_end)
            file.truncate()
            file.flush()
            self._stat_salvaged_bytes.add(torn)
            warnings.warn(
                "salvaged %s: truncated %d torn tail byte(s)"
                % (active, torn), RuntimeWarning, stacklevel=3)
        else:
            file.seek(0, os.SEEK_END)
        self._file = wrap_file(file, "wal")
        self.path = active
        self._segment_seq = self._segment_seq_of(active)

    def _create_segment(self, seq: int) -> tuple[Any, str]:
        path = self._segment_path(seq)
        file = open(path, "w+b")
        file.write(_SEGMENT_MAGIC)
        file.flush()
        os.fsync(file.fileno())
        return wrap_file(file, "wal"), path

    def _segment_path(self, seq: int) -> str:
        if seq == 0:
            return self._base_path
        return "%s.%06d" % (self._base_path, seq)

    def _segment_seq_of(self, path: str) -> int:
        if path == self._base_path:
            return 0
        return int(path.rsplit(".", 1)[1])

    @staticmethod
    def segment_paths(path: str) -> list[str]:
        """Resolve the segment chain rooted at *path*, in log order.

        Numbered segments are discovered by listing (not by counting
        up), so a chain with checkpoint-truncated gaps still resolves.
        """
        paths: list[str] = []
        if os.path.exists(path):
            paths.append(path)
        directory = os.path.dirname(path) or "."
        base = os.path.basename(path)
        numbered: list[tuple[int, str]] = []
        if os.path.isdir(directory):
            prefix = base + "."
            for entry in os.listdir(directory):
                if entry.startswith(prefix):
                    suffix = entry[len(prefix):]
                    if len(suffix) == 6 and suffix.isdigit():
                        numbered.append(
                            (int(suffix), os.path.join(directory, entry)))
        paths.extend(p for _, p in sorted(numbered))
        return paths

    @staticmethod
    def _scan_segment(path: str) -> tuple[int, int, bool]:
        """Return ``(valid_end_offset, last_lsn, is_v2)`` for one file."""
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return 0, 0, True
        is_v2 = data[:len(_SEGMENT_MAGIC)] == _SEGMENT_MAGIC
        end = len(_SEGMENT_MAGIC) if is_v2 else 0
        last_lsn = 0
        salvage = LogSalvage()
        for record, end_offset in _parse_frames(data, path, salvage):
            end = end_offset
            if record.lsn > last_lsn:
                last_lsn = record.lsn
        return end, last_lsn, is_v2

    def truncate_segments_below(self, lsn: int) -> int:
        """Delete closed segments whose every frame has ``lsn`` ≤ *lsn*.

        The base file is never unlinked (it roots the reader's chain
        resolution); when fully covered it is truncated back to its
        8-byte header. Returns the number of segments reclaimed.
        """
        removed = 0
        active = self.path
        for segment in self.segment_paths(self._base_path):
            if segment == active:
                continue
            valid_end, last_lsn, is_v2 = self._scan_segment(segment)
            if last_lsn == 0 or last_lsn > lsn:
                continue
            if segment == self._base_path:
                with open(segment, "r+b") as handle:
                    handle.truncate(0)
                    handle.write(_SEGMENT_MAGIC)
                    handle.flush()
                    os.fsync(handle.fileno())
            else:
                os.remove(segment)
            removed += 1
            self._stat_segments_truncated.add()
        return removed

    # -- appends ------------------------------------------------------------

    def append(self, record: LogRecord) -> int:
        """Assign an LSN, buffer the frame; sync through group commit.

        Commit records return only once durable — but the fsync that
        makes them durable may be another committer's (leader/follower
        group commit). Non-commit records stay buffered until a commit
        or the size threshold flushes them. Raises
        :class:`~repro.errors.WALError` once the log is poisoned.
        """
        with self._lock:
            if self._poisoned is not None:
                raise self._poisoned
            record.lsn = self._next_lsn
            self._next_lsn += 1
            payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
            frame = _V2_HEADER.pack(
                len(payload), _frame_crc(record.lsn, payload),
                record.lsn) + payload
            self._buffer.append((record.lsn, frame))
            self._buffered_bytes += len(frame)
            self._stat_appends.add()
            lsn = record.lsn
            oversize = self._buffered_bytes >= self._flush_threshold
        if isinstance(record, TxnCommitRecord):
            self.sync_to(lsn, _commit=True)
        elif oversize:
            self.flush()
        return lsn

    def sync_to(self, lsn: int, *, _commit: bool = False) -> None:
        """Return once every frame up to *lsn* is durably on disk.

        Leader/follower protocol: whoever arrives while no leader is
        active becomes the leader, drains the whole buffer (which
        includes every follower's frames — frames are buffered in LSN
        order under the append latch), and fsyncs **outside** both the
        append latch and the condition lock; followers wait on the
        condition until the published synced LSN covers them. A
        follower whose LSN is still uncovered when the leader finishes
        (it buffered after the leader's drain) takes the next
        leadership round. A poisoned log raises for leader and
        followers alike — nobody is acked over lost frames.
        """
        with self._sync_cond:
            while True:
                if self._poisoned is not None:
                    raise self._poisoned
                if self._synced_lsn >= lsn:
                    if _commit:
                        # Only commit records count: the stat reports
                        # group-commit effectiveness (commits whose
                        # durability rode another committer's fsync),
                        # not idle flush()/close() fast-path hits.
                        self._stat_piggybacked.add()
                    return
                if not self._sync_leader_active:
                    self._sync_leader_active = True
                    break
                self._sync_cond.wait()
        synced = self._synced_lsn
        try:
            synced = self._drain_and_sync()
        finally:
            with self._sync_cond:
                self._sync_leader_active = False
                if synced > self._synced_lsn:
                    self._synced_lsn = synced
                self._sync_cond.notify_all()

    def _drain_and_sync(self) -> int:
        """Write + fsync everything buffered; return the covered LSN.

        Fail-stop: the buffer is cleared only after a successful
        write+fsync, and the returned LSN is the last frame actually
        drained — an IO failure can therefore never be papered over by
        a later drain publishing a covering LSN. Transient errors are
        retried (rewinding the partial write first) with linear
        backoff; persistent errors poison the log.
        """
        with self._lock:
            if self._poisoned is not None:
                raise self._poisoned
            entries = list(self._buffer)
            file = self._file
        if not entries:
            return self._synced_lsn
        data = b"".join(frame for _, frame in entries)
        covered = entries[-1][0]
        if self._batch_sizes.enabled:
            self._batch_sizes.observe(len(entries))
        attempts = 0
        with span("wal.drain", frames=len(entries), bytes=len(data)):
            while True:
                start = None
                try:
                    start = file.tell()
                    fault_hit("wal.before_write")
                    # Outside the append latch: appenders keep buffering
                    # while the disk syncs. Drains are serialised by
                    # leadership, so frames hit the file in LSN order.
                    file.write(data)
                    file.flush()
                    fault_hit("wal.after_write")
                    if self._sync_on_commit:
                        fault_hit("wal.before_fsync")
                        fsync_timer = self._fsync_seconds
                        fsync_started = time.perf_counter() \
                            if fsync_timer.enabled else 0.0
                        os.fsync(file.fileno())
                        if fsync_timer.enabled:
                            fsync_timer.observe(
                                time.perf_counter() - fsync_started)
                    fault_hit("wal.after_sync")
                    break
                except OSError as exc:
                    self._stat_sync_retries.add()
                    attempts += 1
                    rewound = self._rewind(file, start)
                    if attempts > self._sync_retries or not rewound:
                        return self._poison(
                            "log write failed after %d attempt(s): %s"
                            % (attempts, exc), exc)
                    time.sleep(self._retry_backoff * attempts)
        with self._lock:
            del self._buffer[:len(entries)]
            self._buffered_bytes -= len(data)
            self._stat_flushes.add()
        self._maybe_rotate()
        return covered

    @staticmethod
    def _rewind(file: Any, start: int | None) -> bool:
        """Drop a partial write so a retry cannot duplicate frames."""
        if start is None:
            return False
        try:
            file.seek(start)
            file.truncate(start)
            file.flush()
            return True
        except OSError:
            return False

    def _poison(self, message: str, cause: BaseException | None) -> int:
        error = WALError(message + "; log poisoned (fail-stop)")
        error.__cause__ = cause
        with self._lock:
            self._poisoned = error
        raise error

    def _maybe_rotate(self) -> None:
        """Rotate to a fresh segment when the active one is full.

        Called only from the leader's drain (rotation is therefore
        serialised). The outgoing segment is fsynced before the switch
        so no durable frame ever straddles a rotation.
        """
        if self._segment_bytes is None:
            return
        try:
            if self._file.tell() < self._segment_bytes:
                return
        except OSError:
            return
        fault_hit("wal.before_rotate")
        old = self._file
        try:
            old.flush()
            os.fsync(old.fileno())
            new_file, new_path = self._create_segment(self._segment_seq + 1)
        except OSError as exc:
            self._poison("segment rotation failed: %s" % exc, exc)
        with self._lock:
            self._file = new_file
            self._segment_seq += 1
            self.path = new_path
        try:
            old.close()
        except OSError:
            pass
        fault_hit("wal.after_rotate")

    def flush(self) -> None:
        """Write the buffer to the file and (optionally) fsync."""
        self.sync_to(self.last_lsn)

    def close(self) -> None:
        """Flush (best-effort once poisoned) and close the log file."""
        try:
            self.flush()
        except WALError:
            pass  # poisoned: nothing more can be made durable
        # Snapshot the handle under the latch, close it outside: a slow
        # close() (e.g. a blocking flush of OS buffers) must not stall
        # concurrent appenders waiting on the latch.
        with self._lock:
            file = self._file
        if not file.closed:
            file.close()

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended record."""
        with self._lock:
            return self._next_lsn - 1

    @property
    def synced_lsn(self) -> int:
        """Highest LSN published as durable."""
        return self._synced_lsn

    @property
    def poisoned(self) -> bool:
        """True once a persistent IO failure fail-stopped the log."""
        return self._poisoned is not None

    @property
    def poison_reason(self) -> str | None:
        """Why the log fail-stopped, or None while healthy.

        Mirrored into ``Database.metrics()['wal']['poison_reason']`` so
        operators see the cause alongside the ``wal.poisoned`` gauge.
        """
        error = self._poisoned
        return None if error is None else str(error)

    # -- reads ------------------------------------------------------------

    @staticmethod
    def read_log(path: str) -> tuple[list[LogRecord], LogSalvage]:
        """Read the whole segment chain; return records + salvage report."""
        salvage = LogSalvage()
        records: list[LogRecord] = []
        for segment in LogManager.segment_paths(path):
            salvage.segments.append(segment)
            with open(segment, "rb") as handle:
                data = handle.read()
            for record, _ in _parse_frames(data, segment, salvage):
                records.append(record)
        return records, salvage

    @staticmethod
    def read_records(path: str) -> Iterator[LogRecord]:
        """Iterate records from a log chain, tolerating torn tails."""
        records, _ = LogManager.read_log(path)
        yield from records


class TableWAL:
    """Per-table adapter the storage layer calls into.

    Installed on :class:`~repro.core.table.Table` (and propagated to its
    tail segments); translates storage events into log records.
    """

    def __init__(self, log: LogManager, table_name: str) -> None:
        self._log = log
        self._table = table_name

    def insert_range_created(self, start_rid: int, size: int,
                             tail_block_start: int) -> None:
        """Log an insert-range allocation."""
        self._log.append(InsertRangeRecord(
            table=self._table, start_rid=start_rid, size=size,
            tail_block_start=tail_block_start))

    def tail_block_reserved(self, range_id: int, start_rid: int,
                            size: int) -> None:
        """Log a regular tail-block reservation."""
        self._log.append(TailBlockRecord(
            table=self._table, range_id=range_id, start_rid=start_rid,
            size=size))

    def record_written(self, segment: tuple[str, int], offset: int,
                       cells: dict[int, Any]) -> None:
        """Log the redo image of one tail-record write."""
        self._log.append(RecordWriteRecord(
            table=self._table, segment=segment, offset=offset,
            cells=dict(cells)))

    def indirection_written(self, rid: int, tail_rid: int) -> None:
        """Log the redo of one indirection install."""
        self._log.append(IndirectionRecord(
            table=self._table, rid=rid, tail_rid=tail_rid))

    def tombstoned(self, base_rid: int, tail_rid: int) -> None:
        """Log an abort tombstone."""
        self._log.append(TombstoneRecord(
            table=self._table, base_rid=base_rid, tail_rid=tail_rid))

    def insert_tombstoned(self, rid: int) -> None:
        """Log an aborted-insert tombstone."""
        self._log.append(InsertTombstoneRecord(table=self._table, rid=rid))


def attach_table_logging(log: LogManager, table: "Any") -> TableWAL:
    """Wire *table* to *log*: logs the schema, installs the adapter.

    Propagates to segments that already exist (e.g. after recovery), so
    a re-attached table logs every subsequent write.
    """
    log.append(CreateTableRecord(
        name=table.schema.name, num_columns=table.schema.num_columns,
        key_index=table.schema.key_index,
        column_names=tuple(table.schema.column_names)))
    adapter = TableWAL(log, table.schema.name)
    table.wal = adapter
    for insert_range in table.insert_ranges:
        insert_range.segment.wal = adapter
    for update_range in table.ranges.values():
        if update_range.tail is not None:
            update_range.tail.wal = adapter
    return adapter
