"""Ownership Relaying (OR) protocol for pageLSN maintenance (Section 5.2).

Classic WAL requires every writer to hold an exclusive page latch while
it updates the page and its pageLSN — otherwise the pageLSN can go
inconsistent with the page image (the paper walks through the exact
anomaly). The OR protocol lets all writers hold a *shared* latch
instead; only the writer with the highest LSN "owns" the page, promotes
its shared latch to exclusive, and stamps the pageLSN once on behalf of
everyone. With 100 concurrent writers, one exclusive acquisition
replaces 100.

:class:`PageLSNTracker` carries the protocol state per page (pageLSN +
ownerLSN, the latter kept in an external structure as the paper's
footnote 17 permits); :class:`OwnershipRelay` runs the protocol.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..obs.registry import CounterStat, MetricsRegistry
from ..txn.latch import AtomicCounter, SharedExclusiveLatch


@dataclass
class PageLSNTracker:
    """pageLSN / ownerLSN pair plus the page's shared-exclusive latch."""

    page_id: int
    latch: SharedExclusiveLatch = field(default_factory=SharedExclusiveLatch)
    page_lsn: int = 0
    owner_lsn: AtomicCounter = field(default_factory=AtomicCounter)
    #: Shared grants since the last flush (forced-flush starvation bound).
    grants_since_flush: int = 0

    def is_consistent(self) -> bool:
        """True when pageLSN has caught up with every relayed owner."""
        return self.page_lsn >= self.owner_lsn.get()


class OwnershipRelay:
    """Runs the OR protocol for a set of pages.

    Usage by a writer thread::

        with relay.write(page_id, lsn_source) as lsn:
            ...apply the page change; `lsn` is this write's LSN...

    On exit the relay decides whether this writer is the owner (highest
    LSN seen) and, if so, promotes to exclusive and stamps the pageLSN.

    ``theta_shared`` bounds how many shared grants may pass between two
    pageLSN stamps: past the bound new writers are held until the page
    drains and flushes (the paper's anti-starvation forced flush).
    """

    def __init__(self, *, theta_shared: int = 1024,
                 metrics: MetricsRegistry | None = None) -> None:
        self._pages: dict[int, PageLSNTracker] = {}
        self._lock = threading.Lock()
        self._theta = theta_shared
        if metrics is None:
            metrics = MetricsRegistry()
        self._stat_stamps = metrics.counter(
            "wal.or_stamps", help="pageLSN stamps by owning writers")
        self._stat_relayed = metrics.counter(
            "wal.or_relayed", help="Writes that relayed ownership")
        self._stat_forced_flushes = metrics.counter(
            "wal.or_forced_flushes",
            help="Anti-starvation forced pageLSN flushes")

    # -- statistics (registry-backed aliases) -------------------------------

    stat_stamps = CounterStat(
        "_stat_stamps", "pageLSN stamps by owning writers.")
    stat_relayed = CounterStat(
        "_stat_relayed", "Writes that relayed ownership.")
    stat_forced_flushes = CounterStat(
        "_stat_forced_flushes", "Anti-starvation forced pageLSN flushes.")

    def tracker(self, page_id: int) -> PageLSNTracker:
        """Tracker for *page_id* (created on first use)."""
        with self._lock:
            tracker = self._pages.get(page_id)
            if tracker is None:
                tracker = PageLSNTracker(page_id)
                self._pages[page_id] = tracker
            return tracker

    # -- the protocol ----------------------------------------------------------

    def write(self, page_id: int, lsn: int) -> "_WriteGuard":
        """Context manager running one write under the OR protocol."""
        return _WriteGuard(self, self.tracker(page_id), lsn)

    def _finish_write(self, tracker: PageLSNTracker, lsn: int) -> None:
        """Post-write: relay or own, per the paper's rules."""
        if tracker.owner_lsn.get() >= lsn:
            # Someone with a higher LSN already owns the page: relay.
            tracker.latch.release_shared()
            self._stat_relayed.add()
            return
        tracker.owner_lsn.max_update(lsn)
        # Promote shared → exclusive; if another writer is promoting,
        # it has (or will take) ownership of a higher LSN — relay.
        if not tracker.latch.promote():
            tracker.latch.release_shared()
            self._stat_relayed.add()
            return
        try:
            # Re-check ownership while exclusive ("checks if it is
            # still the owner while waiting").
            if tracker.owner_lsn.get() <= lsn:
                tracker.page_lsn = max(tracker.page_lsn, lsn)
            else:
                tracker.page_lsn = max(tracker.page_lsn,
                                       tracker.owner_lsn.get())
            self._stat_stamps.add()
        finally:
            tracker.latch.release_exclusive()

    def flush_page(self, page_id: int) -> int:
        """Forced flush: drain writers, stamp pageLSN, return it."""
        tracker = self.tracker(page_id)
        tracker.latch.acquire_exclusive()
        try:
            tracker.page_lsn = max(tracker.page_lsn,
                                   tracker.owner_lsn.get())
            tracker.grants_since_flush = 0
            self._stat_forced_flushes.add()
            return tracker.page_lsn
        finally:
            tracker.latch.release_exclusive()

    def page_lsn(self, page_id: int) -> int:
        """Current pageLSN of *page_id*."""
        return self.tracker(page_id).page_lsn


class _WriteGuard:
    """Shared-latch scope of one OR-protocol write."""

    def __init__(self, relay: OwnershipRelay, tracker: PageLSNTracker,
                 lsn: int) -> None:
        self._relay = relay
        self._tracker = tracker
        self._lsn = lsn

    def __enter__(self) -> int:
        tracker = self._tracker
        # Anti-starvation: force a flush once too many shared grants
        # have accumulated without a pageLSN stamp.
        if tracker.grants_since_flush >= self._relay._theta:
            self._relay.flush_page(tracker.page_id)
        tracker.latch.acquire_shared()
        tracker.grants_since_flush += 1
        return self._lsn

    def __exit__(self, exc_type: type | None, exc: BaseException | None,
                 tb: object | None) -> bool:
        if exc_type is not None:
            self._tracker.latch.release_shared()
            return False
        self._relay._finish_write(self._tracker, self._lsn)
        return False
