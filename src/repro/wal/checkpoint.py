"""Checkpointing: bound recovery to the post-checkpoint log suffix.

Checkpoint protocol
-------------------

:func:`write_checkpoint` captures the **durable prefix** of the log —
every frame with LSN ≤ the synced LSN at checkpoint start — as a page
image directory next to the WAL::

    <data_dir>/checkpoint.000003/
        pages_<table>.dat      serialized pages (PageFile, CRC'd images)
        pages_<table>.dat.idx  sidecar page index
        MANIFEST               pickled structure (see below)
        COMPLETE               commit marker (written last, fsynced)

The image is produced by **shadow replay**: the durable prefix is
replayed into a throwaway in-memory database and *that* database's
pages are serialized. The image is therefore *by construction* exactly
what recovery would have rebuilt at the checkpoint LSN — merged or
compressed pages never enter it (merges are idempotent and simply
re-run after recovery, the paper's operational logging), and no
barriers against concurrent writers are needed: writers keep appending
to the live database; frames past the captured LSN simply land in the
suffix.

Transactions straddling the checkpoint (writes in the prefix, commit in
the suffix) keep their transaction *markers* in the image's Start Time
cells; the manifest lists every such cell and recovery resolves them
against the suffix's commit records (stamp) or their absence
(tombstone). This is sound because a transaction's writes always
precede its commit record in the log: prefix-committed transactions are
fully stamped in the image, and no suffix write can belong to a
prefix-committed transaction.

Ordering makes the whole protocol crash-safe: page images → manifest →
fsynced ``COMPLETE`` marker → ``CheckpointRecord`` in the log → segment
truncation → old-image pruning. A crash anywhere leaves either a
complete older checkpoint with its full suffix, or the new one.

With byte-buffer pages (the default layout) the shadow database's pages
serialize as their raw fixed-width buffers, so the checkpoint image is
the page buffers byte-for-byte (CRC over the raw buffer) and recovery
installs them with one buffer splice per page.
"""

from __future__ import annotations

import os
import pickle
import shutil
import time
from dataclasses import dataclass
from typing import Any

from ..core.db import Database
from ..core.schema import START_TIME_COLUMN
from ..core.types import is_txn_marker
from ..fault import hit as fault_hit
from ..storage.disk import PageFile, _fsync_dir
from ..errors import WALError
from .log import LogManager
from .records import CheckpointRecord

_MANIFEST_NAME = "MANIFEST"
_COMPLETE_NAME = "COMPLETE"
_DIR_PREFIX = "checkpoint."


@dataclass
class CheckpointResult:
    """What :func:`write_checkpoint` produced."""

    directory: str
    start_lsn: int
    record_lsn: int
    pages_written: int
    segments_truncated: int
    duration_seconds: float


def checkpoint_dir_path(log_path: str, directory: str) -> str:
    """Resolve a CheckpointRecord's directory relative to the log."""
    if os.path.isabs(directory):
        return directory
    return os.path.join(os.path.dirname(log_path) or ".", directory)


def is_complete(path: str) -> bool:
    """True when *path* holds a fully written checkpoint image."""
    return (os.path.exists(os.path.join(path, _COMPLETE_NAME))
            and os.path.exists(os.path.join(path, _MANIFEST_NAME)))


def load_manifest(path: str) -> dict[str, Any]:
    """Load the pickled manifest of a complete checkpoint image."""
    with open(os.path.join(path, _MANIFEST_NAME), "rb") as handle:
        return pickle.load(handle)


def _next_seq(data_dir: str) -> int:
    highest = 0
    for entry in os.listdir(data_dir):
        if entry.startswith(_DIR_PREFIX):
            suffix = entry[len(_DIR_PREFIX):]
            if suffix.isdigit():
                highest = max(highest, int(suffix))
    return highest + 1


def _segment_image(segment: Any, page_file: PageFile) -> dict[str, Any]:
    """Serialize one (shadow) tail segment's pages into *page_file*."""
    pages: dict[int, list[int]] = {}
    for column in segment.materialized_columns():
        chain = segment.pages_for_column(column)
        for page in chain:
            page_file.write_page(page)
        pages[column] = [page.page_id for page in chain]
    row_pages = segment.row_pages()
    for page in row_pages:
        page_file.write_page(page)
    markers: list[tuple[int, int]] = []
    for offset in range(segment.num_reserved_slots()):
        if not segment.record_written(offset):
            continue
        cell = segment.record_cell(offset, START_TIME_COLUMN)
        if isinstance(cell, int) and is_txn_marker(cell):
            markers.append((offset, cell))
    return {
        "pages": pages,
        "row_pages": [page.page_id for page in row_pages],
        "tombstones": sorted(segment._tombstones),
        "markers": markers,
    }


def write_checkpoint(db: Database) -> CheckpointResult:
    """Capture the durable prefix of *db*'s log as a checkpoint image."""
    wal = db._wal
    if wal is None:
        raise WALError("checkpointing requires an attached WAL")
    started = time.monotonic()
    data_dir = db.config.data_dir
    wal.flush()
    start_lsn = wal.synced_lsn
    log_base = os.path.join(data_dir, "wal.log")
    records, _ = LogManager.read_log(log_base)
    prefix = [r for r in records
              if r.lsn <= start_lsn and not isinstance(r, CheckpointRecord)]

    # Shadow replay: rebuild the durable state in a throwaway database.
    # Straddling transactions keep their Start Time markers (resolved by
    # recovery from the suffix), so the resolver stamps prefix commits
    # and passes everything else through untouched.
    from .recovery import (_analyze, _latest_complete_checkpoint,
                           _load_checkpoint, _replay_records)
    committed, clock = _analyze(prefix)

    def resolve_cell(cell: Any) -> tuple[bool, Any]:
        if isinstance(cell, int) and is_txn_marker(cell):
            from ..core.types import txn_id_from_marker
            commit_time = committed.get(txn_id_from_marker(cell))
            if commit_time is not None:
                return True, commit_time
        return True, cell

    shadow_config = db.config.with_overrides(
        wal_enabled=False, data_dir=None, background_merge=False,
        failpoints=None, scan_parallelism=1, txn_gc_threshold=0)
    shadow = Database(shadow_config)
    try:
        # Previous checkpoints truncated the records they cover out of
        # the log, so the shadow starts from the latest complete image
        # (if any) and replays only the delta up to start_lsn.
        structural: list[Any] = []
        previous = _latest_complete_checkpoint(
            [r for r in records if r.lsn <= start_lsn], log_base)
        if previous is not None:
            _, previous_dir = previous
            previous_manifest = load_manifest(previous_dir)
            _load_checkpoint(shadow, previous_manifest, previous_dir,
                             resolve_cell)
            structural.extend(previous_manifest["structural"])
            clock = max(clock, previous_manifest["clock"])
            prefix = [r for r in prefix
                      if r.lsn > previous_manifest["start_lsn"]]
        structural.extend(
            _replay_records(shadow, prefix, resolve_cell,
                            rebuild_indirection=True,
                            collect_structural=True))

        seq = _next_seq(data_dir)
        directory = _DIR_PREFIX + "%06d" % seq
        target = os.path.join(data_dir, directory)
        os.makedirs(target, exist_ok=True)

        fault_hit("checkpoint.before_pages")
        pages_written = 0
        tables: dict[str, Any] = {}
        for name, table in shadow.tables.items():
            page_file_name = "pages_%s.dat" % name
            page_file = PageFile(os.path.join(target, page_file_name))
            insert_segments = []
            for insert_range in table.insert_ranges:
                insert_segments.append(
                    _segment_image(insert_range.segment, page_file))
            tail_segments = {}
            for range_id, update_range in table.ranges.items():
                if update_range.tail is not None:
                    tail_segments[range_id] = _segment_image(
                        update_range.tail, page_file)
            pages_written += page_file.stat_writes
            max_page_id = max(page_file.page_ids(), default=0)
            page_file.close()
            tables[name] = {
                "page_file": page_file_name,
                "insert_segments": insert_segments,
                "tail_segments": tail_segments,
                "max_page_id": max_page_id,
            }
        fault_hit("checkpoint.after_pages")
    finally:
        shadow.close()

    manifest = {
        "version": 1,
        "start_lsn": start_lsn,
        "clock": clock,
        "structural": structural,
        "tables": tables,
    }
    fault_hit("checkpoint.before_manifest")
    manifest_path = os.path.join(target, _MANIFEST_NAME)
    with open(manifest_path, "wb") as handle:
        pickle.dump(manifest, handle, protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())

    fault_hit("checkpoint.before_marker")
    marker_path = os.path.join(target, _COMPLETE_NAME)
    with open(marker_path, "wb") as handle:
        handle.write(b"ok\n")
        handle.flush()
        os.fsync(handle.fileno())
    _fsync_dir(marker_path)
    _fsync_dir(target)

    fault_hit("checkpoint.before_log_record")
    record_lsn = wal.append(CheckpointRecord(
        clock=clock, start_lsn=start_lsn, directory=directory))
    wal.flush()

    fault_hit("checkpoint.before_truncate")
    truncated = wal.truncate_segments_below(start_lsn)
    _prune_old_checkpoints(data_dir, keep=db.config.checkpoints_kept)

    duration = time.monotonic() - started
    wal.stat_last_checkpoint_lsn = record_lsn
    wal.stat_last_checkpoint_seconds = duration
    wal.metrics.histogram(
        "wal.checkpoint_seconds", unit="seconds",
        help="Wall time per completed checkpoint").observe(duration)
    fault_hit("checkpoint.after_complete")
    return CheckpointResult(
        directory=target, start_lsn=start_lsn, record_lsn=record_lsn,
        pages_written=pages_written, segments_truncated=truncated,
        duration_seconds=duration)


def _prune_old_checkpoints(data_dir: str, keep: int) -> None:
    entries = sorted(
        entry for entry in os.listdir(data_dir)
        if entry.startswith(_DIR_PREFIX)
        and entry[len(_DIR_PREFIX):].isdigit())
    for entry in entries[:-keep] if keep else entries:
        shutil.rmtree(os.path.join(data_dir, entry), ignore_errors=True)
