"""Engine supervision, admission control, and the health surface.

Three pieces turn "correct until something breaks silently" into
graceful degradation under overload and partial failure:

* :class:`~repro.health.supervisor.Supervisor` /
  :class:`~repro.health.supervisor.SupervisedService` — background
  threads (merge daemon, metrics sampler) run under a restart loop
  with crash capture and capped, jittered exponential backoff;
* :class:`~repro.health.backpressure.AdmissionController` — soft/hard
  merge-backlog watermarks on the write path (bounded throttle, then
  typed retryable :class:`~repro.errors.BackpressureError`);
* :func:`~repro.health.status.check_health` — folds component states
  (WAL poisoned, merge dead/restarting/stalled, backlog level,
  quarantined ranges, sampler alive) into one
  :class:`~repro.health.status.HealthReport` verdict, exported through
  ``Database.health()`` and the ``health.state`` gauge.

Everything here is opt-in and zero-cost when disabled: no watermarks →
tables carry ``admission = None`` and the write path pays one is-None
test; no supervisor → components run exactly as before.
"""

from __future__ import annotations

from .backpressure import (LEVEL_HARD, LEVEL_OK, LEVEL_SOFT,
                           AdmissionController)
from .status import (ComponentHealth, HealthReport, HealthState,
                     check_health)
from .supervisor import ServiceState, SupervisedService, Supervisor

__all__ = [
    "AdmissionController",
    "ComponentHealth",
    "HealthReport",
    "HealthState",
    "LEVEL_HARD",
    "LEVEL_OK",
    "LEVEL_SOFT",
    "ServiceState",
    "SupervisedService",
    "Supervisor",
    "check_health",
]
