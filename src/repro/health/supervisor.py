"""Supervised background threads: crash capture, backoff, restart.

The engine's background services (the merge daemon, the metrics
sampler) used to run on bare ``threading.Thread`` objects: one uncaught
exception killed the thread *silently* and the engine rotted — tails
grew without bound, scans degraded toward the row plane, and the first
symptom was a latency graph, not an error. :class:`Supervisor` wraps
each service body in a restart loop that

* captures the crash (traceback, count, timestamp ordinal),
* restarts the body after a capped, jittered exponential backoff,
* optionally gives up after ``max_restarts`` consecutive crashes
  (state ``FAILED``), and
* exposes everything (:class:`ServiceState`, last error, counters) to
  :func:`repro.health.status.check_health`.

A body that *returns* is treated as a clean shutdown — services exit
their run loop when their own stop flag is set, and ``stop()`` raises
that flag through the ``stop_hook`` the service registered at launch.

Crash/restart streaks reset once a body has run healthily for
``healthy_seconds``, so a service that crashes once a day never walks
up the backoff ladder.
"""

from __future__ import annotations

import random
import threading
import traceback
from time import perf_counter
from typing import Callable

from ..obs.registry import MetricsRegistry


class ServiceState:
    """Lifecycle states of one supervised service (string constants)."""

    NEW = "new"
    RUNNING = "running"
    BACKOFF = "backoff"
    STOPPED = "stopped"
    FAILED = "failed"


class SupervisedService:
    """One background body running under a restart loop.

    Attributes are written by the service thread and read by health
    probes without a lock: every field is a single reference/int store
    (atomic under the GIL), and health only needs a consistent-enough
    view, never a transactional one.
    """

    def __init__(self, name: str, body: Callable[[], None], *,
                 stop_hook: Callable[[], None] | None = None,
                 thread_name: str | None = None,
                 backoff_base: float = 0.01,
                 backoff_cap: float = 1.0,
                 max_restarts: int | None = None,
                 healthy_seconds: float = 5.0,
                 on_crash: Callable[["SupervisedService"], None]
                 | None = None,
                 on_restart: Callable[["SupervisedService"], None]
                 | None = None) -> None:
        self.name = name
        self._body = body
        self._stop_hook = stop_hook
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._max_restarts = max_restarts
        self._healthy_seconds = healthy_seconds
        self._on_crash = on_crash
        self._on_restart = on_restart
        self._rng = random.Random()
        self._stop_event = threading.Event()
        self.state = ServiceState.NEW
        #: Total crashes captured over the service lifetime.
        self.crash_count = 0
        #: Restarts performed (crashes that were followed by a rerun).
        self.restart_count = 0
        #: Consecutive crashes since the last healthy run (drives the
        #: backoff exponent and the max_restarts give-up).
        self.crash_streak = 0
        #: ``repr`` of the last exception that killed the body.
        self.last_error: str | None = None
        #: Full traceback text of the last crash (for operators).
        self.last_traceback: str | None = None
        self._thread = threading.Thread(
            target=self._run, daemon=True,
            name=thread_name or ("supervised-%s" % name))

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._thread.start()

    @property
    def alive(self) -> bool:
        """True while the supervising thread runs (body or backoff)."""
        return self._thread.is_alive()

    def stop(self, timeout: float = 5.0) -> bool:
        """Signal shutdown and join; True when the thread exited."""
        self._stop_event.set()
        hook = self._stop_hook
        if hook is not None:
            hook()
        self._thread.join(timeout=timeout)
        return not self._thread.is_alive()

    # -- the restart loop --------------------------------------------------

    def _run(self) -> None:
        while not self._stop_event.is_set():
            started = perf_counter()
            try:
                self.state = ServiceState.RUNNING
                self._body()
                break  # clean return: shutdown was requested
            except Exception as exc:
                self._record_crash(exc, started)
                if self._max_restarts is not None \
                        and self.crash_streak > self._max_restarts:
                    self.state = ServiceState.FAILED
                    return
                self.state = ServiceState.BACKOFF
                if self._stop_event.wait(self._backoff_delay()):
                    break
                self.restart_count += 1
                if self._on_restart is not None:
                    self._on_restart(self)
        if self.state != ServiceState.FAILED:
            self.state = ServiceState.STOPPED

    def _record_crash(self, exc: Exception, started: float) -> None:
        if perf_counter() - started >= self._healthy_seconds:
            self.crash_streak = 0
        self.crash_streak += 1
        self.crash_count += 1
        self.last_error = "%s: %s" % (type(exc).__name__, exc)
        self.last_traceback = "".join(traceback.format_exception(exc))
        if self._on_crash is not None:
            self._on_crash(self)

    def _backoff_delay(self) -> float:
        exponent = min(self.crash_streak - 1, 20)
        delay = min(self._backoff_cap, self._backoff_base * (1 << exponent))
        # Full jitter in [0.5, 1.5) de-synchronises restart storms.
        return delay * (0.5 + self._rng.random())


class Supervisor:
    """Launches and tracks the engine's supervised services by name."""

    def __init__(self, *, metrics: MetricsRegistry | None = None,
                 backoff_base: float = 0.01, backoff_cap: float = 1.0,
                 max_restarts: int | None = None,
                 healthy_seconds: float = 5.0) -> None:
        if metrics is None:
            metrics = MetricsRegistry()
        self.metrics = metrics
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._max_restarts = max_restarts
        self._healthy_seconds = healthy_seconds
        self._services: dict[str, SupervisedService] = {}
        self._lock = threading.Lock()
        self._stat_crashes = metrics.counter(
            "health.service_crashes",
            help="Uncaught exceptions captured from supervised services")
        self._stat_restarts = metrics.counter(
            "health.service_restarts",
            help="Supervised-service restarts after a crash")
        metrics.gauge(
            "health.services_failed",
            lambda: sum(1 for service in self.services()
                        if service.state == ServiceState.FAILED),
            help="Supervised services that exhausted their restart budget")

    def launch(self, name: str, body: Callable[[], None], *,
               stop_hook: Callable[[], None] | None = None,
               thread_name: str | None = None) -> SupervisedService:
        """Start *body* under supervision; replaces a stopped service
        of the same name (launching over a live one is an error)."""
        service = SupervisedService(
            name, body, stop_hook=stop_hook, thread_name=thread_name,
            backoff_base=self._backoff_base, backoff_cap=self._backoff_cap,
            max_restarts=self._max_restarts,
            healthy_seconds=self._healthy_seconds,
            on_crash=lambda _s: self._stat_crashes.add(),
            on_restart=lambda _s: self._stat_restarts.add())
        with self._lock:
            existing = self._services.get(name)
            if existing is not None and existing.alive:
                raise RuntimeError(
                    "supervised service %r is already running" % name)
            self._services[name] = service
        service.start()
        return service

    def service(self, name: str) -> SupervisedService | None:
        """The service called *name*, or None."""
        with self._lock:
            return self._services.get(name)

    def services(self) -> tuple[SupervisedService, ...]:
        with self._lock:
            return tuple(self._services.values())

    def stop_all(self, timeout: float = 5.0) -> None:
        """Stop every service (idempotent; join-timeouts are ignored
        here — the owning components count their own stop timeouts)."""
        for service in self.services():
            service.stop(timeout=timeout)
