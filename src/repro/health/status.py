"""The engine health surface: component states folded into one verdict.

:func:`check_health` probes every wired component of a
:class:`~repro.core.db.Database` — WAL poisoning, the supervised merge
daemon (dead / restarting / stalled), the admission watermark level,
quarantined merge ranges, the metrics sampler — and folds them into an
ordered verdict:

* ``OK`` — everything configured is running and keeping up;
* ``DEGRADED`` — the engine still serves correct answers but something
  needs attention (merge restarting or stalled, backlog above a
  watermark, ranges quarantined to the slow row plane, sampler dead);
* ``FAILED`` — a component is fail-stopped (poisoned WAL, a supervised
  service that exhausted its restart budget) and operator action is
  required.

The report is cheap (a handful of atomic reads plus one queue-length
probe) and lock-light, so it is safe from a metrics scrape callback:
``Database`` exports ``health.state`` as a registry gauge.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from .backpressure import LEVEL_HARD, LEVEL_SOFT
from .supervisor import ServiceState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.db import Database


class HealthState(enum.IntEnum):
    """Ordered severity: ``max()`` over components is the verdict."""

    OK = 0
    DEGRADED = 1
    FAILED = 2


@dataclass(frozen=True)
class ComponentHealth:
    """One component's verdict and (when not OK) the reason."""

    component: str
    state: HealthState
    reason: str = ""


@dataclass(frozen=True)
class HealthReport:
    """The folded engine verdict plus every component's detail."""

    state: HealthState
    components: tuple[ComponentHealth, ...]

    @property
    def reasons(self) -> tuple[str, ...]:
        """``component: reason`` for every non-OK component."""
        return tuple("%s: %s" % (item.component, item.reason)
                     for item in self.components
                     if item.state is not HealthState.OK)

    def component(self, name: str) -> ComponentHealth | None:
        for item in self.components:
            if item.component == name:
                return item
        return None

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly form (used by the metrics sampler stream)."""
        return {
            "state": self.state.name,
            "components": [
                {"component": item.component, "state": item.state.name,
                 "reason": item.reason}
                for item in self.components],
        }


def check_health(db: "Database") -> HealthReport:
    """Probe every wired component of *db* and fold the verdict."""
    components: list[ComponentHealth] = []

    wal = db._wal
    if wal is not None:
        reason = getattr(wal, "poison_reason", None)
        if reason:
            components.append(ComponentHealth(
                "wal", HealthState.FAILED, "poisoned: %s" % reason))
        else:
            components.append(ComponentHealth("wal", HealthState.OK))

    engine = db.merge_engine
    if db.config.background_merge:
        components.append(_merge_health(db, engine))

    quarantined = engine.quarantined_count
    if quarantined:
        reason = "%d merge range(s) quarantined to the row plane" \
            % quarantined
        last = engine.last_crash
        if last:
            reason += " (last crash: %s)" % last
        components.append(ComponentHealth(
            "merge.quarantine", HealthState.DEGRADED, reason))

    admission = db._admission
    if admission is not None:
        level = admission.level()
        if level >= LEVEL_HARD:
            components.append(ComponentHealth(
                "backpressure", HealthState.DEGRADED,
                "merge backlog %d at/above hard watermark %d: writes "
                "shedding" % (engine.backlog, admission.hard or 0)))
        elif level >= LEVEL_SOFT:
            components.append(ComponentHealth(
                "backpressure", HealthState.DEGRADED,
                "merge backlog %d at/above soft watermark %d: writes "
                "throttled" % (engine.backlog, admission.soft or 0)))
        else:
            components.append(ComponentHealth(
                "backpressure", HealthState.OK))

    sampler = db._sampler
    if sampler is not None:
        if sampler.running:
            components.append(ComponentHealth("obs.sampler",
                                              HealthState.OK))
        else:
            components.append(ComponentHealth(
                "obs.sampler", HealthState.DEGRADED,
                "metrics sampler thread is not running"))

    state = max((item.state for item in components),
                default=HealthState.OK)
    return HealthReport(state=HealthState(state),
                        components=tuple(components))


def _merge_health(db: "Database", engine: Any) -> ComponentHealth:
    service = db.supervisor.service("merge")
    crash_note = ""
    if service is not None and service.last_error:
        crash_note = " (last crash: %s)" % service.last_error
    if service is None:
        if engine.alive:
            running = True
        else:
            return ComponentHealth(
                "merge", HealthState.DEGRADED,
                "background merge configured but not running")
    elif service.state == ServiceState.FAILED:
        return ComponentHealth(
            "merge", HealthState.FAILED,
            "merge thread exhausted its restart budget%s" % crash_note)
    elif service.state == ServiceState.BACKOFF:
        return ComponentHealth(
            "merge", HealthState.DEGRADED,
            "merge thread restarting after a crash%s" % crash_note)
    elif service.state == ServiceState.STOPPED:
        return ComponentHealth(
            "merge", HealthState.DEGRADED,
            "merge thread stopped while background merge is "
            "configured%s" % crash_note)
    else:
        running = service.alive
        if not running:
            return ComponentHealth(
                "merge", HealthState.DEGRADED,
                "merge thread is dead%s" % crash_note)
    stalled = engine.seconds_stalled()
    if running and stalled > db.config.merge_stall_seconds:
        return ComponentHealth(
            "merge", HealthState.DEGRADED,
            "merge stalled: backlog %d with no progress for %.1fs"
            % (engine.backlog, stalled))
    if crash_note:
        # Running again after earlier crashes: healthy, but carry the
        # context so a scrape right after recovery still explains the
        # crash counters.
        return ComponentHealth(
            "merge", HealthState.OK,
            "recovered after %d crash(es)%s"
            % (service.crash_count if service else 0, crash_note))
    return ComponentHealth("merge", HealthState.OK)
