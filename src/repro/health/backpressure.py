"""Admission control: merge-backlog watermarks on the write path.

L-Store's differential design assumes the merge daemon keeps up: every
un-merged tail record makes scans a little slower, and a merge thread
that falls behind (or dies) lets the backlog grow without bound. The
:class:`AdmissionController` turns that open loop into a closed one
with two watermarks over ``merge.backlog``:

* **soft** — writers pay a bounded throttle wait (and kick the merge
  daemon awake) so the consumer can catch up: graceful degradation,
  throughput bends instead of breaking;
* **hard** — writes fail fast with a typed, retryable
  :class:`~repro.errors.BackpressureError` instead of queueing work the
  engine provably cannot absorb: load shedding.

Disabled watermarks are **zero-cost**: tables hold ``admission = None``
and the write path pays one attribute load + is-None test — the same
discipline as ``obs_metrics=False`` null instruments, guarded by
``benchmarks/test_backpressure_overhead.py``.

The backlog probe must be safe from any writer thread with no lock
held; :attr:`~repro.core.merge.MergeEngine.backlog` reads
``len(deque)`` (atomic under the GIL), so admission never touches the
merge queue lock.
"""

from __future__ import annotations

import time
from typing import Callable

from ..errors import BackpressureError
from ..obs.registry import MetricsRegistry

#: Backlog levels reported by :meth:`AdmissionController.level`.
LEVEL_OK = 0
LEVEL_SOFT = 1
LEVEL_HARD = 2


class AdmissionController:
    """Watermark-based write admission over a backlog probe."""

    def __init__(self, backlog_probe: Callable[[], int], *,
                 soft: int | None = None, hard: int | None = None,
                 throttle_wait: float = 0.001, max_wait: float = 0.05,
                 drain_kick: Callable[[], None] | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        if soft is None and hard is None:
            raise ValueError("admission control needs at least one "
                             "watermark (soft and/or hard)")
        self._backlog_probe = backlog_probe
        #: Unset soft → throttle exactly at the hard watermark (the
        #: reject check fires first); unset hard → never reject.
        self._soft = soft if soft is not None else hard
        self._hard = hard
        self._throttle_wait = throttle_wait
        self._max_wait = max_wait
        self._drain_kick = drain_kick
        if metrics is None:
            metrics = MetricsRegistry()
        self.metrics = metrics
        self._stat_throttled = metrics.counter(
            "health.writes_throttled",
            help="Writes delayed by the soft backlog watermark")
        self._stat_rejected = metrics.counter(
            "health.writes_rejected",
            help="Writes refused past the hard backlog watermark")
        self._throttle_seconds = metrics.histogram(
            "health.throttle_seconds", unit="seconds",
            help="Per-write admission throttle wait")
        metrics.gauge("health.backlog_level", self.level,
                      help="Admission level: 0 ok, 1 soft, 2 hard")

    # -- probes ------------------------------------------------------------

    @property
    def soft(self) -> int | None:
        return self._soft

    @property
    def hard(self) -> int | None:
        return self._hard

    def level(self) -> int:
        """Current watermark level (0/1/2) of the backlog."""
        backlog = self._backlog_probe()
        if self._hard is not None and backlog >= self._hard:
            return LEVEL_HARD
        if self._soft is not None and backlog >= self._soft:
            return LEVEL_SOFT
        return LEVEL_OK

    # -- the write-path gate ----------------------------------------------

    def admit(self) -> None:
        """Gate one write: return fast, throttle, or raise.

        Callers hold **no** latch or lock — the table checks admission
        before taking its insert lock / indirection latch, so a
        throttled writer never blocks other writers or the merge
        daemon.
        """
        backlog = self._backlog_probe()
        soft = self._soft
        if soft is None or backlog < soft:
            return
        hard = self._hard
        if hard is not None and backlog >= hard:
            self._reject(backlog, hard)
        # Soft zone: bounded wait for the merge daemon to drain.
        self._stat_throttled.add()
        kick = self._drain_kick
        if kick is not None:
            kick()
        waited = 0.0
        tick = self._throttle_wait
        while waited < self._max_wait:
            if tick <= 0.0:
                break
            time.sleep(tick)
            waited += tick
            backlog = self._backlog_probe()
            if hard is not None and backlog >= hard:
                if self._throttle_seconds.enabled:
                    self._throttle_seconds.observe(waited)
                self._reject(backlog, hard)
            if backlog < soft:
                break
        if self._throttle_seconds.enabled:
            self._throttle_seconds.observe(waited)
        # Past the bounded wait the write proceeds even above soft:
        # the throttle shapes load, only the hard watermark sheds it.

    def _reject(self, backlog: int, hard: int) -> None:
        self._stat_rejected.add()
        raise BackpressureError(
            "write rejected: merge backlog %d >= hard watermark %d"
            % (backlog, hard), backlog=backlog, watermark=hard)
