"""L-Store: a lineage-based real-time OLTP + OLAP storage engine.

A from-scratch Python reproduction of *L-Store: A Real-time OLTP and
OLAP System* (Sadoghi, Bhattacherjee, Bhattacharjee, Canim — EDBT 2018),
including the two baseline engines the paper evaluates against and the
micro-benchmark harness of its Section 6.

Quickstart::

    from repro import Database, EngineConfig

    db = Database(EngineConfig(background_merge=True))
    grades = db.create_table("grades", num_columns=5, key_index=0)
    query = db.query("grades")
    query.insert(42, 10, 20, 30, 40)
    query.update(42, None, 11, None, None, None)
    print(query.select(42, 0, [1, 1, 1, 1, 1]))
"""

from .core.config import EngineConfig, PAPER_CONFIG, TEST_CONFIG
from .core.db import Database
from .core.encoding import SchemaEncoding
from .core.epoch import EpochManager
from .core.merge import MergeEngine, merge_insert_range, merge_update_range
from .core.page import Page, RowPage
from .core.query import Query, Record
from .core.schema import TableSchema
from .core.table import DELETED, Table
from .core.types import NULL, IsolationLevel, Layout
from .errors import (DuplicateKeyError, KeyNotFoundError, LStoreError,
                     RecordDeletedError, TransactionAborted,
                     ValidationFailure, WriteWriteConflict)
from .exec.executor import ScanExecutor, execute_scan
from .obs import (MetricsRegistry, disable_tracing, enable_tracing,
                  render_text, span)
from .txn.manager import TransactionManager
from .txn.transaction import Transaction
from .txn.worker import TransactionWorker

__version__ = "1.0.0"

__all__ = [
    "Database",
    "DELETED",
    "DuplicateKeyError",
    "EngineConfig",
    "EpochManager",
    "IsolationLevel",
    "KeyNotFoundError",
    "Layout",
    "LStoreError",
    "MergeEngine",
    "MetricsRegistry",
    "NULL",
    "PAPER_CONFIG",
    "Page",
    "Query",
    "Record",
    "RecordDeletedError",
    "RowPage",
    "SchemaEncoding",
    "Table",
    "TableSchema",
    "TEST_CONFIG",
    "ScanExecutor",
    "Transaction",
    "execute_scan",
    "TransactionAborted",
    "TransactionManager",
    "TransactionWorker",
    "ValidationFailure",
    "WriteWriteConflict",
    "disable_tracing",
    "enable_tracing",
    "merge_insert_range",
    "merge_update_range",
    "render_text",
    "span",
]
