"""Fault injection: named failpoints and faulty-file wrappers.

The durability layer is only trustworthy if it has been made to fail on
purpose. This package provides the two tools the torture tests use:

* a process-wide **failpoint registry** (:data:`FAULTS`) of named
  injection points compiled into the engine's durability paths, and
* :class:`~repro.fault.files.FaultyFile`, a file wrapper that simulates
  torn writes, short writes, fsync failures and ENOSPC underneath
  :class:`~repro.wal.log.LogManager` and
  :class:`~repro.storage.disk.PageFile`.

Failpoints are **zero-cost when disabled**: every injection site calls
:func:`hit`, which returns after a single empty-dict check unless a
specification has been installed. Activation happens through either

* the ``REPRO_FAILPOINTS`` environment variable (read at import time),
  or
* :attr:`~repro.core.config.EngineConfig.failpoints`, applied by
  :class:`~repro.core.db.Database` at construction.

The specification grammar is a comma-separated list of
``name=action[:arg]`` items::

    wal.before_fsync=raise          # raise OSError once
    wal.before_fsync=raise:3        # raise on the first three hits
    wal.before_write=enospc:1       # raise OSError(ENOSPC) once
    wal.torn_write=torn:1           # FaultyFile writes half, then raises
    txn.after_commit_record=crash:2 # os._exit(137) on the second hit
    checkpoint.before_marker=delay:0.05  # sleep 50 ms on every hit

Registered failpoint names
--------------------------

WAL group commit (:mod:`repro.wal.log`):

* ``wal.before_write`` — leader drain, before the frame batch is written
* ``wal.after_write`` — frames written (page cache), before the fsync
* ``wal.before_fsync`` — immediately before ``os.fsync`` of the segment
* ``wal.after_sync`` — frames durable, before the synced LSN publishes
* ``wal.before_rotate`` / ``wal.after_rotate`` — around segment rotation
* ``wal.torn_write`` — (FaultyFile) tear the next segment write in half

Commit pipeline (:mod:`repro.core.db`):

* ``txn.before_commit_record`` / ``txn.after_commit_record`` — around
  appending the commit record (after = durable but possibly unacked)

Page files (:mod:`repro.storage.disk`):

* ``pagefile.before_write`` — before appending a page image
* ``pagefile.before_sync`` — before the data-file fsync
* ``pagefile.before_index_replace`` — between sidecar tmp-write and rename
* ``pagefile.torn_write`` — (FaultyFile) tear the next image write

Merge install (:mod:`repro.core.merge`):

* ``merge.before_install`` / ``merge.after_install`` — around the
  foreground page-directory pointer swap

Checkpoint protocol (:mod:`repro.wal.checkpoint`):

* ``checkpoint.before_pages`` / ``checkpoint.after_pages`` — around the
  page-image flush
* ``checkpoint.before_manifest`` — before the manifest write
* ``checkpoint.before_marker`` — before the COMPLETE marker write
* ``checkpoint.before_log_record`` — before the CheckpointRecord append
* ``checkpoint.before_truncate`` — before dead segments are truncated
* ``checkpoint.after_complete`` — checkpoint fully installed

:data:`CRASH_POINTS` lists the names the crash-matrix torture test
iterates; every registered injection point above that a kill can make
interesting is included.
"""

from __future__ import annotations

from .files import FaultyFile, wrap_file
from .registry import FAULTS, FaultError, FaultRegistry, hit
from .schedule import ChaosEvent, ChaosSchedule

#: Injection points the crash-matrix torture test kills the workload at
#: (tests/fault/test_crash_matrix.py). Order is append → commit →
#: rotate → merge → checkpoint, mirroring the write pipeline.
CRASH_POINTS: tuple[str, ...] = (
    "wal.before_write",
    "wal.after_write",
    "wal.before_fsync",
    "wal.after_sync",
    "txn.before_commit_record",
    "txn.after_commit_record",
    "wal.before_rotate",
    "wal.after_rotate",
    "merge.before_install",
    "merge.after_install",
    "checkpoint.before_pages",
    "checkpoint.after_pages",
    "checkpoint.before_manifest",
    "checkpoint.before_marker",
    "checkpoint.before_log_record",
    "checkpoint.before_truncate",
    "checkpoint.after_complete",
)

__all__ = [
    "CRASH_POINTS",
    "ChaosEvent",
    "ChaosSchedule",
    "FAULTS",
    "FaultError",
    "FaultRegistry",
    "FaultyFile",
    "hit",
    "wrap_file",
]
