"""Failpoint registry: named injection points with counted actions.

See the package docstring for the specification grammar and the list of
registered names. The registry is process-wide on purpose — fault specs
arrive from the environment of a torture-test subprocess, and the
injection sites are module-level code paths, not per-engine objects.
"""

from __future__ import annotations

import errno
import os
import threading
import time


class FaultError(OSError):
    """The injected IO error (an :class:`OSError`, so the retry and
    fail-stop paths treat it exactly like a real disk failure)."""


#: Exit status used by the ``crash`` action: mirrors SIGKILL's shell
#: status so the torture harness can treat kill -9 and crash-failpoints
#: uniformly.
CRASH_EXIT_STATUS = 137


class _Failpoint:
    """One armed injection point."""

    __slots__ = ("name", "action", "remaining", "delay_seconds", "hits")

    def __init__(self, name: str, action: str, remaining: int,
                 delay_seconds: float) -> None:
        self.name = name
        self.action = action
        self.remaining = remaining
        self.delay_seconds = delay_seconds
        self.hits = 0


class FaultRegistry:
    """Registry of armed failpoints; :meth:`hit` fires them."""

    def __init__(self) -> None:
        self._points: dict[str, _Failpoint] = {}
        self._lock = threading.Lock()

    # -- configuration -----------------------------------------------------

    def configure(self, spec: str | None) -> None:
        """Arm the failpoints described by *spec* (see grammar above).

        Arming is additive; ``clear()`` disarms everything. An empty or
        None spec is a no-op so callers can pass config values through
        unconditionally.
        """
        if not spec:
            return
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            try:
                name, directive = item.split("=", 1)
            except ValueError:
                raise ValueError(
                    "failpoint %r is not name=action[:arg]" % item
                ) from None
            parts = directive.split(":")
            action = parts[0].strip()
            delay_seconds = 0.0
            remaining = 1
            if action == "delay":
                if len(parts) < 2:
                    raise ValueError(
                        "delay failpoint %r needs a seconds arg" % item)
                delay_seconds = float(parts[1])
                remaining = int(parts[2]) if len(parts) > 2 else -1
            else:
                if action not in ("raise", "enospc", "torn", "crash"):
                    raise ValueError(
                        "unknown failpoint action %r in %r" % (action, item))
                if len(parts) > 1:
                    remaining = int(parts[1])
            with self._lock:
                self._points[name.strip()] = _Failpoint(
                    name.strip(), action, remaining, delay_seconds)

    def clear(self) -> None:
        """Disarm every failpoint."""
        with self._lock:
            self._points.clear()

    @property
    def active(self) -> bool:
        """True when at least one failpoint is armed."""
        return bool(self._points)

    def armed(self, name: str) -> bool:
        """True when *name* is currently armed."""
        return name in self._points

    # -- firing ------------------------------------------------------------

    def hit(self, name: str) -> None:
        """Fire the failpoint *name* if armed; no-op (one dict check)
        otherwise.

        ``raise``/``enospc`` raise :class:`FaultError`; ``crash`` exits
        the process without flushing anything (``os._exit``, the
        kill -9 analogue); ``delay`` sleeps; ``torn`` is consumed by
        :class:`~repro.fault.files.FaultyFile` instead (hitting it here
        directly behaves like ``raise``).
        """
        if not self._points:
            return
        self._fire(name)

    def consume(self, name: str) -> str | None:
        """Return the armed action for *name* and count the hit, or None.

        Used by :class:`~repro.fault.files.FaultyFile`, which needs the
        action *kind* (e.g. ``torn``) rather than an exception, to
        decide how to corrupt the write it is wrapping.
        """
        if not self._points:
            return None
        with self._lock:
            point = self._points.get(name)
            if point is None:
                return None
            point.hits += 1
            if point.remaining == 0:
                return None
            if point.action == "crash":
                # crash:N fires on the Nth hit, not the first N hits.
                if point.hits < point.remaining:
                    return None
            elif point.remaining > 0:
                point.remaining -= 1
            action = point.action
            delay = point.delay_seconds
        if action == "delay":
            time.sleep(delay)
            return None
        if action == "crash":
            os._exit(CRASH_EXIT_STATUS)
        return action

    def _fire(self, name: str) -> None:
        action = self.consume(name)
        if action is None:
            return
        if action == "enospc":
            raise FaultError(errno.ENOSPC,
                             "injected ENOSPC at failpoint %r" % name)
        # 'raise' and a directly-hit 'torn' both surface as an IO error.
        raise FaultError(errno.EIO,
                         "injected IO error at failpoint %r" % name)


#: The process-wide registry every injection site consults.
FAULTS = FaultRegistry()


def hit(name: str) -> None:
    """Module-level shorthand for ``FAULTS.hit(name)`` (hot-path form)."""
    if not FAULTS._points:
        return
    FAULTS._fire(name)


# Environment activation: torture-test subprocesses arm failpoints
# before the engine exists, so the spec rides in on the environment.
FAULTS.configure(os.environ.get("REPRO_FAILPOINTS"))
