"""Seeded randomized failpoint schedules: the chaos harness.

The crash matrix kills the engine at single registered points; a
:class:`ChaosSchedule` instead arms *many* failpoints over a running
mixed workload — probabilistic multi-point activation, deterministic
per seed. The schedule is **precomputed** at construction from one
``random.Random(seed)``: the same seed always produces the same event
list (times, points, actions), so a failing chaos run replays exactly
by printing its seed.

Usage::

    schedule = ChaosSchedule.generate(
        seed=1234,
        palette=[("merge.before_install", ("raise",)),
                 ("wal.before_fsync", ("raise", "enospc"))],
        duration=0.5)
    schedule.start()          # driver thread arms events at their times
    ... run the workload ...
    schedule.stop()
    print(schedule.describe())  # seed + every event, for replay

Each event arms a **one-shot** spec (``name=action:1``) so a fault
fires at most once per event — the workload keeps running between
faults, which is the point: the audit checks conservation and
acked-writes-survive *while* faults fire, not after a clean stop.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Sequence

from .registry import FAULTS, FaultRegistry

#: A palette entry: failpoint name plus the candidate actions one event
#: may arm there (e.g. ``("raise",)`` or ``("raise", "enospc")``).
PaletteEntry = tuple[str, Sequence[str]]


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled arming: at *at* seconds, arm *spec*."""

    at: float
    spec: str


class ChaosSchedule:
    """A deterministic, seeded list of failpoint armings over time."""

    def __init__(self, events: tuple[ChaosEvent, ...], seed: int) -> None:
        self.events = events
        self.seed = seed
        #: Events actually armed by :meth:`run` (a stopped run arms a
        #: prefix).
        self.fired: list[ChaosEvent] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @classmethod
    def generate(cls, seed: int, palette: Sequence[PaletteEntry], *,
                 duration: float, mean_gap: float = 0.02) -> "ChaosSchedule":
        """Precompute a schedule: uniform gaps around *mean_gap*,
        events drawn uniformly from *palette* until *duration*."""
        if not palette:
            raise ValueError("chaos palette must not be empty")
        if duration <= 0:
            raise ValueError("chaos duration must be positive")
        if mean_gap <= 0:
            raise ValueError("chaos mean_gap must be positive")
        rng = random.Random(seed)
        events: list[ChaosEvent] = []
        at = 0.0
        while True:
            at += rng.uniform(0.25 * mean_gap, 1.75 * mean_gap)
            if at >= duration:
                break
            name, actions = palette[rng.randrange(len(palette))]
            action = actions[rng.randrange(len(actions))]
            events.append(ChaosEvent(at, "%s=%s:1" % (name, action)))
        return cls(tuple(events), seed)

    # -- driving -----------------------------------------------------------

    def run(self, registry: FaultRegistry = FAULTS) -> None:
        """Arm every event at its offset (blocking; stop() cuts short)."""
        started = time.monotonic()
        for event in self.events:
            delay = started + event.at - time.monotonic()
            if delay > 0 and self._stop.wait(delay):
                return
            if self._stop.is_set():
                return
            registry.configure(event.spec)
            self.fired.append(event)

    def start(self, registry: FaultRegistry = FAULTS) -> None:
        """Drive the schedule from a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("chaos schedule already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self.run, args=(registry,), daemon=True,
            name="repro-chaos")
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the driver thread (armed one-shots stay armed)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None

    # -- replay aids -------------------------------------------------------

    def describe(self) -> str:
        """Human-readable replay header: the seed plus every event."""
        lines = ["chaos schedule seed=%d (%d events)"
                 % (self.seed, len(self.events))]
        lines.extend("  t=%.4fs %s" % (event.at, event.spec)
                     for event in self.events)
        return "\n".join(lines)
