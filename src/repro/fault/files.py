"""FaultyFile: a file wrapper that breaks on command.

Wraps a binary file object and consults the failpoint registry on every
write, simulating the disk failures the durability layer must survive:

* ``<tag>.torn_write`` armed with ``torn`` — write only the first half
  of the buffer, then raise (a crash mid-write: the bytes are torn);
* ``<tag>.torn_write`` armed with ``enospc``/``raise`` — short-circuit
  the write entirely with the corresponding :class:`FaultError`.

``<tag>`` is the wrapper's namespace (``wal`` or ``pagefile``). The
wrapper is installed only when the registry is active at open time
(:func:`wrap_file`), so the common no-faults path pays nothing.
"""

from __future__ import annotations

import errno
from typing import Any

from .registry import FAULTS, FaultError


class FaultyFile:
    """Binary-file proxy with registry-driven write corruption."""

    def __init__(self, file: Any, tag: str) -> None:
        self._file = file
        self._tag = tag

    def write(self, data: bytes) -> int:
        action = FAULTS.consume(self._tag + ".torn_write")
        if action == "torn":
            self._file.write(data[: len(data) // 2])
            self._file.flush()
            raise FaultError(
                errno.EIO, "injected torn write (%d of %d bytes)"
                % (len(data) // 2, len(data)))
        if action == "enospc":
            raise FaultError(errno.ENOSPC, "injected ENOSPC on write")
        if action is not None:
            raise FaultError(errno.EIO, "injected write error")
        return self._file.write(data)

    # Pass-through surface used by LogManager / PageFile.

    def flush(self) -> None:
        self._file.flush()

    def fileno(self) -> int:
        return self._file.fileno()

    def seek(self, offset: int, whence: int = 0) -> int:
        return self._file.seek(offset, whence)

    def tell(self) -> int:
        return self._file.tell()

    def truncate(self, size: int | None = None) -> int:
        return self._file.truncate(size)

    def read(self, size: int = -1) -> bytes:
        return self._file.read(size)

    def close(self) -> None:
        self._file.close()

    @property
    def closed(self) -> bool:
        return self._file.closed

    @property
    def name(self) -> str:
        return getattr(self._file, "name", "<faulty>")


def wrap_file(file: Any, tag: str) -> Any:
    """Wrap *file* in a :class:`FaultyFile` when faults are armed.

    Returns *file* untouched when the registry is empty — the wrapper
    (one extra call frame per IO) exists only in fault-injection runs.
    """
    if FAULTS.active:
        return FaultyFile(file, tag)
    return file
