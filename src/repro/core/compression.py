"""Compression: merged-page codecs and historic tail compression.

Two independent mechanisms, both from the paper:

* **Merged-page codecs** — "Any compression algorithm (e.g., dictionary
  encoding) can be applied on the consolidated pages (on column basis)"
  (Algorithm 1, step 3). :func:`maybe_compress_page` picks dictionary or
  run-length encoding when a column page compresses well, producing
  read-only pages with the same interface as :class:`~repro.core.page.Page`
  (including the NumPy scan view, so analytics stay fast).

* **Historic tail compression** (Section 4.3) — committed, fully merged
  tail pages that fall outside the oldest query snapshot are rewritten:
  records are *re-ordered by base RID*, the different versions of one
  record are *inlined contiguously* per column, per-version deltas are
  compressed, and per-record back pointers disappear (one back pointer
  per record chain survives to keep lineage walks working across the
  compression boundary). Tombstones from aborted transactions are
  finally reclaimed here (Section 5.1.3: "the space is not reclaimed
  until the compression phase").

Both mechanisms read candidate pages through the generic slot protocol
(``iter_values``/``peek_slot``), so they work unchanged over object-list
pages and byte-buffer pages (:class:`~repro.core.page.BytesPage`). A
page that *doesn't* compress keeps its byte-buffer layout; a page that
does trades the fixed-width buffer for the codec's representation (the
merge's buffer-slice copy path then treats it as a generic page).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from ..errors import StorageError
from .encoding import SchemaEncoding
from .page import Page
from .schema import (BASE_RID_COLUMN, INDIRECTION_COLUMN,
                     SCHEMA_ENCODING_COLUMN, START_TIME_COLUMN, TableSchema)
from .types import NULL, PageKind, is_null

# ---------------------------------------------------------------------------
# Column codecs
# ---------------------------------------------------------------------------


def delta_encode(values: list[int]) -> tuple[int, list[int]]:
    """Encode ints as (first, deltas). Inverse of :func:`delta_decode`."""
    if not values:
        return 0, []
    deltas = [values[i] - values[i - 1] for i in range(1, len(values))]
    return values[0], deltas


def delta_decode(first: int, deltas: list[int]) -> list[int]:
    """Decode the output of :func:`delta_encode`."""
    values = [first]
    for delta in deltas:
        values.append(values[-1] + delta)
    return values


class DictionaryPage:
    """A frozen, dictionary-encoded column page.

    Stores one small ``values`` list plus a NumPy code array; exposes the
    same read interface as :class:`~repro.core.page.Page` so the read
    paths need not care which representation a chain holds.
    """

    __slots__ = ("page_id", "kind", "capacity", "column", "_codes",
                 "_dictionary", "tps_rid", "merge_count", "deallocated",
                 "_numpy_cache", "_masked_cache", "_lock")

    def __init__(self, page_id: int, kind: PageKind, capacity: int,
                 column: int | None, codes: np.ndarray,
                 dictionary: list[Any]) -> None:
        self.page_id = page_id
        self.kind = kind
        self.capacity = capacity
        self.column = column
        self._codes = codes
        self._dictionary = dictionary
        self.tps_rid = 0
        self.merge_count = 0
        self.deallocated = False
        self._numpy_cache: np.ndarray | None = None
        self._masked_cache: Any = None
        self._lock = threading.Lock()

    @classmethod
    def from_values(cls, page_id: int, kind: PageKind, capacity: int,
                    column: int | None,
                    values: list[Any]) -> "DictionaryPage":
        """Build a dictionary page from raw values."""
        dictionary: list[Any] = []
        positions: dict[Any, int] = {}
        codes = np.empty(len(values), dtype=np.int32)
        for i, value in enumerate(values):
            code = positions.get(value)
            if code is None:
                code = len(dictionary)
                positions[value] = code
                dictionary.append(value)
            codes[i] = code
        return cls(page_id, kind, capacity, column, codes, dictionary)

    # -- Page interface ------------------------------------------------------

    @property
    def frozen(self) -> bool:
        """Dictionary pages are always read-only."""
        return True

    @property
    def num_records(self) -> int:
        """Number of encoded values."""
        return len(self._codes)

    @property
    def has_capacity(self) -> bool:
        """Read-only pages never accept appends."""
        return False

    def read_slot(self, slot: int) -> Any:
        """Decode the value at *slot*."""
        if not 0 <= slot < len(self._codes):
            raise StorageError("slot %d out of dictionary page" % slot)
        return self._dictionary[self._codes[slot]]

    def is_written(self, slot: int) -> bool:
        """True for every encoded slot."""
        return 0 <= slot < len(self._codes)

    def peek_slot(self, slot: int) -> Any:
        """Non-raising read (every encoded slot is written)."""
        return self._dictionary[self._codes[slot]]

    def iter_values(self) -> Iterator[Any]:
        """Yield decoded values in slot order."""
        for code in self._codes:
            yield self._dictionary[code]

    def values_list(self) -> list[Any]:
        """All decoded values as one list (merge copy phase)."""
        dictionary = self._dictionary
        return [dictionary[code] for code in self._codes]

    def as_numpy(self) -> np.ndarray | None:
        """Decoded int64 view (None when values are not all ints)."""
        if self._numpy_cache is not None:
            return self._numpy_cache
        for value in self._dictionary:
            if type(value) is not int:
                return None
        with self._lock:
            if self._numpy_cache is None:
                lookup = np.asarray(self._dictionary, dtype=np.int64)
                self._numpy_cache = lookup[self._codes]
        return self._numpy_cache

    def as_numpy_masked(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Decoded ``(values, valid_mask)`` view tolerating ∅ entries.

        ∅ dictionary entries decode to 0 with a False mask bit, so a
        merged page that dictionary-compressed a few deleted records
        still serves the vectorised scan plane. None (cached) when the
        dictionary holds a value that is neither int nor ∅.
        """
        cached = self._masked_cache
        if cached is not None:
            return None if cached is False else cached[:2]
        lookup_values = []
        lookup_valid = []
        for value in self._dictionary:
            if type(value) is int:
                lookup_values.append(value)
                lookup_valid.append(True)
            elif is_null(value):
                lookup_values.append(0)
                lookup_valid.append(False)
            else:
                self._masked_cache = False
                return None
        with self._lock:
            if self._masked_cache is None:
                values = np.asarray(lookup_values,
                                    dtype=np.int64)[self._codes]
                valid = np.asarray(lookup_valid, dtype=bool)[self._codes]
                self._masked_cache = (
                    values, valid, int(values.sum()),
                    tuple(np.flatnonzero(~valid).tolist()))
            cached = self._masked_cache
        return None if cached is False else cached[:2]

    def masked_total(self) -> tuple[int, tuple[int, ...]] | None:
        """Cached ``(sum of non-∅ slots, ∅ slot positions)``.

        Same contract as :meth:`~repro.core.page.Page.masked_total`:
        the reduction is amortised at view-build time so unfiltered-SUM
        scans make no NumPy calls of their own.
        """
        if self.as_numpy_masked() is None:
            return None
        cached = self._masked_cache
        return cached[2], cached[3]

    def fast_sum(self) -> int | None:
        """SUM without decoding: Σ count(code) × value."""
        for value in self._dictionary:
            if type(value) is not int:
                return None
        counts = np.bincount(self._codes, minlength=len(self._dictionary))
        lookup = np.asarray(self._dictionary, dtype=np.int64)
        return int(np.dot(counts, lookup))

    def set_lineage(self, tps_rid: int, merge_count: int) -> None:
        """Stamp in-page lineage (same contract as Page)."""
        self.tps_rid = tps_rid
        self.merge_count = merge_count

    @property
    def distinct_values(self) -> int:
        """Dictionary size (compression observability)."""
        return len(self._dictionary)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return ("DictionaryPage(id=%d, col=%r, %d slots, %d distinct)"
                % (self.page_id, self.column, len(self._codes),
                   len(self._dictionary)))


def maybe_compress_page(page: Page) -> Page | DictionaryPage:
    """Dictionary-encode *page* when it compresses well, else keep it.

    The heuristic mirrors real column stores: encode when the number of
    distinct values is at most a quarter of the row count (so codes plus
    dictionary are clearly smaller than raw values).
    """
    values = list(page.iter_values())
    if len(values) < 8:
        return page
    try:
        distinct = len(set(values))
    except TypeError:  # unhashable user values: keep raw
        return page
    if distinct * 4 > len(values):
        return page
    compressed = DictionaryPage.from_values(
        page.page_id, page.kind, page.capacity, page.column, values)
    compressed.set_lineage(page.tps_rid, page.merge_count)
    return compressed


# ---------------------------------------------------------------------------
# Historic tail compression (Section 4.3)
# ---------------------------------------------------------------------------


@dataclass
class _VersionGroup:
    """All versions of one base record inside a compressed part.

    Versions are inlined oldest→newest (the paper's "tightly packed and
    ordered temporally"); ``first_backpointer`` is the single surviving
    back pointer of the whole group (to the base record or to an older
    tail record outside this part).
    """

    base_rid: int
    offsets: list[int]
    encodings: list[int]
    start_first: int
    start_deltas: list[int]
    first_backpointer: int
    #: data column -> (member indices with a value, encoded values)
    columns: dict[int, tuple[list[int], tuple[int, list[int]] | list[Any]]]

    def start_times(self) -> list[int]:
        """Decode the inlined, delta-compressed start times."""
        return delta_decode(self.start_first, self.start_deltas)

    def column_value(self, member: int, data_column: int) -> Any:
        """Value of *data_column* at *member*, or ∅ if unmaterialised."""
        entry = self.columns.get(data_column)
        if entry is None:
            return NULL
        members, encoded = entry
        try:
            position = members.index(member)
        except ValueError:
            return NULL
        if isinstance(encoded, tuple):
            first, deltas = encoded
            return delta_decode(first, deltas)[position]
        return encoded[position]


class CompressedTailPart:
    """A re-organised, read-only image of a consecutive tail region.

    Replaces the raw tail pages for offsets ``[first_offset, end_offset)``
    of one tail segment after they are fully merged and outside every
    active snapshot. Serves the same ``record_cell`` lookups the raw
    pages did, so lineage walks cross the compression boundary
    transparently.
    """

    def __init__(self, first_offset: int, end_offset: int,
                 schema: TableSchema) -> None:
        self.first_offset = first_offset
        self.end_offset = end_offset
        self._schema = schema
        self._groups: list[_VersionGroup] = []
        #: offset -> (group index, member index)
        self._locator: dict[int, tuple[int, int]] = {}
        #: offsets of reclaimed tombstones -> original backpointer
        self._tombstone_backpointers: dict[int, int] = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def build(cls, segment: "Any", first_offset: int, end_offset: int,
              schema: TableSchema,
              resolve_time) -> "CompressedTailPart":
        """Re-organise ``segment[first_offset:end_offset]``.

        *resolve_time* maps a Start Time cell to its commit timestamp
        (markers are resolved — compressed parts only store plain
        times, enabling transaction-manager garbage collection).
        """
        part = cls(first_offset, end_offset, schema)
        by_base: dict[int, list[int]] = {}
        for offset in range(first_offset, end_offset):
            if not segment.record_written(offset):
                raise StorageError(
                    "cannot compress unwritten tail offset %d" % offset)
            if segment.is_tombstone(offset):
                part._tombstone_backpointers[offset] = segment.record_cell(
                    offset, INDIRECTION_COLUMN)
                continue
            base_rid = segment.record_cell(offset, BASE_RID_COLUMN)
            by_base.setdefault(base_rid, []).append(offset)
        # Paper: "tail records are ordered based on the RIDs of their
        # corresponding base records".
        for base_rid in sorted(by_base):
            offsets = by_base[base_rid]  # ascending == oldest first
            encodings = [segment.record_cell(o, SCHEMA_ENCODING_COLUMN)
                         for o in offsets]
            times = [resolve_time(segment.record_cell(o, START_TIME_COLUMN))
                     for o in offsets]
            first, deltas = delta_encode(times)
            columns: dict[int, Any] = {}
            for data_column in range(schema.num_columns):
                physical = schema.physical_index(data_column)
                members: list[int] = []
                raw: list[Any] = []
                for member, offset in enumerate(offsets):
                    encoding = SchemaEncoding.from_int(
                        schema.num_columns, encodings[member])
                    if encoding.is_updated(data_column):
                        value = segment.record_cell(offset, physical)
                        if not is_null(value):
                            members.append(member)
                            raw.append(value)
                if not members:
                    continue
                if all(type(v) is int for v in raw):
                    columns[data_column] = (members, delta_encode(raw))
                else:
                    columns[data_column] = (members, raw)
            group = _VersionGroup(
                base_rid=base_rid,
                offsets=offsets,
                encodings=encodings,
                start_first=first,
                start_deltas=deltas,
                first_backpointer=segment.record_cell(offsets[0],
                                                      INDIRECTION_COLUMN),
                columns=columns,
            )
            group_index = len(part._groups)
            part._groups.append(group)
            for member, offset in enumerate(offsets):
                part._locator[offset] = (group_index, member)
        return part

    # -- lookups ------------------------------------------------------------

    def covers(self, offset: int) -> bool:
        """True when *offset* falls inside this part."""
        return self.first_offset <= offset < self.end_offset

    def is_tombstone(self, offset: int) -> bool:
        """True when *offset* was a reclaimed aborted record."""
        return offset in self._tombstone_backpointers

    def record_cell(self, offset: int, column: int,
                    rid_at) -> Any:
        """Reconstruct one cell of the record at *offset*.

        *rid_at* maps a tail offset back to its RID (needed to rebuild
        the collapsed intra-group back pointers).
        """
        tombstone_back = self._tombstone_backpointers.get(offset)
        if tombstone_back is not None:
            if column == INDIRECTION_COLUMN:
                return tombstone_back
            if column == SCHEMA_ENCODING_COLUMN:
                return SchemaEncoding.empty(
                    self._schema.num_columns).to_int()
            return NULL
        try:
            group_index, member = self._locator[offset]
        except KeyError:
            raise StorageError(
                "offset %d not in compressed part" % offset) from None
        group = self._groups[group_index]
        if column == INDIRECTION_COLUMN:
            if member == 0:
                return group.first_backpointer
            return rid_at(group.offsets[member - 1])
        if column == SCHEMA_ENCODING_COLUMN:
            return group.encodings[member]
        if column == START_TIME_COLUMN:
            return group.start_times()[member]
        if column == BASE_RID_COLUMN:
            return group.base_rid
        data_column = self._schema.data_index(column)
        return group.column_value(member, data_column)

    # -- observability ------------------------------------------------------

    @property
    def num_groups(self) -> int:
        """Number of base records with inlined version chains."""
        return len(self._groups)

    @property
    def num_records(self) -> int:
        """Live (non-tombstone) records covered."""
        return len(self._locator)

    @property
    def reclaimed_tombstones(self) -> int:
        """Aborted records whose space this part reclaimed."""
        return len(self._tombstone_backpointers)

    def groups(self) -> list[_VersionGroup]:
        """The ordered version groups (tests/examples introspection)."""
        return list(self._groups)


def compress_historic_tails(table: "Any", update_range: "Any", *,
                            horizon: int | None = None) -> int:
    """Compress the fully merged tail pages of *update_range*.

    Only whole pages below the merge watermark are eligible, and only
    when they fall outside the oldest active query snapshot (*horizon*
    defaults to the epoch manager's oldest active begin time). Returns
    the number of tail records compressed. The raw pages are retired
    through the epoch manager (Section 4.3 allows any reclamation scheme
    here; we reuse the epoch queue).
    """
    tail = update_range.tail
    if tail is None:
        return 0
    oldest = table.epoch_manager.oldest_active_begin()
    if horizon is None:
        horizon = oldest if oldest is not None else table.clock.now() + 1
    else:
        horizon = min(horizon,
                      oldest if oldest is not None else horizon)
    capacity = tail.page_capacity
    start = tail.compressed_upto
    boundary = (update_range.merged_upto // capacity) * capacity
    # Respect the snapshot horizon: stop before the first record whose
    # commit time is not strictly older than every active query.
    end = start
    while end < boundary:
        if tail.is_tombstone(end):
            end += 1
            continue
        resolved = table.resolve_cell(
            tail.record_cell(end, START_TIME_COLUMN))
        if not resolved.committed or resolved.time is None \
                or resolved.time >= horizon:
            break
        end += 1
    end = (end // capacity) * capacity
    if end <= start:
        return 0

    def resolve_time(cell: int) -> int:
        resolved = table.resolve_cell(cell)
        if not resolved.committed or resolved.time is None:
            raise StorageError("unresolved start cell in historic region")
        return resolved.time

    part = CompressedTailPart.build(tail, start, end, table.schema,
                                    resolve_time)
    old_pages = tail.pages_for_slots(start, end)
    tail.install_compressed_part(part)
    table.epoch_manager.retire(
        old_pages, retired_at=table.clock.advance(),
        on_reclaim=lambda page: table.page_directory.unregister(
            page.page_id))
    return end - start
