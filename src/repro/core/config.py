"""Engine configuration.

All tunables named by the paper live here with the paper's defaults,
scaled where the paper itself says a range is acceptable:

* *update range size* — the virtual range partitioning of records used
  to cluster updates into tail pages; the paper finds 2**12 .. 2**16
  optimal (Section 4.4) and recommends a finer update range with a
  coarser merge range.
* *page size* — 32 KB in the paper (Section 6.1); here expressed in
  *slots per page* because pages hold Python objects, with 4096 slots
  matching 32 KB of 8-byte values.
* *merge threshold* — how many committed tail records accumulate before
  a merge is enqueued; the paper's Figure 8 sweeps this and finds ~50%
  of the range size optimal.
* *insert range size* — pre-allocated base-RID blocks for inserts,
  "at least a million RIDs" at production scale (Section 3.2).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any

from .types import Layout


def _bytes_pages_default() -> bool:
    """Engine-wide default for ``bytes_pages``.

    ``REPRO_BYTES_PAGES=0`` flips every default-constructed config onto
    the object-list oracle layout — the CI leg that re-runs the
    agreement and fault suites against the PR-8 semantics oracle, the
    same discipline as the ``REPRO_VECTORIZED_SCANS=0`` row-plane legs.
    """
    return os.environ.get("REPRO_BYTES_PAGES", "1") != "0"


@dataclass(frozen=True)
class EngineConfig:
    """Immutable configuration for a :class:`~repro.core.db.Database`.

    The defaults are test-friendly (small pages, small ranges) so unit
    tests exercise page-boundary and merge logic quickly; the benchmark
    harness overrides them with paper-scale values.
    """

    #: Number of record slots per base page (paper: 32 KB / 8 B = 4096).
    records_per_page: int = 512

    #: Number of record slots per tail page. The paper permits smaller
    #: tail pages (footnote 13: 4 KB tails vs 32 KB bases).
    records_per_tail_page: int = 512

    #: Update-range size: records per virtual range partition
    #: (paper: 2**12 .. 2**16). Must be a multiple of records_per_page.
    update_range_size: int = 1024

    #: Merge-range granularity in update ranges: merges may take several
    #: consecutive update ranges as one unit (Section 4.4 recommends e.g.
    #: 2**4 ranges of 2**12 records merged as one 2**16 unit).
    merge_ranges_per_merge: int = 1

    #: Committed tail records accumulated in one range before a merge of
    #: that range is scheduled (Figure 8 sweeps this knob; ~50% of the
    #: update range size is the paper's sweet spot).
    merge_threshold: int = 512

    #: Pre-allocated base-RID block for the append-only insert path
    #: (Section 3.2; paper uses >= 2**20 at scale).
    insert_range_size: int = 1024

    #: Whether updates are *cumulative*: each tail record repeats all
    #: updated-so-far column values so readers stop after one hop
    #: (Section 3.1). Non-cumulative tails store only the changed column.
    cumulative_updates: bool = True

    #: Record layout; ROW exists to reproduce Tables 8 and 9.
    layout: Layout = Layout.COLUMNAR

    #: Run the merge in a background thread (paper's deployment). When
    #: False, merges run synchronously when triggered — deterministic,
    #: used by most unit tests.
    background_merge: bool = False

    #: Apply dictionary/RLE compression to merged pages.
    compress_merged_pages: bool = True

    #: Seconds the background merge thread sleeps when its queue is empty.
    merge_poll_interval: float = 0.001

    #: Enable the write-ahead log (redo-only for tails, Section 5.1.3).
    #: Section 6.1 turns logging off for all measured systems; tests and
    #: the recovery example turn it on.
    wal_enabled: bool = False

    #: Directory for WAL segments and page files (None = in-memory only).
    data_dir: str | None = None

    #: Rotate the active WAL segment once it exceeds this many bytes
    #: (None = never rotate; one segment). Checkpoints reclaim closed
    #: segments whose frames they cover.
    wal_segment_bytes: int | None = None

    #: Transient write/fsync failures the group-commit leader retries
    #: (with linear backoff) before poisoning the log fail-stop.
    wal_sync_retries: int = 4

    #: Base backoff (seconds) between WAL write retries; attempt *n*
    #: sleeps ``n * wal_retry_backoff``.
    wal_retry_backoff: float = 0.002

    #: Fault-injection specification applied to the process-wide
    #: failpoint registry at Database construction (same grammar as the
    #: ``REPRO_FAILPOINTS`` environment variable; see
    #: :mod:`repro.fault`). None = no faults armed.
    failpoints: str | None = None

    #: Completed checkpoint images kept on disk (older ones pruned).
    checkpoints_kept: int = 2

    #: Buffer-pool capacity in frames (None = unbounded, memory resident).
    bufferpool_frames: int | None = None

    #: Capacity threshold after which historic (fully merged) tail pages
    #: become candidates for the Section 4.3 compression pass.
    historic_compression_enabled: bool = True

    #: Keep the primary index sorted (array + bisect) so key-range reads
    #: (``Query.sum``/``select_range``) cost O(log N + k) instead of a
    #: full index walk. Off = plain hash index with filtering ranges.
    ordered_primary_index: bool = True

    #: Keep each secondary index's value domain sorted so
    #: ``lookup_range`` bisects instead of scanning the whole multimap.
    ordered_secondary_index: bool = True

    #: Serve multi-record reads through
    #: :meth:`~repro.core.table.Table.read_latest_many`: records with no
    #: unmerged tail activity read straight from the base/merged page
    #: chains (one chain lookup per range and column), only dirty
    #: records take the per-record 2-hop walk.
    batched_reads: bool = True

    #: Maintain the per-range dirty-offset set incrementally on every
    #: tail append and prune it when a merge installs, instead of
    #: re-walking all unmerged tail records on every scan. Scan cost
    #: then tracks the unmerged-update count exactly (Figure 8).
    incremental_dirty_sets: bool = True

    #: Serve clean merged columnar partitions as whole NumPy column
    #: slices (:meth:`~repro.core.table.Table.read_column_slices`):
    #: filters and aggregates run array-at-a-time on the vectorised
    #: operator plane, and only records with unmerged tail activity are
    #: patched through the per-record walk. Off = every partition takes
    #: the per-record row path (the always-correct fallback, kept green
    #: by CI).
    vectorized_scans: bool = True

    #: Maximum fraction of a range's records that may be dirty (have
    #: unmerged tail activity) before the planner degrades the
    #: partition from the vectorised column-slice plane to the
    #: per-record row plane. Near-totally dirty partitions pay slice
    #: stitching *plus* a per-record patch walk — measured ~2× slower
    #: than walking the range once. The default sits just under the
    #: measured crossover (vectorised still ~1.05-1.5× faster up to
    #: ~66% dirty, parity ~91%, 2× slower at ~99%); 1.0 never
    #: degrades.
    vectorized_dirty_fraction: float = 0.85

    #: Append tail records through the flat-cell write path
    #: (:meth:`~repro.core.table.TailSegment.write_record_flat`): the
    #: snapshot and update records of one write share a single
    #: allocation latch hold and one batched base-page read, cells are
    #: written from parallel column/value sequences (no per-record
    #: dicts, no :class:`~repro.core.encoding.SchemaEncoding`
    #: round-trips), and the dirty/horizon bookkeeping folds into one
    #: lock acquisition. Off = the original dict-of-cells append —
    #: kept as the semantics oracle the property suite crosses the
    #: flat path against.
    flat_appends: bool = True

    #: Store fixed-width columns in ``array('q')``/bitmap byte buffers
    #: (:class:`~repro.core.page.BytesPage`): cell writes are C-level
    #: stores, ``as_numpy`` is a zero-copy buffer view, and pages
    #: serialize to disk with zero translation (the raw buffer is the
    #: image). Non-int values spill to a per-page object sidecar. Off =
    #: the original object-list pages — kept as the semantics oracle
    #: the property suite crosses the byte layout against (the PR-5
    #: ``flat_appends`` discipline). Default honours the
    #: ``REPRO_BYTES_PAGES`` environment variable (CI oracle leg).
    bytes_pages: bool = field(default_factory=_bytes_pages_default)

    #: Merge tasks the engine drains per wakeup/batch: one queue-lock
    #: and one processing-lock acquisition covers up to this many
    #: ranges, so a deep ``merge.backlog`` drains with amortised
    #: dispatch overhead instead of paying it per range. 1 = the
    #: original task-at-a-time discipline.
    merge_batch_ranges: int = 4

    #: Worker threads of the shared analytical scan executor
    #: (:mod:`repro.exec`). 1 = run every scan partition inline on the
    #: calling thread; >1 = run partitions on a shared pool. Threads
    #: are correctness-safe under the GIL (partitions register their
    #: own epochs) and give real speedup on free-threaded builds and on
    #: the NumPy page-sum fast path, which releases the GIL.
    scan_parallelism: int = 1

    #: Transaction-manager entries that may accumulate before the
    #: automatic epoch-wired GC sweeps the entry table
    #: (:meth:`~repro.txn.manager.TransactionManager.gc`). 0 disables
    #: auto-GC (entries then grow until a manual ``gc(before)`` call).
    txn_gc_threshold: int = 4096

    #: Soft merge-backlog watermark (queued merge tasks): at or above
    #: it, writers pay a bounded throttle wait so the merge daemon can
    #: catch up (:mod:`repro.health.backpressure`). None disables the
    #: throttle; disabled watermarks are zero-cost on the write path
    #: (``benchmarks/test_backpressure_overhead.py`` pins this).
    merge_backlog_soft: int | None = None

    #: Hard merge-backlog watermark: at or above it, writes fail fast
    #: with a typed retryable
    #: :class:`~repro.errors.BackpressureError` instead of letting the
    #: queue grow without bound. None = never reject.
    merge_backlog_hard: int | None = None

    #: Seconds of one throttle tick in the soft-watermark zone.
    backpressure_throttle: float = 0.001

    #: Upper bound on the total throttle wait of one write; past it the
    #: write proceeds even above the soft watermark (only the hard
    #: watermark sheds load).
    backpressure_max_wait: float = 0.05

    #: Crashes one merge task may cause before its range is quarantined
    #: (kept un-merged on the correct-but-slow row plane; counted by
    #: the ``merge.quarantined_ranges`` gauge) while every other range
    #: keeps merging.
    merge_quarantine_after: int = 3

    #: Seconds a non-empty merge backlog may see no progress before
    #: :func:`~repro.health.status.check_health` reports the merge
    #: daemon as stalled.
    merge_stall_seconds: float = 5.0

    #: First-restart backoff (seconds) of the background-service
    #: supervisor; each consecutive crash doubles it (with jitter).
    supervisor_backoff_base: float = 0.01

    #: Cap on the supervisor's exponential restart backoff (seconds).
    supervisor_backoff_cap: float = 1.0

    #: Consecutive crashes of one supervised service before the
    #: supervisor gives up (service state FAILED, health FAILED).
    #: None = restart forever.
    supervisor_max_restarts: int | None = None

    #: Maintain the engine-wide metrics registry (:mod:`repro.obs`).
    #: False hands every component shared no-op instruments — the
    #: "pre-obs floor" the overhead benchmark measures against.
    obs_metrics: bool = True

    #: Seconds between JSONL metrics samples written by the background
    #: sampler thread (:class:`~repro.obs.sampler.MetricsSampler`).
    #: None = no sampler.
    obs_sample_interval: float | None = None

    #: Path of the sampler's JSONL time series. None = derive it:
    #: ``<data_dir>/metrics.jsonl`` when ``data_dir`` is set, else
    #: ``metrics.jsonl`` in the working directory.
    obs_sample_path: str | None = None

    def __post_init__(self) -> None:
        if self.records_per_page <= 0:
            raise ValueError("records_per_page must be positive")
        if self.records_per_tail_page <= 0:
            raise ValueError("records_per_tail_page must be positive")
        if self.update_range_size % self.records_per_page != 0:
            raise ValueError(
                "update_range_size (%d) must be a multiple of "
                "records_per_page (%d)"
                % (self.update_range_size, self.records_per_page)
            )
        if self.insert_range_size % self.records_per_page != 0:
            raise ValueError(
                "insert_range_size (%d) must be a multiple of "
                "records_per_page (%d)"
                % (self.insert_range_size, self.records_per_page)
            )
        if self.merge_threshold <= 0:
            raise ValueError("merge_threshold must be positive")
        if self.merge_ranges_per_merge <= 0:
            raise ValueError("merge_ranges_per_merge must be positive")
        if self.merge_batch_ranges < 1:
            raise ValueError("merge_batch_ranges must be >= 1")
        if self.scan_parallelism < 1:
            raise ValueError("scan_parallelism must be >= 1")
        if not 0.0 < self.vectorized_dirty_fraction <= 1.0:
            raise ValueError(
                "vectorized_dirty_fraction must be in (0, 1]")
        if self.txn_gc_threshold < 0:
            raise ValueError("txn_gc_threshold must be >= 0")
        if self.wal_segment_bytes is not None and self.wal_segment_bytes <= 0:
            raise ValueError("wal_segment_bytes must be positive or None")
        if self.wal_sync_retries < 0:
            raise ValueError("wal_sync_retries must be >= 0")
        if self.wal_retry_backoff < 0:
            raise ValueError("wal_retry_backoff must be >= 0")
        if self.checkpoints_kept < 1:
            raise ValueError("checkpoints_kept must be >= 1")
        if self.obs_sample_interval is not None \
                and self.obs_sample_interval <= 0:
            raise ValueError(
                "obs_sample_interval must be positive or None")
        if self.merge_backlog_soft is not None \
                and self.merge_backlog_soft <= 0:
            raise ValueError("merge_backlog_soft must be positive or None")
        if self.merge_backlog_hard is not None \
                and self.merge_backlog_hard <= 0:
            raise ValueError("merge_backlog_hard must be positive or None")
        if self.merge_backlog_soft is not None \
                and self.merge_backlog_hard is not None \
                and self.merge_backlog_soft > self.merge_backlog_hard:
            raise ValueError(
                "merge_backlog_soft (%d) must be <= merge_backlog_hard "
                "(%d)" % (self.merge_backlog_soft, self.merge_backlog_hard))
        if self.backpressure_throttle < 0:
            raise ValueError("backpressure_throttle must be >= 0")
        if self.backpressure_max_wait < 0:
            raise ValueError("backpressure_max_wait must be >= 0")
        if self.merge_quarantine_after < 1:
            raise ValueError("merge_quarantine_after must be >= 1")
        if self.merge_stall_seconds <= 0:
            raise ValueError("merge_stall_seconds must be positive")
        if self.supervisor_backoff_base <= 0:
            raise ValueError("supervisor_backoff_base must be positive")
        if self.supervisor_backoff_cap < self.supervisor_backoff_base:
            raise ValueError(
                "supervisor_backoff_cap must be >= supervisor_backoff_base")
        if self.supervisor_max_restarts is not None \
                and self.supervisor_max_restarts < 0:
            raise ValueError(
                "supervisor_max_restarts must be >= 0 or None")

    @property
    def pages_per_range(self) -> int:
        """Base pages per update range."""
        return self.update_range_size // self.records_per_page

    def with_overrides(self, **overrides: Any) -> "EngineConfig":
        """Return a copy with *overrides* applied (config is immutable)."""
        return replace(self, **overrides)


#: Paper-scale configuration (Section 6.1): 32 KB pages as 4096 slots,
#: 2**12 update ranges merged at 50% accumulation.
PAPER_CONFIG = EngineConfig(
    records_per_page=4096,
    records_per_tail_page=4096,
    update_range_size=4096,
    merge_threshold=2048,
    insert_range_size=65536,
    background_merge=True,
)

#: Small deterministic configuration used across the test suite.
TEST_CONFIG = EngineConfig(
    records_per_page=8,
    records_per_tail_page=8,
    update_range_size=16,
    merge_threshold=8,
    insert_range_size=16,
    background_merge=False,
)
